//! NCP reassembly under adversarial arrival orders: out-of-order
//! fragments, duplicated fragments, windows from two senders
//! interleaving on one reassembler, and the bounded-memory eviction
//! policy.

use c3::{Chunk, HostId, KernelId, NodeId, Window};
use ncp::codec::{fragment_window, Reassembler};

fn window(sender: u16, seq: u32, vals: &[u32], last: bool) -> Window {
    Window {
        kernel: KernelId(2),
        seq,
        sender: HostId(sender),
        from: NodeId::Host(HostId(sender)),
        last,
        chunks: vec![Chunk {
            offset: seq * vals.len() as u32 * 4,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![0x11],
    }
}

fn frags(sender: u16, seq: u32, n: u32) -> (Window, Vec<Vec<u8>>) {
    let w = window(sender, seq, &(0..n).collect::<Vec<_>>(), true);
    let f = fragment_window(&w, 1, 80);
    assert!(f.len() >= 3, "need several fragments, got {}", f.len());
    (w, f)
}

#[test]
fn fully_reversed_arrival_order() {
    let (w, mut f) = frags(1, 0, 48);
    f.reverse();
    let mut r = Reassembler::new();
    let mut got = None;
    for frag in &f {
        assert!(got.is_none(), "must not complete early");
        got = r.push(frag).unwrap();
    }
    let got = got.expect("completes on the last (originally first) fragment");
    assert_eq!(got.chunks, w.chunks);
    assert!(got.last);
    assert_eq!(r.pending(), 0);
}

#[test]
fn duplicate_fragments_are_idempotent() {
    let (w, f) = frags(1, 0, 48);
    let mut r = Reassembler::new();
    // Push every fragment except the final one, each three times.
    for frag in &f[..f.len() - 1] {
        for _ in 0..3 {
            assert!(r.push(frag).unwrap().is_none());
        }
    }
    let got = r.push(&f[f.len() - 1]).unwrap().expect("completes once");
    assert_eq!(got.chunks, w.chunks);
    // A late duplicate of the final fragment starts a fresh (incomplete)
    // partial rather than producing a second window.
    assert!(r.push(&f[f.len() - 1]).unwrap().is_none());
    assert_eq!(r.pending(), 1);
}

#[test]
fn two_senders_same_seq_interleave_independently() {
    // Same kernel, same seq — only the sender id separates the streams.
    let (wa, fa) = frags(1, 7, 48);
    let (wb, fb) = frags(2, 7, 48);
    let mut r = Reassembler::new();
    let mut done = Vec::new();
    for (a, b) in fa.iter().zip(&fb) {
        if let Some(w) = r.push(a).unwrap() {
            done.push(w);
        }
        if let Some(w) = r.push(b).unwrap() {
            done.push(w);
        }
    }
    assert_eq!(done.len(), 2);
    let by_sender = |s: u16| done.iter().find(|w| w.sender.0 == s).unwrap();
    assert_eq!(by_sender(1).chunks, wa.chunks);
    assert_eq!(by_sender(2).chunks, wb.chunks);
    assert_eq!(r.pending(), 0);
}

#[test]
fn pending_windows_are_bounded() {
    let cap = 4;
    let mut r = Reassembler::with_max_pending(cap);
    // 32 windows, each missing its final fragment: pending may never
    // exceed the cap, and the overflow shows up in the eviction counter.
    let all: Vec<_> = (0..32).map(|seq| frags(1, seq, 48).1).collect();
    for f in &all {
        for frag in &f[..f.len() - 1] {
            r.push(frag).unwrap();
        }
        assert!(r.pending() <= cap);
    }
    assert_eq!(r.pending(), cap);
    assert_eq!(r.evictions(), 32 - cap as u64);
    // The survivors are the most recent windows; the newest still
    // completes when its final fragment arrives.
    let newest = &all[31];
    let got = r.push(&newest[newest.len() - 1]).unwrap();
    assert_eq!(got.expect("newest window completes").seq, 31);
    // An evicted window's final fragment cannot complete it any more.
    let evicted = &all[0];
    assert!(r.push(&evicted[evicted.len() - 1]).unwrap().is_none());
}

#[test]
fn eviction_prefers_stalest_not_newest() {
    let mut r = Reassembler::with_max_pending(2);
    let (_, f0) = frags(1, 0, 48);
    let (w1, f1) = frags(1, 1, 48);
    let (_, f2) = frags(1, 2, 48);
    // Start windows 0 and 1; keep 1 "fresh" by re-pushing one of its
    // fragments after touching 0.
    r.push(&f0[0]).unwrap();
    r.push(&f1[0]).unwrap();
    r.push(&f1[1]).unwrap();
    // Window 2 arrives: the cap evicts window 0 (stalest), not 1.
    r.push(&f2[0]).unwrap();
    assert_eq!(r.pending(), 2);
    assert_eq!(r.evictions(), 1);
    let mut got = None;
    for frag in &f1[2..] {
        got = r.push(frag).unwrap();
    }
    assert_eq!(
        got.expect("window 1 survived the eviction").chunks,
        w1.chunks
    );
}

#[test]
fn clear_recycles_everything() {
    let mut r = Reassembler::new();
    for seq in 0..8 {
        let (_, f) = frags(1, seq, 48);
        r.push(&f[0]).unwrap();
    }
    assert_eq!(r.pending(), 8);
    r.clear();
    assert_eq!(r.pending(), 0);
    // The reassembler still works after a clear.
    let (w, f) = frags(1, 99, 48);
    let mut got = None;
    for frag in &f {
        got = r.push(frag).unwrap();
    }
    assert_eq!(got.expect("complete").chunks, w.chunks);
}
