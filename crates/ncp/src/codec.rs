//! Window ↔ packet conversion and multi-packet reassembly.
//!
//! In the prototype scope of the paper (§6), a window fits one packet —
//! [`encode_window`]/[`decode_window`] handle that case losslessly. For
//! windows larger than the MTU, [`fragment_window`] splits the payload
//! across several packets (each a self-describing NCP packet whose chunk
//! descriptors carry true array offsets) and hosts reassemble with a
//! [`Reassembler`]. Switches skip fragmented windows — storing multiple
//! packets "may not yet be practical due to limited switch memory"
//! (paper §6) — and simply forward them.

use crate::wire::{NcpPacket, NcpRepr, WireError, FLAG_FIRST_FRAG, FLAG_FRAGMENT, FLAG_LAST, FLAG_MORE_FRAGS};
use c3::{Chunk, HostId, KernelId, NodeId, Window};
use std::collections::HashMap;

/// Encodes a single-packet window. `ext_total` pads/truncates the ext
/// block to the program's declared window-extension size so the switch
/// parser sees a fixed layout.
pub fn encode_window(w: &Window, ext_total: usize) -> Vec<u8> {
    let mut ext = w.ext.clone();
    ext.resize(ext_total, 0);
    let repr = NcpRepr {
        flags: if w.last { FLAG_LAST } else { 0 },
        kernel: w.kernel.0,
        seq: w.seq,
        sender: w.sender.0,
        from: w.from.to_wire(),
        chunks: w
            .chunks
            .iter()
            .map(|c| (c.offset, c.data.len() as u16))
            .collect(),
        ext,
    };
    let mut buf = vec![0u8; repr.buffer_len()];
    repr.emit(&mut buf);
    let mut off = repr.payload_offset();
    for c in &w.chunks {
        buf[off..off + c.data.len()].copy_from_slice(&c.data);
        off += c.data.len();
    }
    buf
}

/// Decodes a packet into a window.
pub fn decode_window(bytes: &[u8]) -> Result<Window, WireError> {
    let p = NcpPacket::new_checked(bytes)?;
    let chunks = (0..p.nchunks() as usize)
        .map(|i| Chunk {
            offset: p.chunk_desc(i).0,
            data: p.chunk_data(i).to_vec(),
        })
        .collect();
    Ok(Window {
        kernel: KernelId(p.kernel()),
        seq: p.seq(),
        sender: HostId(p.sender()),
        from: NodeId::from_wire(p.from()),
        last: p.flags() & FLAG_LAST != 0,
        chunks,
        ext: p.ext().to_vec(),
    })
}

/// Splits a window into packets no larger than `mtu`. Single-fragment
/// windows get one packet identical to [`encode_window`]'s output.
///
/// Each fragment carries a subset of each chunk's bytes with corrected
/// array offsets. Every fragment sets [`FLAG_FRAGMENT`]; the first also
/// sets [`FLAG_FIRST_FRAG`] and all but the final set
/// [`FLAG_MORE_FRAGS`] — so reassembly is order- and loss-tolerant.
///
/// # Panics
/// Panics if `mtu` is too small to carry even one element of payload
/// next to the header.
pub fn fragment_window(w: &Window, ext_total: usize, mtu: usize) -> Vec<Vec<u8>> {
    let single = encode_window(w, ext_total);
    if single.len() <= mtu {
        return vec![single];
    }
    let overhead =
        crate::wire::HEADER_LEN + w.chunks.len() * crate::wire::CHUNK_DESC_LEN + ext_total;
    assert!(
        mtu > overhead,
        "mtu {mtu} cannot fit the NCP header overhead {overhead}"
    );
    let budget = mtu - overhead;
    let mut fragments = Vec::new();
    let mut cursors: Vec<usize> = vec![0; w.chunks.len()];
    let mut first = true;
    loop {
        let mut frag_chunks: Vec<Chunk> = Vec::new();
        let mut used = 0usize;
        let mut any = false;
        for (i, c) in w.chunks.iter().enumerate() {
            let rest = c.data.len() - cursors[i];
            let take = rest.min(budget.saturating_sub(used));
            frag_chunks.push(Chunk {
                offset: c.offset + cursors[i] as u32,
                data: c.data[cursors[i]..cursors[i] + take].to_vec(),
            });
            cursors[i] += take;
            used += take;
            if take > 0 {
                any = true;
            }
        }
        if !any {
            break;
        }
        let done = cursors
            .iter()
            .zip(&w.chunks)
            .all(|(&cur, c)| cur == c.data.len());
        let fw = Window {
            kernel: w.kernel,
            seq: w.seq,
            sender: w.sender,
            from: w.from,
            last: w.last && done,
            chunks: frag_chunks,
            ext: w.ext.clone(),
        };
        let mut bytes = encode_window(&fw, ext_total);
        let mut flags = if fw.last { FLAG_LAST } else { 0 } | FLAG_FRAGMENT;
        if first {
            flags |= FLAG_FIRST_FRAG;
        }
        if !done {
            flags |= FLAG_MORE_FRAGS;
        }
        NcpPacket::new_unchecked(&mut bytes[..]).set_flags(flags);
        fragments.push(bytes);
        first = false;
        if done {
            break;
        }
    }
    fragments
}

/// Key identifying a window under reassembly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FragKey {
    sender: u16,
    kernel: u16,
    seq: u32,
}

/// Host-side reassembly of (possibly fragmented) windows.
///
/// Feed every received packet to [`Reassembler::push`]; complete windows
/// pop out. Fragments may arrive in any order and duplicates are
/// tolerated; a window completes once the first fragment (chunk start
/// offsets), the final fragment (chunk end offsets), and a gap-free byte
/// coverage in between have all been seen.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<FragKey, Partial>,
}

#[derive(Debug)]
struct Partial {
    meta: Window,
    /// Per chunk: disjoint received pieces `(offset, data)`.
    pieces: Vec<Vec<(u32, Vec<u8>)>>,
    /// Per chunk: start offset (from the FIRST fragment).
    starts: Vec<Option<u32>>,
    /// Per chunk: end offset (from the final fragment).
    ends: Vec<Option<u32>>,
}

impl Partial {
    fn complete(&self) -> bool {
        for c in 0..self.pieces.len() {
            let (Some(start), Some(end)) = (self.starts[c], self.ends[c]) else {
                return false;
            };
            let received: usize = self.pieces[c].iter().map(|(_, d)| d.len()).sum();
            if received != (end - start) as usize {
                return false;
            }
        }
        true
    }

    fn assemble(mut self) -> Window {
        let mut chunks = Vec::with_capacity(self.pieces.len());
        for (c, mut pieces) in self.pieces.drain(..).enumerate() {
            let start = self.starts[c].expect("complete");
            let end = self.ends[c].expect("complete");
            let mut data = vec![0u8; (end - start) as usize];
            pieces.sort_by_key(|(o, _)| *o);
            for (off, piece) in pieces {
                let rel = (off - start) as usize;
                data[rel..rel + piece.len()].copy_from_slice(&piece);
            }
            chunks.push(Chunk {
                offset: start,
                data,
            });
        }
        Window {
            chunks,
            ..self.meta
        }
    }
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one packet. Returns a completed window if this packet
    /// finished one (or was an unfragmented window).
    pub fn push(&mut self, bytes: &[u8]) -> Result<Option<Window>, WireError> {
        let p = NcpPacket::new_checked(bytes)?;
        let flags = p.flags();
        let w = decode_window(bytes)?;
        if flags & FLAG_FRAGMENT == 0 {
            // Unfragmented window: fast path.
            return Ok(Some(w));
        }
        let key = FragKey {
            sender: w.sender.0,
            kernel: w.kernel.0,
            seq: w.seq,
        };
        let nchunks = w.chunks.len();
        let entry = self.partial.entry(key).or_insert_with(|| Partial {
            meta: Window {
                kernel: w.kernel,
                seq: w.seq,
                sender: w.sender,
                from: w.from,
                last: false,
                chunks: vec![],
                ext: w.ext.clone(),
            },
            pieces: vec![Vec::new(); nchunks],
            starts: vec![None; nchunks],
            ends: vec![None; nchunks],
        });
        let first = flags & FLAG_FIRST_FRAG != 0;
        let final_frag = flags & FLAG_MORE_FRAGS == 0;
        if final_frag {
            entry.meta.last = flags & FLAG_LAST != 0;
        }
        for (c, chunk) in w.chunks.iter().enumerate() {
            if c >= entry.pieces.len() {
                break;
            }
            if first {
                entry.starts[c] = Some(chunk.offset);
            }
            if final_frag {
                entry.ends[c] = Some(chunk.offset + chunk.data.len() as u32);
            }
            if !chunk.data.is_empty()
                && !entry.pieces[c].iter().any(|(o, _)| *o == chunk.offset)
            {
                entry.pieces[c].push((chunk.offset, chunk.data.clone()));
            }
        }
        if entry.complete() {
            let done = self.partial.remove(&key).expect("entry exists");
            return Ok(Some(done.assemble()));
        }
        Ok(None)
    }

    /// Number of windows currently mid-reassembly.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Drops all partial windows (loss-handling policy is the caller's).
    pub fn clear(&mut self) {
        self.partial.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::ScalarType;

    fn window(vals: &[u32], seq: u32, last: bool) -> Window {
        Window {
            kernel: KernelId(2),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last,
            chunks: vec![Chunk {
                offset: seq * vals.len() as u32 * 4,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![0xEE, 0xFF],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let w = window(&[1, 2, 3, 4], 5, true);
        let bytes = encode_window(&w, 2);
        let back = decode_window(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn ext_padded_to_program_size() {
        let mut w = window(&[1], 0, false);
        w.ext = vec![0xAB];
        let bytes = encode_window(&w, 4);
        let back = decode_window(&bytes).unwrap();
        assert_eq!(back.ext, vec![0xAB, 0, 0, 0]);
    }

    #[test]
    fn single_packet_fragmentation_is_identity() {
        let w = window(&[1, 2], 0, true);
        let frags = fragment_window(&w, 2, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(decode_window(&frags[0]).unwrap(), w);
    }

    #[test]
    fn fragmentation_splits_and_reassembles() {
        // 64 elements = 256 payload bytes; tiny MTU forces fragments.
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals, 3, true);
        let frags = fragment_window(&w, 2, 96);
        assert!(frags.len() > 1, "expected multiple fragments");
        // All but last carry MORE_FRAGS.
        for (i, f) in frags.iter().enumerate() {
            let p = NcpPacket::new_checked(&f[..]).unwrap();
            let more = p.flags() & FLAG_MORE_FRAGS != 0;
            assert_eq!(more, i + 1 < frags.len(), "fragment {i}");
            assert!(f.len() <= 96, "fragment {i} exceeds mtu: {}", f.len());
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            out = r.push(f).unwrap();
        }
        let got = out.expect("window completes on the final fragment");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
        assert_eq!(got.chunks[0].offset, w.chunks[0].offset);
        assert!(got.last);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_fragments() {
        let vals: Vec<u32> = (0..32).collect();
        let w = window(&vals, 0, false);
        let mut frags = fragment_window(&w, 2, 80);
        assert!(frags.len() >= 3);
        frags.swap(0, 1);
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            got = r.push(f).unwrap();
        }
        let got = got.expect("complete");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
    }

    #[test]
    fn interleaved_windows_reassemble_independently() {
        let w0 = window(&(0..32).collect::<Vec<_>>(), 0, false);
        let w1 = window(&(100..132).collect::<Vec<_>>(), 1, true);
        let f0 = fragment_window(&w0, 2, 80);
        let f1 = fragment_window(&w1, 2, 80);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        for (a, b) in f0.iter().zip(&f1) {
            if let Some(w) = r.push(a).unwrap() {
                done.push(w);
            }
            if let Some(w) = r.push(b).unwrap() {
                done.push(w);
            }
        }
        assert_eq!(done.len(), 2);
        let seqs: Vec<u32> = done.iter().map(|w| w.seq).collect();
        assert!(seqs.contains(&0) && seqs.contains(&1));
    }

    #[test]
    fn unfragmented_fast_path() {
        let w = window(&[9, 9], 7, true);
        let mut r = Reassembler::new();
        let got = r.push(&encode_window(&w, 2)).unwrap().unwrap();
        assert_eq!(got, w);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembler_rejects_garbage() {
        let mut r = Reassembler::new();
        assert!(r.push(&[0u8; 4]).is_err());
    }

    #[test]
    fn multi_chunk_window_roundtrip() {
        let w = Window {
            kernel: KernelId(1),
            seq: 0,
            sender: HostId(2),
            from: NodeId::Switch(c3::SwitchId(1)),
            last: true,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: 77u64.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: vec![1; 16],
                },
                Chunk {
                    offset: 0,
                    data: vec![0], // bool chunk
                },
            ],
            ext: vec![],
        };
        let back = decode_window(&encode_window(&w, 0)).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.chunks[0].get(ScalarType::U64, 0).bits(), 77);
    }
}
