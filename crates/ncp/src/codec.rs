//! Window ↔ packet conversion and multi-packet reassembly.
//!
//! In the prototype scope of the paper (§6), a window fits one packet —
//! [`encode_window`]/[`decode_window`] handle that case losslessly. For
//! windows larger than the MTU, [`fragment_window`] splits the payload
//! across several packets (each a self-describing NCP packet whose chunk
//! descriptors carry true array offsets) and hosts reassemble with a
//! [`Reassembler`]. Switches skip fragmented windows — storing multiple
//! packets "may not yet be practical due to limited switch memory"
//! (paper §6) — and simply forward them.
//!
//! # Zero-copy datapath
//!
//! The steady-state send path avoids per-window allocations:
//! [`encode_window_into`] emits header, descriptors, ext, and payload
//! directly into a caller-supplied buffer (typically recycled through a
//! [`BufferPool`]), and [`fragment_window_into`] writes each fragment
//! straight into its own pooled buffer — no intermediate fragment
//! `Window` and no encode-then-re-slice double copy. The receive path
//! bounds memory ([`Reassembler`] caps in-flight partial windows,
//! evicting the stalest on overflow) and recycles fragment piece
//! buffers internally.

use crate::wire::{
    NcpPacket, WireError, CHUNK_DESC_LEN, FLAG_FIRST_FRAG, FLAG_FRAGMENT, FLAG_LAST,
    FLAG_MORE_FRAGS, HEADER_LEN, MAGIC, VERSION,
};
use c3::{Chunk, HostId, KernelId, NodeId, Window};
use std::collections::HashMap;

/// Default cap on windows concurrently under reassembly (satellite of
/// the fast-path work: a peer spraying first fragments must not grow
/// host memory without bound).
pub const DEFAULT_MAX_PENDING: usize = 256;

/// Alignment (bytes) for window payload buffers. Matches the widest
/// vector register the ncvec SIMD tier uses (one AVX2 ymm), so payload
/// loads in the fused vector executors start on a register boundary.
/// Alignment here is a fast-path hint — the SIMD tier uses unaligned
/// loads and is correct either way — never a soundness requirement.
pub const PAYLOAD_ALIGN: usize = 32;

/// Allocates a byte buffer of at least `cap` capacity whose storage
/// starts on a [`PAYLOAD_ALIGN`] boundary.
///
/// `Vec<u8>` has no alignment parameter, so this allocates and selects:
/// draw candidates until the allocator hands back an aligned block,
/// keeping rejects alive so each retry sees a fresh address. Mainstream
/// allocators return 16-byte-aligned blocks at these sizes, so a couple
/// of draws almost always suffice; after a bounded number of tries the
/// last candidate is returned as-is (see [`PAYLOAD_ALIGN`]: alignment
/// is best-effort, and [`BufferPool::put`] refuses to pool strays).
fn aligned_vec(cap: usize) -> Vec<u8> {
    let cap = cap.max(PAYLOAD_ALIGN);
    let mut rejects = Vec::new();
    for _ in 0..8 {
        let v: Vec<u8> = Vec::with_capacity(cap);
        if (v.as_ptr() as usize).is_multiple_of(PAYLOAD_ALIGN) {
            return v;
        }
        rejects.push(v);
    }
    rejects.pop().unwrap_or_default()
}

/// Clears `dst` and refills it with `src`, guaranteeing the refilled
/// storage starts on a [`PAYLOAD_ALIGN`] boundary. Reuses `dst`'s
/// allocation when it is already aligned and large enough — the
/// steady-state decode path — and swaps in an aligned buffer otherwise.
fn fill_aligned(dst: &mut Vec<u8>, src: &[u8]) {
    if dst.capacity() < src.len() || !(dst.as_ptr() as usize).is_multiple_of(PAYLOAD_ALIGN) {
        *dst = aligned_vec(src.len());
    }
    dst.clear();
    dst.extend_from_slice(src);
}

/// A free-list of byte buffers for the packet datapath. `get` hands out
/// an empty buffer that retains its previous capacity; `put` returns a
/// buffer to the pool. Steady-state encode traffic therefore settles
/// into zero heap allocations.
///
/// Every buffer the pool hands out starts on a [`PAYLOAD_ALIGN`]
/// boundary: fresh buffers come from the aligned allocator, and `put`
/// re-homes (or drops) buffers whose mid-use regrowth moved them off it.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers: 64,
        }
    }
}

impl BufferPool {
    /// An empty pool holding at most 64 recycled buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool that retains at most `max_buffers` buffers;
    /// `put` drops excess buffers instead of growing without bound.
    pub fn with_limit(max_buffers: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
        }
    }

    /// Takes a cleared buffer from the pool (or a fresh one when empty).
    /// The returned buffer's storage starts on a [`PAYLOAD_ALIGN`]
    /// boundary.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert_eq!(
                    buf.as_ptr() as usize % PAYLOAD_ALIGN,
                    0,
                    "pooled buffer lost its payload alignment"
                );
                buf
            }
            None => aligned_vec(0),
        }
    }

    /// Returns a buffer for reuse. Its contents are cleared; capacity is
    /// kept. A buffer whose mid-use regrowth moved it off the
    /// [`PAYLOAD_ALIGN`] boundary is replaced by an equal-capacity
    /// aligned one (so the next `get` starts aligned *and* large enough
    /// to avoid regrowing), or dropped if the allocator refuses.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_buffers {
            if !(buf.as_ptr() as usize).is_multiple_of(PAYLOAD_ALIGN) {
                buf = aligned_vec(buf.capacity());
                if !(buf.as_ptr() as usize).is_multiple_of(PAYLOAD_ALIGN) {
                    return;
                }
            }
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no recycled buffers.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// Encoded length of `w` as a single NCP packet with the given ext size.
pub fn encoded_len(w: &Window, ext_total: usize) -> usize {
    HEADER_LEN
        + w.chunks.len() * CHUNK_DESC_LEN
        + ext_total
        + w.chunks.iter().map(|c| c.data.len()).sum::<usize>()
}

/// Writes the fixed NCP header for window `w` into (cleared) `buf`.
fn emit_prelude(buf: &mut Vec<u8>, w: &Window, flags: u8, nchunks: usize, ext_total: usize) {
    buf.extend_from_slice(&MAGIC.to_be_bytes());
    buf.push(VERSION);
    buf.push(flags);
    buf.extend_from_slice(&w.kernel.0.to_be_bytes());
    buf.extend_from_slice(&w.seq.to_be_bytes());
    buf.extend_from_slice(&w.sender.0.to_be_bytes());
    buf.extend_from_slice(&w.from.to_wire().to_be_bytes());
    buf.push(nchunks as u8);
    buf.push(ext_total as u8);
}

/// Writes the ext block: `w.ext` truncated/zero-padded to `ext_total`.
fn emit_ext(buf: &mut Vec<u8>, w: &Window, ext_total: usize) {
    let n = w.ext.len().min(ext_total);
    buf.extend_from_slice(&w.ext[..n]);
    buf.resize(buf.len() + (ext_total - n), 0);
}

/// Encodes a single-packet window directly into `buf` (cleared first;
/// capacity is reused). `ext_total` pads/truncates the ext block to the
/// program's declared window-extension size so the switch parser sees a
/// fixed layout.
pub fn encode_window_into(w: &Window, ext_total: usize, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(encoded_len(w, ext_total));
    emit_prelude(
        buf,
        w,
        if w.last { FLAG_LAST } else { 0 },
        w.chunks.len(),
        ext_total,
    );
    for c in &w.chunks {
        buf.extend_from_slice(&c.offset.to_be_bytes());
        buf.extend_from_slice(&(c.data.len() as u16).to_be_bytes());
    }
    emit_ext(buf, w, ext_total);
    for c in &w.chunks {
        buf.extend_from_slice(&c.data);
    }
}

/// Encodes a single-packet window into a fresh buffer. Allocating
/// convenience wrapper over [`encode_window_into`].
pub fn encode_window(w: &Window, ext_total: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_window_into(w, ext_total, &mut buf);
    buf
}

/// Decodes a packet into a window.
pub fn decode_window(bytes: &[u8]) -> Result<Window, WireError> {
    let mut w = Window {
        kernel: KernelId(0),
        seq: 0,
        sender: HostId(0),
        from: NodeId::Host(HostId(0)),
        last: false,
        chunks: Vec::new(),
        ext: Vec::new(),
    };
    decode_window_into(bytes, &mut w)?;
    Ok(w)
}

/// Decodes a packet into an existing window, reusing its chunk and ext
/// buffers — the receive-side counterpart of [`encode_window_into`].
/// Steady-state decodes of same-shaped windows perform no heap
/// allocations. On error `w` is left unchanged.
pub fn decode_window_into(bytes: &[u8], w: &mut Window) -> Result<(), WireError> {
    let p = NcpPacket::new_checked(bytes)?;
    w.kernel = KernelId(p.kernel());
    w.seq = p.seq();
    w.sender = HostId(p.sender());
    w.from = NodeId::from_wire(p.from());
    w.last = p.flags() & FLAG_LAST != 0;
    let n = p.nchunks() as usize;
    w.chunks.truncate(n);
    while w.chunks.len() < n {
        w.chunks.push(Chunk {
            offset: 0,
            data: Vec::new(),
        });
    }
    for (i, c) in w.chunks.iter_mut().enumerate() {
        c.offset = p.chunk_desc(i).0;
        fill_aligned(&mut c.data, p.chunk_data(i));
    }
    w.ext.clear();
    w.ext.extend_from_slice(p.ext());
    Ok(())
}

/// Splits a window into packets no larger than `mtu`, writing each
/// fragment directly into a buffer drawn from `pool` and pushing it onto
/// `out`. Single-fragment windows get one packet identical to
/// [`encode_window`]'s output.
///
/// Each fragment carries a subset of each chunk's bytes with corrected
/// array offsets, written in one pass — there is no intermediate
/// fragment `Window` and no encode-then-re-slice copy. Every fragment
/// sets [`FLAG_FRAGMENT`]; the first also sets [`FLAG_FIRST_FRAG`] and
/// all but the final set [`FLAG_MORE_FRAGS`] — so reassembly is order-
/// and loss-tolerant.
///
/// # Panics
/// Panics if `mtu` is too small to carry even one element of payload
/// next to the header.
pub fn fragment_window_into(
    w: &Window,
    ext_total: usize,
    mtu: usize,
    pool: &mut BufferPool,
    out: &mut Vec<Vec<u8>>,
) {
    if encoded_len(w, ext_total) <= mtu {
        let mut buf = pool.get();
        encode_window_into(w, ext_total, &mut buf);
        out.push(buf);
        return;
    }
    let overhead = HEADER_LEN + w.chunks.len() * CHUNK_DESC_LEN + ext_total;
    assert!(
        mtu > overhead,
        "mtu {mtu} cannot fit the NCP header overhead {overhead}"
    );
    let budget = mtu - overhead;
    let mut cursors: Vec<usize> = vec![0; w.chunks.len()];
    let mut takes: Vec<usize> = vec![0; w.chunks.len()];
    let mut first = true;
    loop {
        // Plan this fragment: how many payload bytes of each chunk fit.
        let mut used = 0usize;
        let mut any = false;
        for (i, c) in w.chunks.iter().enumerate() {
            let rest = c.data.len() - cursors[i];
            let take = rest.min(budget.saturating_sub(used));
            takes[i] = take;
            used += take;
            if take > 0 {
                any = true;
            }
        }
        if !any {
            break;
        }
        let done = cursors
            .iter()
            .zip(takes.iter())
            .zip(&w.chunks)
            .all(|((&cur, &take), c)| cur + take == c.data.len());
        let mut flags = FLAG_FRAGMENT;
        if w.last && done {
            flags |= FLAG_LAST;
        }
        if first {
            flags |= FLAG_FIRST_FRAG;
        }
        if !done {
            flags |= FLAG_MORE_FRAGS;
        }
        // Emit the fragment in one pass into a pooled buffer.
        let mut buf = pool.get();
        buf.reserve(overhead + used);
        emit_prelude(&mut buf, w, flags, w.chunks.len(), ext_total);
        for (i, c) in w.chunks.iter().enumerate() {
            buf.extend_from_slice(&(c.offset + cursors[i] as u32).to_be_bytes());
            buf.extend_from_slice(&(takes[i] as u16).to_be_bytes());
        }
        emit_ext(&mut buf, w, ext_total);
        for (i, c) in w.chunks.iter().enumerate() {
            buf.extend_from_slice(&c.data[cursors[i]..cursors[i] + takes[i]]);
            cursors[i] += takes[i];
        }
        out.push(buf);
        first = false;
        if done {
            break;
        }
    }
}

/// Splits a window into packets no larger than `mtu`. Allocating
/// convenience wrapper over [`fragment_window_into`].
pub fn fragment_window(w: &Window, ext_total: usize, mtu: usize) -> Vec<Vec<u8>> {
    let mut pool = BufferPool::with_limit(0);
    let mut out = Vec::new();
    fragment_window_into(w, ext_total, mtu, &mut pool, &mut out);
    out
}

/// Key identifying a window under reassembly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FragKey {
    sender: u16,
    kernel: u16,
    seq: u32,
}

/// Host-side reassembly of (possibly fragmented) windows.
///
/// Feed every received packet to [`Reassembler::push`]; complete windows
/// pop out. Fragments may arrive in any order and duplicates are
/// tolerated; a window completes once the first fragment (chunk start
/// offsets), the final fragment (chunk end offsets), and a gap-free byte
/// coverage in between have all been seen.
///
/// Memory is bounded: at most [`DEFAULT_MAX_PENDING`] windows (override
/// with [`Reassembler::with_max_pending`]) are held mid-reassembly;
/// inserting beyond the cap evicts the partial window untouched for the
/// longest. Fragment piece buffers are recycled through an internal
/// [`BufferPool`], so steady-state reassembly of same-shaped windows
/// stops allocating.
#[derive(Debug)]
pub struct Reassembler {
    partial: HashMap<FragKey, Partial>,
    max_pending: usize,
    /// Monotone push counter, for staleness ranking.
    tick: u64,
    evictions: u64,
    pool: BufferPool,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler {
            partial: HashMap::new(),
            max_pending: DEFAULT_MAX_PENDING,
            tick: 0,
            evictions: 0,
            pool: BufferPool::new(),
        }
    }
}

#[derive(Debug)]
struct Partial {
    meta: Window,
    /// Per chunk: disjoint received pieces `(offset, data)`.
    pieces: Vec<Vec<(u32, Vec<u8>)>>,
    /// Per chunk: start offset (from the FIRST fragment).
    starts: Vec<Option<u32>>,
    /// Per chunk: end offset (from the final fragment).
    ends: Vec<Option<u32>>,
    /// Tick of the last fragment that advanced this window.
    touched: u64,
}

impl Partial {
    fn complete(&self) -> bool {
        for c in 0..self.pieces.len() {
            let (Some(start), Some(end)) = (self.starts[c], self.ends[c]) else {
                return false;
            };
            let received: usize = self.pieces[c].iter().map(|(_, d)| d.len()).sum();
            if received != (end - start) as usize {
                return false;
            }
        }
        true
    }

    /// Builds the final window, returning every piece buffer to `pool`.
    fn assemble(mut self, pool: &mut BufferPool) -> Window {
        let mut chunks = Vec::with_capacity(self.pieces.len());
        for (c, mut pieces) in self.pieces.drain(..).enumerate() {
            let start = self.starts[c].expect("complete");
            let end = self.ends[c].expect("complete");
            let len = (end - start) as usize;
            let mut data = aligned_vec(len);
            data.resize(len, 0);
            pieces.sort_by_key(|(o, _)| *o);
            for (off, piece) in pieces {
                let rel = (off - start) as usize;
                data[rel..rel + piece.len()].copy_from_slice(&piece);
                pool.put(piece);
            }
            chunks.push(Chunk {
                offset: start,
                data,
            });
        }
        Window {
            chunks,
            ..self.meta
        }
    }

    /// Returns every piece buffer to `pool` without assembling.
    fn recycle(mut self, pool: &mut BufferPool) {
        for pieces in self.pieces.drain(..) {
            for (_, piece) in pieces {
                pool.put(piece);
            }
        }
    }
}

impl Reassembler {
    /// Creates a reassembler with the default pending-window cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the cap on windows concurrently under reassembly.
    ///
    /// # Panics
    /// Panics if `max` is zero.
    pub fn with_max_pending(max: usize) -> Self {
        assert!(max > 0, "max_pending must be positive");
        Reassembler {
            max_pending: max,
            ..Self::default()
        }
    }

    /// Ingests one packet. Returns a completed window if this packet
    /// finished one (or was an unfragmented window).
    pub fn push(&mut self, bytes: &[u8]) -> Result<Option<Window>, WireError> {
        let p = NcpPacket::new_checked(bytes)?;
        let flags = p.flags();
        if flags & FLAG_FRAGMENT == 0 {
            // Unfragmented window: fast path.
            return Ok(Some(decode_window(bytes)?));
        }
        self.tick += 1;
        let key = FragKey {
            sender: p.sender(),
            kernel: p.kernel(),
            seq: p.seq(),
        };
        let nchunks = p.nchunks() as usize;
        if !self.partial.contains_key(&key) && self.partial.len() >= self.max_pending {
            self.evict_stalest();
        }
        let entry = self.partial.entry(key).or_insert_with(|| Partial {
            meta: Window {
                kernel: KernelId(p.kernel()),
                seq: p.seq(),
                sender: HostId(p.sender()),
                from: NodeId::from_wire(p.from()),
                last: false,
                chunks: vec![],
                ext: p.ext().to_vec(),
            },
            pieces: vec![Vec::new(); nchunks],
            starts: vec![None; nchunks],
            ends: vec![None; nchunks],
            touched: 0,
        });
        entry.touched = self.tick;
        let first = flags & FLAG_FIRST_FRAG != 0;
        let final_frag = flags & FLAG_MORE_FRAGS == 0;
        if final_frag {
            entry.meta.last = flags & FLAG_LAST != 0;
        }
        for c in 0..nchunks.min(entry.pieces.len()) {
            let (offset, len) = p.chunk_desc(c);
            if first {
                entry.starts[c] = Some(offset);
            }
            if final_frag {
                entry.ends[c] = Some(offset + len as u32);
            }
            if len > 0 && !entry.pieces[c].iter().any(|(o, _)| *o == offset) {
                // Copy the payload straight out of the packet into a
                // recycled buffer — the only copy on this path.
                let mut piece = self.pool.get();
                piece.extend_from_slice(p.chunk_data(c));
                entry.pieces[c].push((offset, piece));
            }
        }
        if entry.complete() {
            let done = self.partial.remove(&key).expect("entry exists");
            return Ok(Some(done.assemble(&mut self.pool)));
        }
        Ok(None)
    }

    /// Evicts the partial window that has gone longest without progress.
    fn evict_stalest(&mut self) {
        let Some(key) = self
            .partial
            .iter()
            .min_by_key(|(_, p)| p.touched)
            .map(|(k, _)| *k)
        else {
            return;
        };
        if let Some(p) = self.partial.remove(&key) {
            p.recycle(&mut self.pool);
            self.evictions += 1;
        }
    }

    /// Number of windows currently mid-reassembly.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Number of partial windows dropped by the pending-window cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops all partial windows (loss-handling policy is the caller's),
    /// recycling their buffers.
    pub fn clear(&mut self) {
        for (_, p) in self.partial.drain() {
            p.recycle(&mut self.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::ScalarType;

    fn window(vals: &[u32], seq: u32, last: bool) -> Window {
        Window {
            kernel: KernelId(2),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last,
            chunks: vec![Chunk {
                offset: seq * vals.len() as u32 * 4,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![0xEE, 0xFF],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let w = window(&[1, 2, 3, 4], 5, true);
        let bytes = encode_window(&w, 2);
        let back = decode_window(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn encode_into_reuses_capacity() {
        let w = window(&[1, 2, 3, 4], 5, true);
        let mut buf = Vec::new();
        encode_window_into(&w, 2, &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        assert_eq!(buf.len(), encoded_len(&w, 2));
        // Re-encoding into the same buffer must not reallocate.
        encode_window_into(&w, 2, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
        assert_eq!(decode_window(&buf).unwrap(), w);
    }

    #[test]
    fn decode_into_reuses_buffers() {
        let w = window(&[1, 2, 3, 4], 5, true);
        let bytes = encode_window(&w, 2);
        let mut scratch = decode_window(&bytes).unwrap();
        let chunk_ptr = scratch.chunks[0].data.as_ptr();
        // Decoding a same-shaped window reuses chunk and ext storage.
        let w2 = window(&[9, 8, 7, 6], 6, false);
        let bytes2 = encode_window(&w2, 2);
        decode_window_into(&bytes2, &mut scratch).unwrap();
        assert_eq!(scratch.chunks[0].data.as_ptr(), chunk_ptr);
        let expect = decode_window(&bytes2).unwrap();
        assert_eq!(scratch, expect);
        // A malformed packet leaves the window untouched.
        assert!(decode_window_into(&[1, 2, 3], &mut scratch).is_err());
        assert_eq!(scratch, expect);
    }

    #[test]
    fn ext_padded_to_program_size() {
        let mut w = window(&[1], 0, false);
        w.ext = vec![0xAB];
        let bytes = encode_window(&w, 4);
        let back = decode_window(&bytes).unwrap();
        assert_eq!(back.ext, vec![0xAB, 0, 0, 0]);
    }

    #[test]
    fn single_packet_fragmentation_is_identity() {
        let w = window(&[1, 2], 0, true);
        let frags = fragment_window(&w, 2, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(decode_window(&frags[0]).unwrap(), w);
    }

    #[test]
    fn fragmentation_splits_and_reassembles() {
        // 64 elements = 256 payload bytes; tiny MTU forces fragments.
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals, 3, true);
        let frags = fragment_window(&w, 2, 96);
        assert!(frags.len() > 1, "expected multiple fragments");
        // All but last carry MORE_FRAGS.
        for (i, f) in frags.iter().enumerate() {
            let p = NcpPacket::new_checked(&f[..]).unwrap();
            let more = p.flags() & FLAG_MORE_FRAGS != 0;
            assert_eq!(more, i + 1 < frags.len(), "fragment {i}");
            assert!(f.len() <= 96, "fragment {i} exceeds mtu: {}", f.len());
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            out = r.push(f).unwrap();
        }
        let got = out.expect("window completes on the final fragment");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
        assert_eq!(got.chunks[0].offset, w.chunks[0].offset);
        assert!(got.last);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn pooled_fragmentation_matches_allocating_path() {
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals, 3, true);
        let reference = fragment_window(&w, 2, 96);
        let mut pool = BufferPool::new();
        let mut out = Vec::new();
        fragment_window_into(&w, 2, 96, &mut pool, &mut out);
        assert_eq!(out, reference, "pooled path must be wire-identical");
        // Recycle and refragment: still identical, buffers reused.
        for b in out.drain(..) {
            pool.put(b);
        }
        let pooled = pool.len();
        assert!(pooled >= reference.len());
        fragment_window_into(&w, 2, 96, &mut pool, &mut out);
        assert_eq!(out, reference);
        assert_eq!(pool.len(), pooled - reference.len());
    }

    #[test]
    fn out_of_order_fragments() {
        let vals: Vec<u32> = (0..32).collect();
        let w = window(&vals, 0, false);
        let mut frags = fragment_window(&w, 2, 80);
        assert!(frags.len() >= 3);
        frags.swap(0, 1);
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            got = r.push(f).unwrap();
        }
        let got = got.expect("complete");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
    }

    #[test]
    fn interleaved_windows_reassemble_independently() {
        let w0 = window(&(0..32).collect::<Vec<_>>(), 0, false);
        let w1 = window(&(100..132).collect::<Vec<_>>(), 1, true);
        let f0 = fragment_window(&w0, 2, 80);
        let f1 = fragment_window(&w1, 2, 80);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        for (a, b) in f0.iter().zip(&f1) {
            if let Some(w) = r.push(a).unwrap() {
                done.push(w);
            }
            if let Some(w) = r.push(b).unwrap() {
                done.push(w);
            }
        }
        assert_eq!(done.len(), 2);
        let seqs: Vec<u32> = done.iter().map(|w| w.seq).collect();
        assert!(seqs.contains(&0) && seqs.contains(&1));
    }

    #[test]
    fn unfragmented_fast_path() {
        let w = window(&[9, 9], 7, true);
        let mut r = Reassembler::new();
        let got = r.push(&encode_window(&w, 2)).unwrap().unwrap();
        assert_eq!(got, w);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembler_rejects_garbage() {
        let mut r = Reassembler::new();
        assert!(r.push(&[0u8; 4]).is_err());
    }

    #[test]
    fn pending_cap_evicts_stalest() {
        // Two-fragment windows; feed only the first fragment of seqs
        // 0..4 into a cap-2 reassembler.
        let mut r = Reassembler::with_max_pending(2);
        let mk = |seq| fragment_window(&window(&(0..32).collect::<Vec<_>>(), seq, true), 2, 80);
        let all: Vec<_> = (0..4).map(mk).collect();
        for frags in &all {
            r.push(&frags[0]).unwrap();
        }
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evictions(), 2);
        // The two stalest (seq 0 and 1) were dropped; seq 3 completes.
        let mut done = None;
        for f in &all[3][1..] {
            done = r.push(f).unwrap();
        }
        assert_eq!(done.expect("seq 3 survives").seq, 3);
        // Seq 0 was evicted: its remaining fragments no longer complete
        // (the FIRST fragment's start offsets are gone).
        let mut done = None;
        for f in &all[0][1..] {
            done = r.push(f).unwrap();
        }
        assert!(done.is_none());
    }

    #[test]
    fn pool_buffers_stay_aligned_across_reuse() {
        let mut pool = BufferPool::new();
        let mut last_ptr = None;
        for round in 0..4 {
            let mut buf = pool.get();
            assert_eq!(
                buf.as_ptr() as usize % PAYLOAD_ALIGN,
                0,
                "round {round}: pool handed out a misaligned buffer"
            );
            // Steady state: the same aligned allocation cycles through.
            if let Some(p) = last_ptr {
                assert_eq!(buf.as_ptr(), p, "round {round}: buffer not reused");
            }
            buf.extend_from_slice(&[0xAB; 24]);
            last_ptr = Some(buf.as_ptr());
            pool.put(buf);
        }
        // A buffer that regrew off the boundary mid-use is re-homed (or
        // dropped) by `put`, never handed back misaligned.
        let mut big = pool.get();
        big.resize(1 << 16, 0);
        pool.put(big);
        let back = pool.get();
        assert_eq!(back.as_ptr() as usize % PAYLOAD_ALIGN, 0);
        assert!(back.capacity() >= 1 << 16, "re-homed buffer keeps capacity");
    }

    #[test]
    fn decoded_and_reassembled_payloads_are_aligned() {
        let w = window(&(0..64).collect::<Vec<_>>(), 1, true);
        // Single-packet decode.
        let got = decode_window(&encode_window(&w, 2)).unwrap();
        assert_eq!(got.chunks[0].data.as_ptr() as usize % PAYLOAD_ALIGN, 0);
        // Decode-into with a recycled window keeps the payload aligned.
        let mut scratch = got;
        let bytes = encode_window(&window(&(64..128).collect::<Vec<_>>(), 2, true), 2);
        decode_window_into(&bytes, &mut scratch).unwrap();
        assert_eq!(scratch.chunks[0].data.as_ptr() as usize % PAYLOAD_ALIGN, 0);
        // Multi-fragment reassembly.
        let mut r = Reassembler::new();
        let mut out = None;
        for f in fragment_window(&w, 2, 96) {
            out = r.push(&f).unwrap();
        }
        let got = out.expect("window completes");
        assert_eq!(got.chunks[0].data.as_ptr() as usize % PAYLOAD_ALIGN, 0);
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
    }

    #[test]
    fn multi_chunk_window_roundtrip() {
        let w = Window {
            kernel: KernelId(1),
            seq: 0,
            sender: HostId(2),
            from: NodeId::Switch(c3::SwitchId(1)),
            last: true,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: 77u64.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: vec![1; 16],
                },
                Chunk {
                    offset: 0,
                    data: vec![0], // bool chunk
                },
            ],
            ext: vec![],
        };
        let back = decode_window(&encode_window(&w, 0)).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.chunks[0].get(ScalarType::U64, 0).bits(), 77);
    }
}
