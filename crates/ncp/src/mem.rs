//! An in-memory loopback backend: per-node packet queues with optional
//! loss and reordering injection. Used by unit tests and the failure-
//! injection integration tests; the discrete-event simulator in
//! `netsim` supersedes it for timed experiments.

use c3::NodeId;
use std::collections::{HashMap, VecDeque};

/// A packet in flight on the memory bus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemPacket {
    /// Sending node.
    pub from: NodeId,
    /// The bytes.
    pub data: Vec<u8>,
}

/// A zero-latency in-memory packet bus between named nodes.
#[derive(Debug, Default)]
pub struct MemBus {
    queues: HashMap<NodeId, VecDeque<MemPacket>>,
    /// Drop every `n`-th packet when set (1-based counting).
    pub drop_every: Option<u64>,
    sent: u64,
    /// Packets dropped so far.
    pub dropped: u64,
}

impl MemBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `data` from `from` to `to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, data: Vec<u8>) {
        self.sent += 1;
        if let Some(n) = self.drop_every {
            if n > 0 && self.sent.is_multiple_of(n) {
                self.dropped += 1;
                return;
            }
        }
        self.queues
            .entry(to)
            .or_default()
            .push_back(MemPacket { from, data });
    }

    /// Receives the next packet queued for `node`.
    pub fn recv(&mut self, node: NodeId) -> Option<MemPacket> {
        self.queues.get_mut(&node)?.pop_front()
    }

    /// Packets waiting for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.queues.get(&node).map(|q| q.len()).unwrap_or(0)
    }

    /// Reverses `node`'s queue (reordering injection).
    pub fn scramble(&mut self, node: NodeId) {
        if let Some(q) = self.queues.get_mut(&node) {
            let mut v: Vec<_> = q.drain(..).collect();
            v.reverse();
            q.extend(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::HostId;

    fn h(n: u16) -> NodeId {
        NodeId::Host(HostId(n))
    }

    #[test]
    fn fifo_delivery() {
        let mut bus = MemBus::new();
        bus.send(h(1), h(2), vec![1]);
        bus.send(h(1), h(2), vec![2]);
        assert_eq!(bus.pending(h(2)), 2);
        assert_eq!(bus.recv(h(2)).unwrap().data, vec![1]);
        assert_eq!(bus.recv(h(2)).unwrap().data, vec![2]);
        assert!(bus.recv(h(2)).is_none());
    }

    #[test]
    fn loss_injection() {
        let mut bus = MemBus::new();
        bus.drop_every = Some(2);
        for i in 0..10u8 {
            bus.send(h(1), h(2), vec![i]);
        }
        assert_eq!(bus.dropped, 5);
        assert_eq!(bus.pending(h(2)), 5);
    }

    #[test]
    fn scramble_reorders() {
        let mut bus = MemBus::new();
        for i in 0..3u8 {
            bus.send(h(1), h(2), vec![i]);
        }
        bus.scramble(h(2));
        assert_eq!(bus.recv(h(2)).unwrap().data, vec![2]);
        assert_eq!(bus.recv(h(2)).unwrap().data, vec![1]);
        assert_eq!(bus.recv(h(2)).unwrap().data, vec![0]);
    }
}
