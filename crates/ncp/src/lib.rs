#![warn(missing_docs)]

//! # ncp — the Net Compute Protocol
//!
//! NCP is the window transport of the paper's §3.2: *"Besides being a
//! transport protocol for windows, NCP also encodes kernel execution
//! context"* — which kernel to execute, the offsets of array chunks, and
//! the programmer's extended window struct. It is deliberately
//! transport-agnostic; this crate provides:
//!
//! * [`wire`] — the packet format as a typed view over byte buffers
//!   (the smoltcp idiom: check once, then panic-free field accessors);
//! * [`codec`] — [`Window`](c3::Window) ↔ packet conversion, including
//!   multi-packet windows (fragmentation + host-side reassembly — the
//!   paper's future-work §6 extension; switches compute only on
//!   single-packet windows, exactly as the paper scopes its prototype);
//! * [`reliable`] — NCP-R, the reliability layer (ACK/NACK frames,
//!   AIMD in-flight window, RTO retransmission, receiver-side duplicate
//!   suppression), clock- and transport-agnostic;
//! * [`udp`] — the Sockets/UDP backend (the paper's first prototype
//!   target), a thin endpoint over `std::net::UdpSocket`;
//! * [`mem`] — an in-memory loopback backend for tests.
//!
//! The wire layout is pinned in DESIGN.md §4.4 and must match the parser
//! `ncl-p4` generates; cross-crate tests in `ncl-core` enforce the
//! agreement.

pub mod codec;
pub mod mem;
pub mod reliable;
pub mod udp;
pub mod wire;

pub use codec::{
    decode_window, decode_window_into, encode_window, encode_window_into, encoded_len,
    fragment_window, fragment_window_into, BufferPool, Reassembler, PAYLOAD_ALIGN,
};
pub use reliable::{Receiver, ReceiverState, ReliableConfig, Sender, SenderState};
pub use udp::{RecvEvent, UdpEndpoint, NCP_UDP_PORT};
pub use wire::{
    AckRepr, NcpPacket, NcpRepr, FLAG_ACK, FLAG_FIRST_FRAG, FLAG_FRAGMENT, FLAG_LAST,
    FLAG_MORE_FRAGS, FLAG_NACK, FLAG_TELEMETRY, HEADER_LEN, MAGIC, VERSION,
};
