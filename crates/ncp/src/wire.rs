//! The NCP packet format.
//!
//! ```text
//!  0               2       3       4               6
//! +-------+-------+-------+-------+-------+-------+-------+-------+
//! |     magic     | ver   | flags |   kernel_id   |  window_seq   :
//! +-------+-------+-------+-------+-------+-------+-------+-------+
//! :  window_seq   |    sender     |     from      |nchunk |ext_len|
//! +-------+-------+-------+-------+-------+-------+-------+-------+
//! | chunk descriptors: nchunks × (offset u32, len u16)            |
//! +---------------------------------------------------------------+
//! | ext bytes (ext_len)                                           |
//! +---------------------------------------------------------------+
//! | payload: chunk bytes, concatenated                            |
//! +---------------------------------------------------------------+
//! ```
//!
//! All fields big-endian. [`NcpPacket`] wraps a buffer after a single
//! `check_len` validation (the smoltcp pattern); [`NcpRepr`] is the
//! parsed high-level representation.

use c3::wire::{get_u16, get_u32, put_u16, put_u32};

/// NCP magic, "NC".
pub const MAGIC: u16 = 0x4E43;
/// Protocol version implemented by this crate.
pub const VERSION: u8 = 1;
/// Fixed header length (before chunk descriptors).
pub const HEADER_LEN: usize = 16;
/// Bytes per chunk descriptor.
pub const CHUNK_DESC_LEN: usize = 6;

/// Flags bit: this is the final window of the invocation.
pub const FLAG_LAST: u8 = 0x01;
/// Flags bit: more fragments of this window follow (multi-packet
/// windows).
pub const FLAG_MORE_FRAGS: u8 = 0x02;
/// Flags bit: this packet is a fragment of a multi-packet window (set
/// on every fragment including the last — distinguishes a final
/// fragment arriving first from an unfragmented window).
pub const FLAG_FRAGMENT: u8 = 0x04;
/// Flags bit: this is the first fragment (carries each chunk's true
/// starting offset).
pub const FLAG_FIRST_FRAG: u8 = 0x08;
/// Flags bit: NCP-R control frame acknowledging delivery of the
/// `(sender, kernel, seq)` named in the header. ACK frames carry no
/// chunks and are forwarded (never executed) by switches.
pub const FLAG_ACK: u8 = 0x10;
/// Flags bit: NCP-R control frame reporting a gap — the receiver saw
/// traffic past `seq` without delivering `seq` itself, so the sender
/// should retransmit immediately instead of waiting for its RTO.
pub const FLAG_NACK: u8 = 0x20;
/// Flags bit: the frame carries an in-band telemetry section *after*
/// the encoded window payload — a count byte plus `count` fixed-size
/// hop records (`nctel::hop`, DESIGN.md §4.9). The NCP length fields
/// fully determine the payload length, so decoders that do not
/// understand telemetry never look past the payload and skip the
/// section for free; telemetry-aware switches strip it, execute, stamp
/// a hop record, and re-append.
pub const FLAG_TELEMETRY: u8 = 0x40;

/// Errors from packet validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic mismatch — not an NCP packet.
    BadMagic,
    /// Unsupported version.
    BadVersion,
    /// Chunk descriptors or payload exceed the buffer.
    Inconsistent,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet shorter than the NCP header"),
            WireError::BadMagic => write!(f, "not an NCP packet (magic mismatch)"),
            WireError::BadVersion => write!(f, "unsupported NCP version"),
            WireError::Inconsistent => {
                write!(f, "chunk descriptors inconsistent with packet length")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A typed view over an NCP packet buffer.
///
/// Construct with [`NcpPacket::new_checked`]; accessors never panic on a
/// checked packet.
pub struct NcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> NcpPacket<T> {
    /// Wraps and validates a buffer.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let p = NcpPacket { buffer };
        p.check()?;
        Ok(p)
    }

    /// Wraps without validation (emission path: caller sizes the
    /// buffer).
    pub fn new_unchecked(buffer: T) -> Self {
        NcpPacket { buffer }
    }

    fn check(&self) -> Result<(), WireError> {
        let b = self.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if get_u16(b, 0) != MAGIC {
            return Err(WireError::BadMagic);
        }
        if b[2] != VERSION {
            return Err(WireError::BadVersion);
        }
        let nchunks = b[14] as usize;
        let ext_len = b[15] as usize;
        let mut need = HEADER_LEN + nchunks * CHUNK_DESC_LEN + ext_len;
        if b.len() < need {
            return Err(WireError::Inconsistent);
        }
        for i in 0..nchunks {
            let off = HEADER_LEN + i * CHUNK_DESC_LEN;
            need += get_u16(b, off + 4) as usize;
        }
        if b.len() < need {
            return Err(WireError::Inconsistent);
        }
        Ok(())
    }

    /// Releases the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The magic field.
    pub fn magic(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// The version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[2]
    }

    /// The flags field.
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[3]
    }

    /// The kernel id.
    pub fn kernel(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// The window sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 6)
    }

    /// The sending host id.
    pub fn sender(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 10)
    }

    /// The previous-hop node id (wire encoding).
    pub fn from(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 12)
    }

    /// Number of chunks.
    pub fn nchunks(&self) -> u8 {
        self.buffer.as_ref()[14]
    }

    /// Bytes of the extended window struct.
    pub fn ext_len(&self) -> u8 {
        self.buffer.as_ref()[15]
    }

    /// Chunk descriptor `i`: `(array byte offset, chunk byte length)`.
    pub fn chunk_desc(&self, i: usize) -> (u32, u16) {
        let b = self.buffer.as_ref();
        let off = HEADER_LEN + i * CHUNK_DESC_LEN;
        (get_u32(b, off), get_u16(b, off + 4))
    }

    /// The ext block.
    pub fn ext(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        let start = HEADER_LEN + self.nchunks() as usize * CHUNK_DESC_LEN;
        &b[start..start + self.ext_len() as usize]
    }

    /// Payload bytes of chunk `i`.
    pub fn chunk_data(&self, i: usize) -> &[u8] {
        let b = self.buffer.as_ref();
        let mut start =
            HEADER_LEN + self.nchunks() as usize * CHUNK_DESC_LEN + self.ext_len() as usize;
        for j in 0..i {
            start += self.chunk_desc(j).1 as usize;
        }
        let len = self.chunk_desc(i).1 as usize;
        &b[start..start + len]
    }

    /// Total packet length implied by the header.
    pub fn total_len(&self) -> usize {
        let mut n = HEADER_LEN + self.nchunks() as usize * CHUNK_DESC_LEN + self.ext_len() as usize;
        for i in 0..self.nchunks() as usize {
            n += self.chunk_desc(i).1 as usize;
        }
        n
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> NcpPacket<T> {
    /// Sets the flags field.
    pub fn set_flags(&mut self, v: u8) {
        self.buffer.as_mut()[3] = v;
    }

    /// Sets the previous-hop field (rewritten at each NCP device).
    pub fn set_from(&mut self, v: u16) {
        put_u16(self.buffer.as_mut(), 12, v);
    }

    /// Sets the kernel id.
    pub fn set_kernel(&mut self, v: u16) {
        put_u16(self.buffer.as_mut(), 4, v);
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        put_u32(self.buffer.as_mut(), 6, v);
    }
}

/// High-level representation of an NCP header (without payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NcpRepr {
    /// Flags bits.
    pub flags: u8,
    /// Kernel id.
    pub kernel: u16,
    /// Window sequence number.
    pub seq: u32,
    /// Sender host id.
    pub sender: u16,
    /// Previous hop (wire encoding).
    pub from: u16,
    /// Chunk descriptors.
    pub chunks: Vec<(u32, u16)>,
    /// Ext block.
    pub ext: Vec<u8>,
}

impl NcpRepr {
    /// Parses from a checked packet.
    pub fn parse<T: AsRef<[u8]>>(p: &NcpPacket<T>) -> Self {
        NcpRepr {
            flags: p.flags(),
            kernel: p.kernel(),
            seq: p.seq(),
            sender: p.sender(),
            from: p.from(),
            chunks: (0..p.nchunks() as usize).map(|i| p.chunk_desc(i)).collect(),
            ext: p.ext().to_vec(),
        }
    }

    /// Bytes needed to emit this header plus `payload_len` payload
    /// bytes.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
            + self.chunks.len() * CHUNK_DESC_LEN
            + self.ext.len()
            + self.chunks.iter().map(|&(_, l)| l as usize).sum::<usize>()
    }

    /// Emits the header into `buf` (which must be at least
    /// [`NcpRepr::buffer_len`] long); payload is written by the caller
    /// after [`Self::payload_offset`].
    pub fn emit(&self, buf: &mut [u8]) {
        put_u16(buf, 0, MAGIC);
        buf[2] = VERSION;
        buf[3] = self.flags;
        put_u16(buf, 4, self.kernel);
        put_u32(buf, 6, self.seq);
        put_u16(buf, 10, self.sender);
        put_u16(buf, 12, self.from);
        buf[14] = self.chunks.len() as u8;
        buf[15] = self.ext.len() as u8;
        for (i, &(off, len)) in self.chunks.iter().enumerate() {
            let o = HEADER_LEN + i * CHUNK_DESC_LEN;
            put_u32(buf, o, off);
            put_u16(buf, o + 4, len);
        }
        let ext_start = HEADER_LEN + self.chunks.len() * CHUNK_DESC_LEN;
        buf[ext_start..ext_start + self.ext.len()].copy_from_slice(&self.ext);
    }

    /// Byte offset where the payload starts.
    pub fn payload_offset(&self) -> usize {
        HEADER_LEN + self.chunks.len() * CHUNK_DESC_LEN + self.ext.len()
    }
}

/// An NCP-R control frame: a bare NCP header whose flags carry
/// [`FLAG_ACK`] or [`FLAG_NACK`] and whose `(kernel, seq, sender)`
/// triple names the window being acknowledged. Control frames have no
/// chunks and no ext block, so they are a fixed [`HEADER_LEN`] bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AckRepr {
    /// True for a NACK (retransmit request), false for an ACK.
    pub nack: bool,
    /// Kernel id of the acknowledged window.
    pub kernel: u16,
    /// Sequence number of the acknowledged window.
    pub seq: u32,
    /// Original sender of the acknowledged window (the host the frame
    /// is addressed to, logically).
    pub sender: u16,
    /// Node emitting the frame (wire encoding).
    pub from: u16,
}

impl AckRepr {
    /// Parses a control frame from a checked packet. Returns `None` if
    /// the packet is not an ACK/NACK frame.
    pub fn parse<T: AsRef<[u8]>>(p: &NcpPacket<T>) -> Option<Self> {
        let flags = p.flags();
        if flags & (FLAG_ACK | FLAG_NACK) == 0 {
            return None;
        }
        Some(AckRepr {
            nack: flags & FLAG_NACK != 0,
            kernel: p.kernel(),
            seq: p.seq(),
            sender: p.sender(),
            from: p.from(),
        })
    }

    /// Emits the frame into (cleared) `buf` — exactly [`HEADER_LEN`]
    /// bytes. `buf` is typically recycled through a
    /// [`crate::codec::BufferPool`], so steady-state ACK traffic
    /// allocates nothing.
    pub fn emit_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.resize(HEADER_LEN, 0);
        put_u16(buf, 0, MAGIC);
        buf[2] = VERSION;
        buf[3] = if self.nack { FLAG_NACK } else { FLAG_ACK };
        put_u16(buf, 4, self.kernel);
        put_u32(buf, 6, self.seq);
        put_u16(buf, 10, self.sender);
        put_u16(buf, 12, self.from);
        buf[14] = 0;
        buf[15] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = NcpRepr {
            flags: FLAG_LAST,
            kernel: 7,
            seq: 42,
            sender: 3,
            from: 0x8001,
            chunks: vec![(0, 8), (16, 4)],
            ext: vec![0xAA, 0xBB],
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        let off = repr.payload_offset();
        for (i, b) in buf[off..].iter_mut().enumerate() {
            *b = i as u8;
        }
        buf
    }

    #[test]
    fn parse_emitted_packet() {
        let buf = sample();
        let p = NcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.magic(), MAGIC);
        assert_eq!(p.version(), VERSION);
        assert_eq!(p.flags(), FLAG_LAST);
        assert_eq!(p.kernel(), 7);
        assert_eq!(p.seq(), 42);
        assert_eq!(p.sender(), 3);
        assert_eq!(p.from(), 0x8001);
        assert_eq!(p.nchunks(), 2);
        assert_eq!(p.ext(), &[0xAA, 0xBB]);
        assert_eq!(p.chunk_desc(0), (0, 8));
        assert_eq!(p.chunk_desc(1), (16, 4));
        assert_eq!(p.chunk_data(0), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.chunk_data(1), &[8, 9, 10, 11]);
        assert_eq!(p.total_len(), buf.len());
    }

    #[test]
    fn repr_roundtrip() {
        let buf = sample();
        let p = NcpPacket::new_checked(&buf[..]).unwrap();
        let repr = NcpRepr::parse(&p);
        let mut out = vec![0u8; repr.buffer_len()];
        repr.emit(&mut out);
        let off = repr.payload_offset();
        out[off..].copy_from_slice(&buf[off..]);
        assert_eq!(out, buf);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = sample();
        buf[0] = 0;
        assert_eq!(
            NcpPacket::new_checked(&buf[..]).err(),
            Some(WireError::BadMagic)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = sample();
        buf[2] = 9;
        assert_eq!(
            NcpPacket::new_checked(&buf[..]).err(),
            Some(WireError::BadVersion)
        );
    }

    #[test]
    fn rejects_truncation() {
        let buf = sample();
        assert_eq!(
            NcpPacket::new_checked(&buf[..10]).err(),
            Some(WireError::Truncated)
        );
        // Cut into the payload.
        assert_eq!(
            NcpPacket::new_checked(&buf[..buf.len() - 1]).err(),
            Some(WireError::Inconsistent)
        );
    }

    #[test]
    fn ack_frame_roundtrip() {
        let ack = AckRepr {
            nack: false,
            kernel: 3,
            seq: 99,
            sender: 2,
            from: 0x8001,
        };
        let mut buf = Vec::new();
        ack.emit_into(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let p = NcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.flags(), FLAG_ACK);
        assert_eq!(p.nchunks(), 0);
        assert_eq!(AckRepr::parse(&p), Some(ack));
        // A data packet is not a control frame.
        let data = sample();
        let p = NcpPacket::new_checked(&data[..]).unwrap();
        assert_eq!(AckRepr::parse(&p), None);
        // NACK flag survives the roundtrip.
        let nack = AckRepr { nack: true, ..ack };
        nack.emit_into(&mut buf);
        let p = NcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(AckRepr::parse(&p), Some(nack));
    }

    #[test]
    fn mutators() {
        let buf = sample();
        let mut p = NcpPacket::new_unchecked(buf);
        p.set_from(0x8002);
        p.set_flags(FLAG_LAST | FLAG_MORE_FRAGS);
        p.set_seq(100);
        let buf = p.into_inner();
        let p = NcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.from(), 0x8002);
        assert_eq!(p.seq(), 100);
        assert!(p.flags() & FLAG_MORE_FRAGS != 0);
    }
}
