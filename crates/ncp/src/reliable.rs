//! NCP-R: the reliability layer over NCP windows.
//!
//! The paper leaves transport reliability open (§6); NCP-R closes it
//! with a classic sender/receiver split that stays transport-agnostic:
//!
//! * **Sender** ([`Sender`]) — tracks every launched window under its
//!   `(kernel, seq)` key, bounds the in-flight set with an AIMD
//!   congestion window, retransmits on RTO with exponential backoff,
//!   and retires windows on explicit ACK frames *or* on any response
//!   window carrying the same `(kernel, seq)` (ack-by-response: in both
//!   paper applications every request produces a same-keyed reply).
//! * **Receiver** ([`Receiver`]) — per-`(sender, kernel)` duplicate
//!   suppression with a delivery floor plus a bitmap above it, so
//!   retransmissions of already-delivered windows are dropped at the
//!   host edge and counted.
//!
//! Switch-side exactly-once execution is NOT handled here — that is the
//! compiler-lowered replay filter (`window.replay`, see
//! `ncl_ir::lower::ReplayFilter`). This module only makes windows
//! *arrive*; the filter makes re-arrivals *harmless*.
//!
//! The engine is poll-driven and clock-agnostic: time is a `u64` in
//! nanoseconds, fed by the caller (netsim's simulated clock or a
//! wall-clock via `std::time::Instant`). Nothing here does I/O.
//!
//! **Logical-clock audit (ncmc):** this module performs *no* wall-clock
//! reads — every timestamp enters through a `now: Time` parameter and
//! the only internal time state is `last_now` (event stamping) and the
//! per-window RTO deadlines derived from caller-fed `now`. The sole
//! wall-clock site in the crate is `udp::MonotonicClock`, outside the
//! state machines. That property makes runs bit-deterministic under a
//! purely logical clock, which the ncmc model checker relies on: it
//! forks sender/receiver state mid-schedule via [`Sender::save`]/
//! [`Sender::restore`] (and the [`Receiver`] pair) and replays shrunk
//! counterexamples exactly.

use nctel::{Counter, Registry, Scope, ScopeEvent, WindowKey};
use std::collections::HashMap;

/// Nanosecond timestamps, matching netsim's `Time`.
pub type Time = u64;

/// Tuning knobs for a [`Sender`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ReliableConfig {
    /// Initial retransmission timeout.
    pub rto: Time,
    /// RTO ceiling for the exponential backoff.
    pub max_rto: Time,
    /// Give up on a window after this many retransmissions.
    pub max_retries: u32,
    /// Initial congestion window (windows in flight).
    pub cwnd: usize,
    /// Congestion-window ceiling.
    pub max_cwnd: usize,
    /// Sequence slots per sender in the switch replay filter; the
    /// in-flight set is additionally capped at this value so sequence
    /// numbers never alias live filter cells. Zero disables the cap.
    pub filter_slots: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            rto: 2_000_000, // 2 ms: several sim RTTs, tiny for wall-clock
            max_rto: 64_000_000,
            max_retries: 16,
            cwnd: 4,
            max_cwnd: 64,
            filter_slots: 0,
        }
    }
}

/// Point-in-time snapshot of a [`Sender`]'s counters (which live on
/// the unified `nctel` registry; see [`Sender::attach_metrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SenderStats {
    /// Windows handed to [`Sender::track`].
    pub tracked: u64,
    /// Retransmissions requested by RTO expiry or NACK.
    pub retransmits: u64,
    /// Windows retired by ACK or response.
    pub acked: u64,
    /// Windows dropped after `max_retries`.
    pub abandoned: u64,
    /// Congestion-window cuts (loss signals).
    pub cwnd_cuts: u64,
}

/// Key of an in-flight window.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    kernel: u16,
    seq: u32,
}

#[derive(Clone, Debug)]
struct InFlight {
    deadline: Time,
    rto: Time,
    retries: u32,
}

/// Sender half of NCP-R: in-flight tracking, AIMD window, RTO backoff.
///
/// The caller owns the actual packet bytes (retransmission re-encodes
/// from the application's window storage); the sender only decides
/// *which* `(kernel, seq)` to (re)send and *when*.
#[derive(Debug)]
pub struct Sender {
    cfg: ReliableConfig,
    flight: HashMap<Key, InFlight>,
    /// Launch-ready windows the cwnd has not admitted yet, FIFO.
    queue: Vec<Key>,
    /// Current congestion window.
    cwnd: usize,
    /// Additive-increase accumulator (acks since last growth).
    acks_since_grow: usize,
    /// nctel counters (detached until [`Sender::attach_metrics`]).
    tracked: Counter,
    retransmits: Counter,
    acked: Counter,
    abandoned: Counter,
    cwnd_cuts: Counter,
    /// ncscope event sink plus this host's id (used as both the
    /// emitting node and the causal `sender` key).
    scope: Option<(Scope, u16)>,
    /// Timestamp of the most recent clocked call, so clock-less entry
    /// points (`on_ack`) can stamp events monotonically enough.
    last_now: Time,
}

impl Sender {
    /// A sender with the given knobs.
    pub fn new(cfg: ReliableConfig) -> Self {
        Sender {
            cwnd: cfg.cwnd.max(1),
            cfg,
            flight: HashMap::new(),
            queue: Vec::new(),
            acks_since_grow: 0,
            tracked: Counter::new(),
            retransmits: Counter::new(),
            acked: Counter::new(),
            abandoned: Counter::new(),
            cwnd_cuts: Counter::new(),
            scope: None,
            last_now: 0,
        }
    }

    /// Attaches an ncscope event sink: RTO firings, cwnd changes,
    /// NACKs, retirements and abandonments are emitted keyed by
    /// `(host, kernel, seq)`.
    pub fn attach_scope(&mut self, scope: &Scope, host: u16) {
        self.scope = Some((scope.clone(), host));
    }

    fn emit(&self, t: Time, kernel: u16, seq: u32, ev: ScopeEvent) {
        if let Some((scope, host)) = &self.scope {
            scope.emit(t, *host, WindowKey::new(*host, kernel, seq), ev);
        }
    }

    /// Registers this sender's counters on `reg` under
    /// `{prefix}.tracked`, `{prefix}.retransmits`, `{prefix}.acked`,
    /// `{prefix}.abandoned` and `{prefix}.cwnd_cuts`.
    pub fn attach_metrics(&self, reg: &Registry, prefix: &str) {
        self.attach_metrics_named(reg, |n| format!("{prefix}.{n}"));
    }

    /// Like [`Sender::attach_metrics`] but with caller-controlled
    /// naming: `name` maps each counter's short name (`tracked`,
    /// `retransmits`, `acked`, `abandoned`, `cwnd_cuts`) to the full
    /// registry name. Multi-tenant exports use this to place Prometheus
    /// labels *after* the full metric name.
    pub fn attach_metrics_named(&self, reg: &Registry, mut name: impl FnMut(&str) -> String) {
        reg.register_counter(&name("tracked"), &self.tracked);
        reg.register_counter(&name("retransmits"), &self.retransmits);
        reg.register_counter(&name("acked"), &self.acked);
        reg.register_counter(&name("abandoned"), &self.abandoned);
        reg.register_counter(&name("cwnd_cuts"), &self.cwnd_cuts);
    }

    /// Snapshot of the counters (compat shim over the nctel cells).
    pub fn stats(&self) -> SenderStats {
        SenderStats {
            tracked: self.tracked.get(),
            retransmits: self.retransmits.get(),
            acked: self.acked.get(),
            abandoned: self.abandoned.get(),
            cwnd_cuts: self.cwnd_cuts.get(),
        }
    }

    /// Effective in-flight cap right now.
    fn cap(&self) -> usize {
        if self.cfg.filter_slots > 0 {
            self.cwnd.min(self.cfg.filter_slots)
        } else {
            self.cwnd
        }
    }

    /// Registers a window the application wants delivered. Returns
    /// `true` if the window may be transmitted immediately; `false`
    /// means it is queued until the congestion window opens (the caller
    /// must not send it yet — [`Sender::poll`] will release it).
    pub fn track(&mut self, kernel: u16, seq: u32, now: Time) -> bool {
        self.tracked.inc();
        self.last_now = now;
        let key = Key { kernel, seq };
        if self.flight.len() < self.cap() {
            self.flight.insert(
                key,
                InFlight {
                    deadline: now + self.cfg.rto,
                    rto: self.cfg.rto,
                    retries: 0,
                },
            );
            true
        } else {
            self.queue.push(key);
            false
        }
    }

    /// Number of windows currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flight.len()
    }

    /// Number of windows waiting for the congestion window to open.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The `(kernel, seq)` keys of every window currently in flight,
    /// sorted. This is the drain-set snapshot a hitless upgrade takes
    /// at switchover: windows listed here keep executing on the old
    /// kernel version until acked, everything else routes to the new
    /// one (ncsched's `Upgrade::begin_drain`).
    pub fn in_flight_keys(&self) -> Vec<(u16, u32)> {
        let mut keys: Vec<(u16, u32)> = self.flight.keys().map(|k| (k.kernel, k.seq)).collect();
        keys.sort_unstable();
        keys
    }

    /// Whether every tracked window has been retired.
    pub fn idle(&self) -> bool {
        self.flight.is_empty() && self.queue.is_empty()
    }

    /// Current congestion window, for observability.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Retransmissions already spent on an in-flight window (`None`
    /// when `(kernel, seq)` is not in flight). Lets the transmitting
    /// host stamp `WindowSent` events with the true attempt number.
    pub fn retries(&self, kernel: u16, seq: u32) -> Option<u32> {
        self.flight.get(&Key { kernel, seq }).map(|f| f.retries)
    }

    /// An ACK frame (or any response window) for `(kernel, seq)`
    /// arrived. Returns `true` if it retired an in-flight window.
    pub fn on_ack(&mut self, kernel: u16, seq: u32) -> bool {
        let retired = self.flight.remove(&Key { kernel, seq }).is_some();
        if retired {
            self.acked.inc();
            self.emit(self.last_now, kernel, seq, ScopeEvent::WindowAcked);
            // Additive increase: one extra window per cwnd of acks.
            self.acks_since_grow += 1;
            if self.acks_since_grow >= self.cwnd && self.cwnd < self.cfg.max_cwnd {
                self.cwnd += 1;
                self.acks_since_grow = 0;
                self.emit(
                    self.last_now,
                    kernel,
                    seq,
                    ScopeEvent::CwndChanged {
                        cwnd: self.cwnd as u32,
                    },
                );
            }
        }
        retired
    }

    /// A NACK for `(kernel, seq)` arrived: the next [`Sender::poll`]
    /// retransmits it immediately (and applies the usual loss cut).
    pub fn on_nack(&mut self, kernel: u16, seq: u32, now: Time) {
        self.last_now = now;
        if let Some(f) = self.flight.get_mut(&Key { kernel, seq }) {
            f.deadline = now; // due immediately
            self.emit(now, kernel, seq, ScopeEvent::NackReceived);
        }
    }

    /// Multiplicative decrease, attributed to the window that signalled
    /// the loss.
    fn cut(&mut self, key: Key) {
        self.cwnd = (self.cwnd / 2).max(1);
        self.acks_since_grow = 0;
        self.cwnd_cuts.inc();
        self.emit(
            self.last_now,
            key.kernel,
            key.seq,
            ScopeEvent::CwndChanged {
                cwnd: self.cwnd as u32,
            },
        );
    }

    /// The earliest RTO deadline across the in-flight set (`None` when
    /// nothing is in flight). A purely-logical-clock driver (netsim,
    /// ncmc) jumps its clock here to make the next timer fire.
    pub fn next_deadline(&self) -> Option<Time> {
        self.flight.values().map(|f| f.deadline).min()
    }

    /// Captures the sender's protocol state — everything that decides
    /// future behavior, in canonical (sorted) order so equal states
    /// compare and hash equal. Counters, scope sinks and config are
    /// deliberately excluded: they are observability, not semantics.
    pub fn save(&self) -> SenderState {
        let mut flight: Vec<(u16, u32, Time, Time, u32)> = self
            .flight
            .iter()
            .map(|(k, f)| (k.kernel, k.seq, f.deadline, f.rto, f.retries))
            .collect();
        flight.sort_unstable();
        SenderState {
            cwnd: self.cwnd,
            acks_since_grow: self.acks_since_grow,
            last_now: self.last_now,
            flight,
            queue: self.queue.iter().map(|k| (k.kernel, k.seq)).collect(),
        }
    }

    /// Restores protocol state captured by [`Sender::save`], leaving
    /// counters and attached sinks untouched (metrics stay monotonic
    /// even when the ncmc checker rewinds a schedule branch).
    pub fn restore(&mut self, st: &SenderState) {
        self.cwnd = st.cwnd;
        self.acks_since_grow = st.acks_since_grow;
        self.last_now = st.last_now;
        self.flight = st
            .flight
            .iter()
            .map(|&(kernel, seq, deadline, rto, retries)| {
                (
                    Key { kernel, seq },
                    InFlight {
                        deadline,
                        rto,
                        retries,
                    },
                )
            })
            .collect();
        self.queue = st
            .queue
            .iter()
            .map(|&(kernel, seq)| Key { kernel, seq })
            .collect();
    }

    /// Advances the clock: expires RTOs (scheduling retransmits with
    /// doubled timeouts and an AIMD cut), abandons windows past
    /// `max_retries`, and admits queued windows into the freed capacity.
    ///
    /// Returns the `(kernel, seq)` pairs the caller must (re)transmit
    /// now, and the earliest next deadline to poll at (if any windows
    /// remain in flight).
    pub fn poll(&mut self, now: Time) -> (Vec<(u16, u32)>, Option<Time>) {
        self.last_now = now;
        let mut send = Vec::new();
        let mut expired: Vec<Key> = self
            .flight
            .iter()
            .filter(|(_, f)| f.deadline <= now)
            .map(|(k, _)| *k)
            .collect();
        expired.sort_by_key(|k| (k.kernel, k.seq));
        for key in expired {
            let f = self.flight.get_mut(&key).expect("still in flight");
            if f.retries >= self.cfg.max_retries {
                let retries = f.retries;
                self.flight.remove(&key);
                self.abandoned.inc();
                self.emit(
                    now,
                    key.kernel,
                    key.seq,
                    ScopeEvent::WindowAbandoned { retries },
                );
                continue;
            }
            f.retries += 1;
            f.rto = (f.rto * 2).min(self.cfg.max_rto);
            f.deadline = now + f.rto;
            let attempt = f.retries;
            self.retransmits.inc();
            self.emit(now, key.kernel, key.seq, ScopeEvent::RtoFired { attempt });
            self.cut(key);
            send.push((key.kernel, key.seq));
        }
        // Admit queued windows into whatever capacity is open.
        let mut i = 0;
        while i < self.queue.len() {
            if self.flight.len() >= self.cap() {
                break;
            }
            let key = self.queue.remove(i);
            self.flight.insert(
                key,
                InFlight {
                    deadline: now + self.cfg.rto,
                    rto: self.cfg.rto,
                    retries: 0,
                },
            );
            send.push((key.kernel, key.seq));
            i = 0; // removal shifted the queue; restart scan
        }
        let next = self.flight.values().map(|f| f.deadline).min();
        (send, next)
    }
}

/// A [`Sender`]'s protocol state, detached from its counters and sinks
/// (see [`Sender::save`]). `Clone + Ord`-friendly plain data so the
/// ncmc model checker can fork, hash and compare schedule branches.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SenderState {
    /// Congestion window.
    pub cwnd: usize,
    /// Additive-increase accumulator.
    pub acks_since_grow: usize,
    /// Timestamp of the most recent clocked call.
    pub last_now: Time,
    /// In-flight windows as `(kernel, seq, deadline, rto, retries)`,
    /// sorted.
    pub flight: Vec<(u16, u32, Time, Time, u32)>,
    /// cwnd-queued `(kernel, seq)` keys, FIFO order.
    pub queue: Vec<(u16, u32)>,
}

/// A [`Receiver`]'s protocol state (see [`Receiver::save`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ReceiverState {
    /// Per-`(sender, kernel)` dedup state as
    /// `(sender, kernel, floor, sorted offsets above the floor)`,
    /// sorted by key.
    pub entries: Vec<(u16, u16, u32, Vec<u32>)>,
}

/// Per-`(sender, kernel)` delivery state: a floor below which every
/// sequence number has been delivered, plus a bitmap for the out-of-
/// order region above it.
#[derive(Clone, Debug, Default)]
struct DeliveryState {
    /// All `seq < floor` are delivered.
    floor: u32,
    /// Delivered sequence numbers `>= floor`, as offsets from `floor`.
    above: Vec<u32>,
}

impl DeliveryState {
    fn seen(&self, seq: u32) -> bool {
        seq < self.floor || self.above.contains(&(seq - self.floor))
    }

    fn mark(&mut self, seq: u32) {
        if seq < self.floor {
            return;
        }
        let off = seq - self.floor;
        if !self.above.contains(&off) {
            self.above.push(off);
        }
        // Advance the floor over any now-contiguous prefix.
        while self.above.contains(&0) {
            self.above.retain(|&o| o != 0);
            for o in &mut self.above {
                *o -= 1;
            }
            self.floor += 1;
        }
    }
}

/// Point-in-time snapshot of a [`Receiver`]'s counters (which live on
/// the unified `nctel` registry; see [`Receiver::attach_metrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReceiverStats {
    /// Windows admitted (first delivery).
    pub delivered: u64,
    /// Windows suppressed as duplicates.
    pub duplicates: u64,
}

/// Receiver half of NCP-R: duplicate suppression at the host edge.
#[derive(Debug, Default)]
pub struct Receiver {
    state: HashMap<(u16, u16), DeliveryState>,
    /// nctel counters (detached until [`Receiver::attach_metrics`]).
    delivered: Counter,
    duplicates: Counter,
    /// ncscope event sink plus this host's id (the suppressing node).
    scope: Option<(Scope, u16)>,
}

impl Receiver {
    /// A fresh receiver.
    pub fn new() -> Self {
        Receiver::default()
    }

    /// Attaches an ncscope event sink: host-edge duplicate suppressions
    /// are emitted as `DupSuppressed { at: node }`.
    pub fn attach_scope(&mut self, scope: &Scope, node: u16) {
        self.scope = Some((scope.clone(), node));
    }

    /// Registers this receiver's counters on `reg` under
    /// `{prefix}.delivered` and `{prefix}.duplicates`.
    pub fn attach_metrics(&self, reg: &Registry, prefix: &str) {
        self.attach_metrics_named(reg, |n| format!("{prefix}.{n}"));
    }

    /// Like [`Receiver::attach_metrics`] but with caller-controlled
    /// naming (see [`Sender::attach_metrics_named`]).
    pub fn attach_metrics_named(&self, reg: &Registry, mut name: impl FnMut(&str) -> String) {
        reg.register_counter(&name("delivered"), &self.delivered);
        reg.register_counter(&name("duplicates"), &self.duplicates);
    }

    /// Snapshot of the counters (compat shim over the nctel cells).
    pub fn stats(&self) -> ReceiverStats {
        ReceiverStats {
            delivered: self.delivered.get(),
            duplicates: self.duplicates.get(),
        }
    }

    /// Captures the receiver's dedup state in canonical (sorted) order;
    /// the counterpart of [`Sender::save`].
    pub fn save(&self) -> ReceiverState {
        let mut entries: Vec<(u16, u16, u32, Vec<u32>)> = self
            .state
            .iter()
            .map(|(&(sender, kernel), st)| {
                let mut above = st.above.clone();
                above.sort_unstable();
                (sender, kernel, st.floor, above)
            })
            .collect();
        entries.sort_unstable();
        ReceiverState { entries }
    }

    /// Restores dedup state captured by [`Receiver::save`]; counters
    /// and sinks are untouched.
    pub fn restore(&mut self, st: &ReceiverState) {
        self.state = st
            .entries
            .iter()
            .map(|(sender, kernel, floor, above)| {
                (
                    (*sender, *kernel),
                    DeliveryState {
                        floor: *floor,
                        above: above.clone(),
                    },
                )
            })
            .collect();
    }

    /// Records an arriving window. Returns `true` exactly once per
    /// `(sender, kernel, seq)` — the caller delivers on `true` and
    /// (re-)acknowledges but drops on `false`.
    pub fn admit(&mut self, sender: u16, kernel: u16, seq: u32) -> bool {
        self.admit_at(sender, kernel, seq, 0)
    }

    /// [`Receiver::admit`] with a timestamp for the duplicate-
    /// suppression event (clocked callers should prefer this so the
    /// ncscope timeline stays ordered).
    pub fn admit_at(&mut self, sender: u16, kernel: u16, seq: u32, now: Time) -> bool {
        let st = self.state.entry((sender, kernel)).or_default();
        if st.seen(seq) {
            self.duplicates.inc();
            if let Some((scope, node)) = &self.scope {
                scope.emit(
                    now,
                    *node,
                    WindowKey::new(sender, kernel, seq),
                    ScopeEvent::DupSuppressed { at: *node },
                );
            }
            false
        } else {
            st.mark(seq);
            self.delivered.inc();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReliableConfig {
        ReliableConfig {
            rto: 100,
            max_rto: 800,
            max_retries: 3,
            cwnd: 2,
            max_cwnd: 8,
            filter_slots: 0,
        }
    }

    #[test]
    fn ack_retires_and_grows_window() {
        let mut s = Sender::new(cfg());
        assert!(s.track(1, 0, 0));
        assert!(s.track(1, 1, 0));
        assert!(!s.track(1, 2, 0), "cwnd=2 queues the third");
        assert!(s.on_ack(1, 0));
        assert!(!s.on_ack(1, 0), "double ack is idempotent");
        let (send, _) = s.poll(10);
        assert_eq!(send, vec![(1, 2)], "freed capacity admits the queue");
        // Acking a full cwnd grows it by one.
        assert!(s.on_ack(1, 1));
        assert_eq!(s.cwnd(), 3);
    }

    #[test]
    fn rto_backoff_doubles_and_cuts() {
        let mut s = Sender::new(cfg());
        s.track(1, 0, 0);
        let (send, next) = s.poll(100);
        assert_eq!(send, vec![(1, 0)], "RTO fires at deadline");
        assert_eq!(next, Some(300), "backoff doubled: 100 + 200");
        assert_eq!(s.cwnd(), 1, "loss cut the window");
        assert_eq!(s.stats().retransmits, 1);
        let (send, next) = s.poll(300);
        assert_eq!(send, vec![(1, 0)]);
        assert_eq!(next, Some(700), "100*2*2 = 400 past now");
    }

    #[test]
    fn abandons_after_max_retries() {
        let mut s = Sender::new(cfg());
        s.track(1, 0, 0);
        let mut now = 0;
        for _ in 0..3 {
            now += 10_000; // past any deadline
            let (send, _) = s.poll(now);
            assert_eq!(send.len(), 1);
        }
        now += 10_000;
        let (send, next) = s.poll(now);
        assert!(send.is_empty(), "fourth expiry abandons");
        assert_eq!(next, None);
        assert_eq!(s.stats().abandoned, 1);
        assert!(s.idle());
    }

    #[test]
    fn nack_forces_immediate_retransmit() {
        let mut s = Sender::new(cfg());
        s.track(1, 7, 0);
        s.on_nack(1, 7, 50);
        let (send, _) = s.poll(50);
        assert_eq!(send, vec![(1, 7)]);
        assert_eq!(s.stats().cwnd_cuts, 1);
    }

    #[test]
    fn filter_slots_cap_in_flight() {
        let mut s = Sender::new(ReliableConfig {
            cwnd: 8,
            filter_slots: 2,
            ..cfg()
        });
        assert!(s.track(1, 0, 0));
        assert!(s.track(1, 1, 0));
        assert!(
            !s.track(1, 2, 0),
            "filter slots bound the flight below cwnd"
        );
        s.on_ack(1, 0);
        let (send, _) = s.poll(1);
        assert_eq!(send, vec![(1, 2)]);
    }

    #[test]
    fn sender_save_restore_replays_identical_timeline() {
        let mut s = Sender::new(cfg());
        s.track(1, 0, 0);
        s.track(1, 1, 5);
        s.track(2, 0, 7); // queued (cwnd = 2)
        let (_, _) = s.poll(100); // first RTO fires, backoff doubles
        let saved = s.save();
        assert_eq!(s.next_deadline(), Some(105));

        // Timeline A, straight through.
        let mut a = Vec::new();
        let mut now = 100;
        for _ in 0..6 {
            now += 100;
            a.push(s.poll(now));
        }

        // Rewind and replay: bit-identical retransmit schedule.
        s.restore(&saved);
        assert_eq!(s.save(), saved, "restore/save must round-trip");
        let mut b = Vec::new();
        let mut now = 100;
        for _ in 0..6 {
            now += 100;
            b.push(s.poll(now));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn receiver_save_restore_roundtrips() {
        let mut r = Receiver::new();
        for seq in [3, 0, 7] {
            r.admit(1, 1, seq);
        }
        r.admit(2, 5, 0);
        let saved = r.save();
        assert!(!r.admit(1, 1, 3));
        r.admit(1, 1, 1);
        assert_ne!(r.save(), saved);
        r.restore(&saved);
        assert_eq!(r.save(), saved);
        assert!(!r.admit(1, 1, 0), "restored floor still dedups");
        assert!(r.admit(1, 1, 1), "undelivered seq admitted after rewind");
    }

    #[test]
    fn receiver_suppresses_duplicates_in_any_order() {
        let mut r = Receiver::new();
        assert!(r.admit(1, 1, 1));
        assert!(r.admit(1, 1, 0));
        assert!(!r.admit(1, 1, 0), "below-floor duplicate");
        assert!(!r.admit(1, 1, 1), "bitmap duplicate");
        assert!(r.admit(1, 1, 2));
        assert!(r.admit(2, 1, 0), "other sender is independent");
        assert!(r.admit(1, 2, 0), "other kernel is independent");
        assert_eq!(r.stats().delivered, 5);
        assert_eq!(r.stats().duplicates, 2);
    }

    #[test]
    fn receiver_floor_advances_over_reordered_prefix() {
        let mut r = Receiver::new();
        for seq in [3, 0, 2, 1] {
            assert!(r.admit(1, 1, seq));
        }
        let st = &r.state[&(1, 1)];
        assert_eq!(st.floor, 4, "floor swallowed the whole prefix");
        assert!(st.above.is_empty());
    }
}
