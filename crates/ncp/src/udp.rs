//! The Sockets/UDP backend (the paper's first prototype target, §6).
//!
//! [`UdpEndpoint`] wraps a `std::net::UdpSocket` with NCP window
//! send/receive: windows are encoded with [`crate::codec`], fragmented
//! to the MTU, and reassembled on receipt. The endpoint is synchronous
//! with a configurable read timeout — NCP imposes no async runtime on
//! its hosts, and the examples drive one endpoint per thread.

use crate::codec::{fragment_window_into, BufferPool, Reassembler};
use crate::reliable::Time;
use crate::wire::{AckRepr, NcpPacket};
use c3::Window;
use nctel::{Counter, MonotonicClock, Registry, Scope, ScopeEvent, WindowKey};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// The NCP well-known UDP port (also baked into the generated P4
/// parser's `parse_udp` state).
pub const NCP_UDP_PORT: u16 = 9047;

/// One receive attempt's outcome, classified. [`UdpEndpoint::poll_event`]
/// returns exactly one of these per datagram (or [`RecvEvent::Timeout`]
/// when the socket had nothing), so callers driving the NCP-R engine can
/// react to ACK frames and distinguish an idle link from a noisy one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvEvent {
    /// A complete window (possibly reassembled from fragments).
    Window(Window, SocketAddr),
    /// An NCP-R ACK/NACK frame (a bare header, never fragmented).
    Ack(AckRepr, SocketAddr),
    /// A valid NCP fragment consumed mid-reassembly; no window yet.
    Partial(SocketAddr),
    /// A datagram that is not NCP (bad magic/version/length). Counted
    /// in [`UdpEndpoint::malformed`].
    Malformed(SocketAddr),
    /// The socket produced nothing within its timeout (or immediately,
    /// in non-blocking mode). The link is idle, not noisy.
    Timeout,
}

/// A synchronous NCP-over-UDP endpoint.
#[derive(Debug)]
pub struct UdpEndpoint {
    socket: UdpSocket,
    reassembler: Reassembler,
    /// Maximum UDP payload per packet.
    pub mtu: usize,
    /// Ext-block size of the deployed program (fixed parser layout).
    pub ext_total: usize,
    /// Datagrams rejected as non-NCP since bind (nctel counter).
    malformed: Counter,
    buf: Vec<u8>,
    /// Recycled packet buffers for the zero-copy send path.
    pool: BufferPool,
    /// Scratch fragment list reused across `send_window` calls.
    frags: Vec<Vec<u8>>,
    /// Monotonic origin for [`UdpEndpoint::now`]: RTO and trace math
    /// must never observe time running backwards, even if the system
    /// wall clock steps (the pre-nctel implementation read an
    /// `Instant` epoch without a latch).
    clock: MonotonicClock,
    /// ncscope event sink plus this endpoint's wire node id.
    scope: Option<(Scope, u16)>,
}

impl UdpEndpoint {
    /// Binds to `addr` with a default 100 ms read timeout.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(UdpEndpoint {
            socket,
            reassembler: Reassembler::new(),
            mtu: 1472, // Ethernet MTU minus IP/UDP headers
            ext_total: 0,
            malformed: Counter::new(),
            buf: vec![0u8; 65536],
            pool: BufferPool::new(),
            frags: Vec::new(),
            clock: MonotonicClock::new(),
            scope: None,
        })
    }

    /// Attaches an ncscope event sink: window sends/completions, ACK and
    /// NACK frames and malformed datagrams are emitted with this
    /// endpoint's wire `node` id, timestamped by [`UdpEndpoint::now`].
    pub fn attach_scope(&mut self, scope: &Scope, node: u16) {
        self.scope = Some((scope.clone(), node));
    }

    fn emit(&self, key: WindowKey, ev: ScopeEvent) {
        if let Some((scope, node)) = &self.scope {
            scope.emit(self.clock.now(), *node, key, ev);
        }
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Adjusts the read timeout.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.socket.set_read_timeout(timeout)
    }

    /// Switches the socket between blocking (with timeout) and
    /// non-blocking mode. Non-blocking endpoints return
    /// [`RecvEvent::Timeout`] immediately when no datagram is queued —
    /// the mode to use when interleaving receives with NCP-R
    /// retransmission polls.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.socket.set_nonblocking(nonblocking)
    }

    /// Nanoseconds since this endpoint was bound, from a monotonic,
    /// never-decreasing clock: the wall-clock counterpart of netsim's
    /// simulated `Time`, suitable for driving
    /// [`crate::reliable::Sender::poll`] RTO math.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Datagrams rejected as non-NCP since bind.
    pub fn malformed(&self) -> u64 {
        self.malformed.get()
    }

    /// Registers this endpoint's counters on `reg` under
    /// `{prefix}.malformed`.
    pub fn attach_metrics(&self, reg: &Registry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.malformed"), &self.malformed);
    }

    /// Sends a window to `dst`, fragmenting to the MTU if necessary.
    /// Packet buffers are drawn from (and returned to) an internal pool,
    /// so steady-state sends allocate nothing. Returns the number of
    /// packets sent.
    pub fn send_window(&mut self, dst: SocketAddr, w: &Window) -> io::Result<usize> {
        self.emit(
            WindowKey::new(w.sender.0, w.kernel.0, w.seq),
            ScopeEvent::WindowSent { attempt: 0 },
        );
        fragment_window_into(w, self.ext_total, self.mtu, &mut self.pool, &mut self.frags);
        let n = self.frags.len();
        let mut result = Ok(());
        for f in self.frags.drain(..) {
            if result.is_ok() {
                result = self.socket.send_to(&f, dst).map(|_| ());
            }
            self.pool.put(f);
        }
        result.map(|()| n)
    }

    /// Sends raw packet bytes (used by the software switch to forward).
    pub fn send_raw(&self, dst: SocketAddr, bytes: &[u8]) -> io::Result<()> {
        self.socket.send_to(bytes, dst).map(|_| ())
    }

    /// Sends an NCP-R ACK/NACK frame (a bare 16-byte header) to `dst`.
    pub fn send_ack(&mut self, dst: SocketAddr, ack: AckRepr) -> io::Result<()> {
        let mut buf = self.pool.get();
        ack.emit_into(&mut buf);
        let result = self.socket.send_to(&buf, dst).map(|_| ());
        self.pool.put(buf);
        result
    }

    /// One receive attempt, classified. Unlike [`Self::recv_window`],
    /// this never loops: each call consumes at most one datagram, so a
    /// caller multiplexing receives with retransmission timers is never
    /// starved by a stream of noise, and ACK frames surface instead of
    /// being swallowed.
    pub fn poll_event(&mut self) -> io::Result<RecvEvent> {
        let (n, src) = match self.socket.recv_from(&mut self.buf) {
            Ok(r) => r,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(RecvEvent::Timeout)
            }
            Err(e) => return Err(e),
        };
        if let Ok(p) = NcpPacket::new_checked(&self.buf[..n]) {
            if let Some(ack) = AckRepr::parse(&p) {
                let key = WindowKey::new(ack.sender, ack.kernel, ack.seq);
                self.emit(
                    key,
                    if ack.nack {
                        ScopeEvent::NackReceived
                    } else {
                        ScopeEvent::WindowAcked
                    },
                );
                return Ok(RecvEvent::Ack(ack, src));
            }
        }
        match self.reassembler.push(&self.buf[..n]) {
            Ok(Some(w)) => {
                self.emit(
                    WindowKey::new(w.sender.0, w.kernel.0, w.seq),
                    ScopeEvent::WindowCompleted,
                );
                Ok(RecvEvent::Window(w, src))
            }
            Ok(None) => Ok(RecvEvent::Partial(src)),
            Err(_) => {
                self.malformed.inc();
                let node = self.scope.as_ref().map(|(_, n)| *n).unwrap_or(0);
                self.emit(WindowKey::new(node, 0, 0), ScopeEvent::MalformedFrame);
                Ok(RecvEvent::Malformed(src))
            }
        }
    }

    /// Receives the next complete window (reassembling fragments).
    /// `Ok(None)` means the read timed out with the link idle —
    /// malformed datagrams are skipped (and counted in
    /// [`Self::malformed`]) rather than ending the wait, so a timeout
    /// is a genuine absence of traffic, not a parse failure in
    /// disguise. ACK frames are also skipped; use [`Self::poll_event`]
    /// to observe them.
    pub fn recv_window(&mut self) -> io::Result<Option<(Window, SocketAddr)>> {
        loop {
            match self.poll_event()? {
                RecvEvent::Window(w, src) => return Ok(Some((w, src))),
                RecvEvent::Timeout => return Ok(None),
                RecvEvent::Ack(..) | RecvEvent::Partial(_) | RecvEvent::Malformed(_) => continue,
            }
        }
    }

    /// Receives raw packet bytes (software-switch data path).
    pub fn recv_raw(&mut self) -> io::Result<Option<(Vec<u8>, SocketAddr)>> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, src)) => Ok(Some((self.buf[..n].to_vec(), src))),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::{Chunk, HostId, KernelId, NodeId};

    fn loopback_pair() -> (UdpEndpoint, UdpEndpoint) {
        let a = UdpEndpoint::bind("127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind("127.0.0.1:0").unwrap();
        (a, b)
    }

    fn window(vals: &[u32]) -> Window {
        Window {
            kernel: KernelId(1),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: true,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    #[test]
    fn loopback_window_roundtrip() {
        let (mut a, mut b) = loopback_pair();
        let w = window(&[1, 2, 3, 4]);
        let sent = a.send_window(b.local_addr().unwrap(), &w).unwrap();
        assert_eq!(sent, 1);
        let (got, src) = b.recv_window().unwrap().expect("window arrives");
        assert_eq!(got, w);
        assert_eq!(src, a.local_addr().unwrap());
    }

    #[test]
    fn fragmented_window_over_loopback() {
        let (mut a, mut b) = loopback_pair();
        a.mtu = 64;
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals);
        let sent = a.send_window(b.local_addr().unwrap(), &w).unwrap();
        assert!(sent > 1, "expected fragmentation, sent {sent}");
        let (got, _) = b.recv_window().unwrap().expect("reassembled");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
    }

    #[test]
    fn timeout_returns_none() {
        let (_, mut b) = loopback_pair();
        b.set_timeout(Some(Duration::from_millis(10))).unwrap();
        assert!(b.recv_window().unwrap().is_none());
    }

    #[test]
    fn garbage_packets_skipped() {
        let (mut a, mut b) = loopback_pair();
        b.set_timeout(Some(Duration::from_millis(50))).unwrap();
        a.send_raw(b.local_addr().unwrap(), &[1, 2, 3]).unwrap();
        let w = window(&[7]);
        a.send_window(b.local_addr().unwrap(), &w).unwrap();
        let (got, _) = b.recv_window().unwrap().expect("real window after noise");
        assert_eq!(got, w);
        // The skipped datagram was counted, and the subsequent timeout
        // is reported as a timeout, not conflated with the bad packet.
        assert_eq!(b.malformed(), 1);
        b.set_timeout(Some(Duration::from_millis(10))).unwrap();
        assert!(b.recv_window().unwrap().is_none());
        assert_eq!(b.malformed(), 1);
    }

    #[test]
    fn poll_event_classifies_datagrams() {
        let (mut a, mut b) = loopback_pair();
        let b_addr = b.local_addr().unwrap();
        b.set_nonblocking(true).unwrap();
        // Idle, non-blocking: immediate Timeout.
        assert_eq!(b.poll_event().unwrap(), RecvEvent::Timeout);
        // Garbage → Malformed (one event per datagram, never a loop).
        a.send_raw(b_addr, &[0xde, 0xad]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let src = a.local_addr().unwrap();
        assert_eq!(b.poll_event().unwrap(), RecvEvent::Malformed(src));
        assert_eq!(b.malformed(), 1);
        // A fragmented window: Partial for every leading fragment, then
        // the reassembled Window.
        a.mtu = 64;
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals);
        let sent = a.send_window(b_addr, &w).unwrap();
        assert!(sent > 1);
        std::thread::sleep(Duration::from_millis(20));
        let mut partials = 0;
        loop {
            match b.poll_event().unwrap() {
                RecvEvent::Partial(s) => {
                    assert_eq!(s, src);
                    partials += 1;
                }
                RecvEvent::Window(got, s) => {
                    assert_eq!(got.chunks[0].data, w.chunks[0].data);
                    assert_eq!(s, src);
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(partials, sent - 1);
    }

    #[test]
    fn ack_frames_surface_and_drive_the_reliable_engine() {
        use crate::reliable::{ReliableConfig, Sender};
        let (mut a, mut b) = loopback_pair();
        b.set_timeout(Some(Duration::from_millis(100))).unwrap();
        // `a` tracks a window under NCP-R, wall-clocked by the endpoint.
        let mut sender = Sender::new(ReliableConfig::default());
        let w = window(&[1, 2, 3]);
        assert!(sender.track(w.kernel.0, w.seq, a.now()));
        a.send_window(b.local_addr().unwrap(), &w).unwrap();
        // `b` receives it and acknowledges with an explicit frame.
        let (got, src) = b.recv_window().unwrap().expect("window arrives");
        b.send_ack(
            src,
            AckRepr {
                nack: false,
                kernel: got.kernel.0,
                seq: got.seq,
                sender: got.sender.0,
                from: 2,
            },
        )
        .unwrap();
        // recv_window skips ACK frames; poll_event surfaces them.
        a.set_timeout(Some(Duration::from_millis(100))).unwrap();
        match a.poll_event().unwrap() {
            RecvEvent::Ack(ack, _) => {
                assert!(!ack.nack);
                assert!(sender.on_ack(ack.kernel, ack.seq));
            }
            other => panic!("expected an ACK frame, got {other:?}"),
        }
        assert!(sender.idle());
    }

    /// The satellite regression: timestamps on the RTO/trace path come
    /// from a monotonic latch, so a time source that steps backwards
    /// (NTP adjustment under the old wall-clock epoch) cannot produce a
    /// decreasing `now()`. We drive the latch directly with a
    /// backwards-stepping raw sequence.
    #[test]
    fn rto_clock_survives_backwards_time_steps() {
        use crate::reliable::{ReliableConfig, Sender};
        let clock = nctel::MonotonicClock::new();
        // A raw source that jumps forward, steps back, then recovers.
        let raw = [100u64, 250, 80, 90, 260];
        let seen: Vec<u64> = raw.iter().map(|&r| clock.clamp(r)).collect();
        assert_eq!(seen, vec![100, 250, 250, 250, 260]);
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "never decreases");
        // And the endpoint's own clock is non-decreasing too.
        let (a, _) = loopback_pair();
        let (t1, t2) = (a.now(), a.now());
        assert!(t2 >= t1);
        // An RTO armed before the backwards step still fires at its
        // original deadline rather than being pushed into the past.
        let mut s = Sender::new(ReliableConfig {
            rto: 1_000,
            ..ReliableConfig::default()
        });
        s.track(1, 0, clock.clamp(300));
        let (due, _) = s.poll(clock.clamp(10)); // source stepped back
        assert!(due.is_empty(), "clamped clock cannot rewind the RTO");
        let (due, _) = s.poll(clock.clamp(1_400));
        assert_eq!(due, vec![(1, 0)]);
    }
}
