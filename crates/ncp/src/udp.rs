//! The Sockets/UDP backend (the paper's first prototype target, §6).
//!
//! [`UdpEndpoint`] wraps a `std::net::UdpSocket` with NCP window
//! send/receive: windows are encoded with [`crate::codec`], fragmented
//! to the MTU, and reassembled on receipt. The endpoint is synchronous
//! with a configurable read timeout — NCP imposes no async runtime on
//! its hosts, and the examples drive one endpoint per thread.

use crate::codec::{fragment_window_into, BufferPool, Reassembler};
use c3::Window;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// The NCP well-known UDP port (also baked into the generated P4
/// parser's `parse_udp` state).
pub const NCP_UDP_PORT: u16 = 9047;

/// A synchronous NCP-over-UDP endpoint.
#[derive(Debug)]
pub struct UdpEndpoint {
    socket: UdpSocket,
    reassembler: Reassembler,
    /// Maximum UDP payload per packet.
    pub mtu: usize,
    /// Ext-block size of the deployed program (fixed parser layout).
    pub ext_total: usize,
    buf: Vec<u8>,
    /// Recycled packet buffers for the zero-copy send path.
    pool: BufferPool,
    /// Scratch fragment list reused across `send_window` calls.
    frags: Vec<Vec<u8>>,
}

impl UdpEndpoint {
    /// Binds to `addr` with a default 100 ms read timeout.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(UdpEndpoint {
            socket,
            reassembler: Reassembler::new(),
            mtu: 1472, // Ethernet MTU minus IP/UDP headers
            ext_total: 0,
            buf: vec![0u8; 65536],
            pool: BufferPool::new(),
            frags: Vec::new(),
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Adjusts the read timeout.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.socket.set_read_timeout(timeout)
    }

    /// Sends a window to `dst`, fragmenting to the MTU if necessary.
    /// Packet buffers are drawn from (and returned to) an internal pool,
    /// so steady-state sends allocate nothing. Returns the number of
    /// packets sent.
    pub fn send_window(&mut self, dst: SocketAddr, w: &Window) -> io::Result<usize> {
        fragment_window_into(w, self.ext_total, self.mtu, &mut self.pool, &mut self.frags);
        let n = self.frags.len();
        let mut result = Ok(());
        for f in self.frags.drain(..) {
            if result.is_ok() {
                result = self.socket.send_to(&f, dst).map(|_| ());
            }
            self.pool.put(f);
        }
        result.map(|()| n)
    }

    /// Sends raw packet bytes (used by the software switch to forward).
    pub fn send_raw(&self, dst: SocketAddr, bytes: &[u8]) -> io::Result<()> {
        self.socket.send_to(bytes, dst).map(|_| ())
    }

    /// Receives the next complete window (reassembling fragments).
    /// `Ok(None)` on timeout; malformed packets are skipped.
    pub fn recv_window(&mut self) -> io::Result<Option<(Window, SocketAddr)>> {
        loop {
            let (n, src) = match self.socket.recv_from(&mut self.buf) {
                Ok(r) => r,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            };
            match self.reassembler.push(&self.buf[..n]) {
                Ok(Some(w)) => return Ok(Some((w, src))),
                Ok(None) => continue, // mid-reassembly
                Err(_) => continue,   // not NCP; ignore
            }
        }
    }

    /// Receives raw packet bytes (software-switch data path).
    pub fn recv_raw(&mut self) -> io::Result<Option<(Vec<u8>, SocketAddr)>> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, src)) => Ok(Some((self.buf[..n].to_vec(), src))),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::{Chunk, HostId, KernelId, NodeId};

    fn loopback_pair() -> (UdpEndpoint, UdpEndpoint) {
        let a = UdpEndpoint::bind("127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind("127.0.0.1:0").unwrap();
        (a, b)
    }

    fn window(vals: &[u32]) -> Window {
        Window {
            kernel: KernelId(1),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: true,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    #[test]
    fn loopback_window_roundtrip() {
        let (mut a, mut b) = loopback_pair();
        let w = window(&[1, 2, 3, 4]);
        let sent = a.send_window(b.local_addr().unwrap(), &w).unwrap();
        assert_eq!(sent, 1);
        let (got, src) = b.recv_window().unwrap().expect("window arrives");
        assert_eq!(got, w);
        assert_eq!(src, a.local_addr().unwrap());
    }

    #[test]
    fn fragmented_window_over_loopback() {
        let (mut a, mut b) = loopback_pair();
        a.mtu = 64;
        let vals: Vec<u32> = (0..64).collect();
        let w = window(&vals);
        let sent = a.send_window(b.local_addr().unwrap(), &w).unwrap();
        assert!(sent > 1, "expected fragmentation, sent {sent}");
        let (got, _) = b.recv_window().unwrap().expect("reassembled");
        assert_eq!(got.chunks[0].data, w.chunks[0].data);
    }

    #[test]
    fn timeout_returns_none() {
        let (_, mut b) = loopback_pair();
        b.set_timeout(Some(Duration::from_millis(10))).unwrap();
        assert!(b.recv_window().unwrap().is_none());
    }

    #[test]
    fn garbage_packets_skipped() {
        let (mut a, mut b) = loopback_pair();
        b.set_timeout(Some(Duration::from_millis(50))).unwrap();
        a.send_raw(b.local_addr().unwrap(), &[1, 2, 3]).unwrap();
        let w = window(&[7]);
        a.send_window(b.local_addr().unwrap(), &w).unwrap();
        let (got, _) = b.recv_window().unwrap().expect("real window after noise");
        assert_eq!(got, w);
    }
}
