#![warn(missing_docs)]

//! # ncsched — the multi-tenant control plane
//!
//! The rest of the workspace deploys **one** compiled NCL program onto
//! the fabric. This crate turns that single-program path into a
//! scheduled, quota-governed, versioned control plane (DESIGN.md §4.12),
//! the "INC-as-a-service" layer the paper gestures at and ClickINC /
//! NetRPC (PAPERS.md) spell out:
//!
//! * [`tenant`] — tenant identity and per-switch resource quotas
//!   ([`TenantSpec`], [`TenantQuota`]).
//! * [`admission`] — the [`AdmissionController`]: bin-packs candidate
//!   kernels across the fabric's PISA resource pools using the static
//!   estimator (`ncl_p4::estimate`), **before** anything is loaded.
//!   Admission yields a [`PlacementPlan`]; rejection yields a
//!   machine-readable [`CostReport`] naming the violated budget, the
//!   offending kernel and the tenant's version.
//! * [`upgrade`] — the hitless-upgrade state machine ([`Upgrade`]):
//!   install the new kernel version alongside the old one, route new
//!   windows to the new version, drain the old version's in-flight
//!   windows via the NCP-R seq/ack state, and only then reclaim its
//!   resources.
//!
//! The crate is deliberately **mechanism-free**: it never touches the
//! simulator or the transport. It consumes `ModuleEstimate`s produced by
//! `ncl-p4` and hands back plans/tickets; `ncl-core::deploy` and
//! `netsim` enact them. That keeps the dependency graph acyclic
//! (estimator → scheduler → deploy) and makes every decision unit-testable
//! with synthetic estimates.
//!
//! ## Accounting model
//!
//! Capacity is tracked per switch against one [`pisa::ResourceModel`]:
//! logical stages (including recirculation), total SRAM
//! (`sram_bytes_per_stage × stages`), and the two PHV budgets. Each
//! tenant's footprint on a switch is its module estimate for that
//! switch. Because every module's estimate includes the shared NCP base
//! header, summing estimates across tenants double-counts those bytes —
//! the controller is deliberately conservative there. During an upgrade
//! both versions are resident, so `begin_upgrade` re-runs admission with
//! the old version still committed; quotas apply to each version's
//! footprint separately while fabric capacity governs the transient sum.

pub mod admission;
pub mod tenant;
pub mod upgrade;

pub use admission::{
    AdmissionController, AdmissionError, BudgetKind, CostReport, KernelPlacement, PlacementPlan,
    ResourceKind, SwitchPlacement, SwitchUsage,
};
pub use tenant::{TenantQuota, TenantSpec};
pub use upgrade::{Upgrade, UpgradeState};
