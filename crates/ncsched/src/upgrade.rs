//! The hitless-upgrade state machine.
//!
//! Upgrading a tenant's kernel must not drop or mis-version a single
//! window (NetRPC's "services must be upgradable without breaking
//! in-flight traffic", PAPERS.md). The engine therefore never swaps a
//! kernel in place. It walks four states:
//!
//! ```text
//! Installing ──installed──▶ DualRunning ──begin_drain──▶ Draining
//!                                │ (drain set empty)         │ (last ack)
//!                                └────────────▶ Completed ◀──┘
//! ```
//!
//! * **Installing** — the new version's resources are reserved (the
//!   admission controller re-checked fabric capacity with the old
//!   version still resident) but the datapath is not yet live.
//! * **DualRunning** — both versions execute side by side. The deploy
//!   layer routes *new* windows to the new version; windows named in the
//!   drain set (snapshotted from the NCP-R sender's in-flight seq/ack
//!   state) keep hitting the old version so retransmissions stay
//!   bit-identical with the original execution.
//! * **Draining** — no new traffic reaches the old version; each ack of
//!   a drain-set window shrinks the set.
//! * **Completed** — the drain set is empty; the old version's
//!   resources may be reclaimed
//!   ([`finish_upgrade`](crate::AdmissionController::finish_upgrade)).
//!
//! The struct is pure bookkeeping — the deploy/mux layer consults
//! [`Upgrade::routes_old`] per window and reports acks via
//! [`Upgrade::acked`]; nothing here touches the network.

use std::collections::BTreeSet;
use std::fmt;

/// Where an in-progress upgrade stands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpgradeState {
    /// New version reserved, not yet executing.
    Installing,
    /// Both versions live; new windows go to the new version.
    DualRunning,
    /// Old version only serves its shrinking drain set.
    Draining,
    /// Drain set empty; old version reclaimable.
    Completed,
}

impl fmt::Display for UpgradeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpgradeState::Installing => "installing",
            UpgradeState::DualRunning => "dual-running",
            UpgradeState::Draining => "draining",
            UpgradeState::Completed => "completed",
        })
    }
}

/// One tenant's in-progress hitless upgrade (a *ticket* handed out by
/// [`AdmissionController::begin_upgrade`](crate::AdmissionController::begin_upgrade)).
#[derive(Clone, Debug)]
pub struct Upgrade {
    tenant: String,
    /// Version being drained and retired.
    pub old_version: u16,
    /// Version new windows are routed to.
    pub new_version: u16,
    state: UpgradeState,
    /// `(kernel id, window seq)` pairs that must complete on the old
    /// version — the NCP-R in-flight set at switchover time.
    drain: BTreeSet<(u16, u32)>,
    drained: u64,
}

impl Upgrade {
    /// A fresh ticket in [`UpgradeState::Installing`].
    pub fn new(tenant: &str, old_version: u16, new_version: u16) -> Self {
        Upgrade {
            tenant: tenant.to_string(),
            old_version,
            new_version,
            state: UpgradeState::Installing,
            drain: BTreeSet::new(),
            drained: 0,
        }
    }

    /// The tenant this ticket belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current state.
    pub fn state(&self) -> UpgradeState {
        self.state
    }

    /// The new version's datapath is live: Installing → DualRunning.
    pub fn mark_installed(&mut self) {
        if self.state == UpgradeState::Installing {
            self.state = UpgradeState::DualRunning;
        }
    }

    /// Snapshot the old version's in-flight windows (from the NCP-R
    /// sender) and stop routing new traffic to it. An empty snapshot
    /// completes the upgrade immediately.
    pub fn begin_drain<I: IntoIterator<Item = (u16, u32)>>(&mut self, in_flight: I) {
        self.drain = in_flight.into_iter().collect();
        self.state = if self.drain.is_empty() {
            UpgradeState::Completed
        } else {
            UpgradeState::Draining
        };
    }

    /// Should this `(kernel, seq)` window still execute on the **old**
    /// version? True only for members of the drain set.
    pub fn routes_old(&self, kernel: u16, seq: u32) -> bool {
        self.drain.contains(&(kernel, seq))
    }

    /// Record a delivery ack for a window. Returns `true` if it was in
    /// the drain set; the upgrade auto-completes on the last one.
    pub fn acked(&mut self, kernel: u16, seq: u32) -> bool {
        let hit = self.drain.remove(&(kernel, seq));
        if hit {
            self.drained += 1;
            if self.drain.is_empty() && self.state == UpgradeState::Draining {
                self.state = UpgradeState::Completed;
            }
        }
        hit
    }

    /// Windows still owed to the old version.
    pub fn remaining(&self) -> usize {
        self.drain.len()
    }

    /// Windows drained so far.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Whether the old version can be reclaimed.
    pub fn is_complete(&self) -> bool {
        self.state == UpgradeState::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walks_the_four_states() {
        let mut up = Upgrade::new("team-a", 1, 2);
        assert_eq!(up.state(), UpgradeState::Installing);
        assert!(!up.is_complete());

        up.mark_installed();
        assert_eq!(up.state(), UpgradeState::DualRunning);

        up.begin_drain([(1, 7), (1, 8), (2, 3)]);
        assert_eq!(up.state(), UpgradeState::Draining);
        assert_eq!(up.remaining(), 3);

        // Drain-set members route old; everything else routes new.
        assert!(up.routes_old(1, 7));
        assert!(!up.routes_old(1, 9));
        assert!(!up.routes_old(3, 7));

        assert!(up.acked(1, 7));
        assert!(!up.acked(1, 7), "double ack is idempotent");
        assert!(up.acked(1, 8));
        assert!(!up.is_complete());
        assert!(up.acked(2, 3));
        assert!(up.is_complete());
        assert_eq!(up.drained(), 3);
        assert_eq!(up.remaining(), 0);
    }

    #[test]
    fn empty_drain_set_completes_immediately() {
        let mut up = Upgrade::new("team-a", 3, 4);
        up.mark_installed();
        up.begin_drain(std::iter::empty());
        assert!(up.is_complete());
    }

    #[test]
    fn acks_outside_the_drain_set_are_ignored() {
        let mut up = Upgrade::new("t", 1, 2);
        up.mark_installed();
        up.begin_drain([(5, 1)]);
        assert!(!up.acked(5, 2));
        assert!(!up.acked(6, 1));
        assert_eq!(up.remaining(), 1);
        assert!(!up.is_complete());
    }

    #[test]
    fn state_names_render() {
        assert_eq!(UpgradeState::DualRunning.to_string(), "dual-running");
        assert_eq!(UpgradeState::Completed.to_string(), "completed");
    }
}
