//! Admission control and shared-fabric bin-packing.
//!
//! The controller answers one question **before** anything touches the
//! fabric: *does this tenant's compiled module fit — under its own quota
//! and in what the fabric has left?* It consumes the static estimates
//! from `ncl_p4::estimate` (PR 3), one [`ModuleEstimate`] per switch the
//! tenant wants a kernel on, and answers with either a [`PlacementPlan`]
//! (the reservation it just committed) or a [`CostReport`] — a
//! machine-readable rejection naming the violated budget, the offending
//! kernel and the requested/limit/available numbers.
//!
//! Checks run in a fixed, documented order so rejections are
//! deterministic (the E14 differential run snapshots the JSON):
//! switches in lexicographic order; per switch, first the chip model
//! (estimator violations — the module wouldn't fit even alone), then the
//! tenant quota (stages, SRAM, PHV), then fabric capacity (stages, SRAM,
//! header PHV, metadata PHV) against what other tenants have committed.

use std::collections::BTreeMap;
use std::fmt;

use ncl_p4::estimate::ModuleEstimate;
use pisa::{ResourceModel, ResourceViolation};

use crate::tenant::TenantSpec;
use crate::upgrade::Upgrade;

/// Which class of budget a rejection violated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    /// The module violates the chip model by itself (estimator said no).
    ChipModel,
    /// The tenant's own per-switch quota.
    TenantQuota,
    /// The shared fabric's remaining capacity.
    FabricCapacity,
}

impl BudgetKind {
    /// Stable slug used in the JSON cost report.
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetKind::ChipModel => "chip_model",
            BudgetKind::TenantQuota => "tenant_quota",
            BudgetKind::FabricCapacity => "fabric_capacity",
        }
    }
}

/// Which resource a rejection was about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResourceKind {
    /// Pipeline stages.
    Stages,
    /// Register-array SRAM bytes.
    SramBytes,
    /// Combined PHV bytes (tenant quotas bound header + metadata
    /// together).
    PhvBytes,
    /// Header PHV bytes (fabric budget).
    PhvHeaderBytes,
    /// Metadata PHV bytes (fabric budget).
    PhvMetadataBytes,
    /// VLIW ALU ops in one stage.
    AluOps,
    /// Tables in one stage.
    Tables,
    /// Stateful micro-ops against one register array.
    RegisterAccesses,
    /// TCAM entries in one stage.
    TcamEntries,
}

impl ResourceKind {
    /// Stable slug used in the JSON cost report.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceKind::Stages => "stages",
            ResourceKind::SramBytes => "sram_bytes",
            ResourceKind::PhvBytes => "phv_bytes",
            ResourceKind::PhvHeaderBytes => "phv_header_bytes",
            ResourceKind::PhvMetadataBytes => "phv_metadata_bytes",
            ResourceKind::AluOps => "alu_ops",
            ResourceKind::Tables => "tables",
            ResourceKind::RegisterAccesses => "register_accesses",
            ResourceKind::TcamEntries => "tcam_entries",
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// A machine-readable admission rejection.
///
/// Every field an operator (or the E14 harness) needs to attribute the
/// rejection: which tenant, at which version, on which switch, which
/// kernel pushed it over, which budget in which resource, and the
/// requested/limit/available numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostReport {
    /// Rejected tenant.
    pub tenant: String,
    /// Version the tenant asked to deploy.
    pub version: u16,
    /// Switch label the check failed on.
    pub switch: String,
    /// Offending kernel, when attributable (the largest contributor for
    /// aggregate budgets; `None` for module-wide chip violations).
    pub kernel: Option<String>,
    /// Which budget class was violated.
    pub budget: BudgetKind,
    /// Which resource ran out.
    pub resource: ResourceKind,
    /// What the module asked for.
    pub requested: usize,
    /// The violated budget's limit.
    pub limit: usize,
    /// What was still free under that budget before this request
    /// (= limit for quotas, which are per-deployment).
    pub available: usize,
    /// Human-readable one-liner.
    pub detail: String,
}

impl CostReport {
    /// Deterministic single-line JSON (fixed field order, no maps).
    pub fn render_json(&self) -> String {
        let kernel = match &self.kernel {
            Some(k) => format!("\"{}\"", json_escape(k)),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":\"ncsched-cost-report\",\"tenant\":\"{}\",\"version\":{},\
             \"switch\":\"{}\",\"kernel\":{},\"budget\":\"{}\",\"resource\":\"{}\",\
             \"requested\":{},\"limit\":{},\"available\":{},\"detail\":\"{}\"}}",
            json_escape(&self.tenant),
            self.version,
            json_escape(&self.switch),
            kernel,
            self.budget.as_str(),
            self.resource.as_str(),
            self.requested,
            self.limit,
            self.available,
            json_escape(&self.detail),
        )
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant '{}' v{} rejected on {}: {} {} (requested {}, limit {}, available {})",
            self.tenant,
            self.version,
            self.switch,
            self.budget.as_str(),
            self.resource.as_str(),
            self.requested,
            self.limit,
            self.available
        )?;
        if let Some(k) = &self.kernel {
            write!(f, " — kernel '{k}'")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for CostReport {}

/// One kernel's share of a switch placement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KernelPlacement {
    /// Kernel name.
    pub kernel: String,
    /// Stages the kernel's own ops occupy.
    pub stages: usize,
    /// SRAM bytes its register arrays occupy.
    pub sram_bytes: usize,
    /// Predicated micro-ops (execution cost proxy).
    pub alu_ops: usize,
}

/// The reservation one tenant holds on one switch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SwitchPlacement {
    /// Switch label.
    pub switch: String,
    /// Pipeline stages reserved (dispatch + widest kernel).
    pub stages: usize,
    /// Total SRAM bytes reserved.
    pub sram_bytes: usize,
    /// Header PHV bytes reserved.
    pub phv_header_bytes: usize,
    /// Metadata PHV bytes reserved.
    pub phv_metadata_bytes: usize,
    /// Per-kernel breakdown.
    pub kernels: Vec<KernelPlacement>,
}

/// An admitted deployment: where each kernel landed and what it costs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlacementPlan {
    /// Owning tenant.
    pub tenant: String,
    /// ncsched-assigned version (1-based, monotonic per tenant).
    pub version: u16,
    /// Per-switch reservations, in lexicographic switch order.
    pub switches: Vec<SwitchPlacement>,
}

impl PlacementPlan {
    /// Deterministic single-line JSON for artifacts and logs.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"ncsched-placement\",\"tenant\":\"{}\",\"version\":{},\"switches\":[",
            json_escape(&self.tenant),
            self.version
        );
        for (i, sw) in self.switches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"switch\":\"{}\",\"stages\":{},\"sram_bytes\":{},\
                 \"phv_header_bytes\":{},\"phv_metadata_bytes\":{},\"kernels\":[",
                json_escape(&sw.switch),
                sw.stages,
                sw.sram_bytes,
                sw.phv_header_bytes,
                sw.phv_metadata_bytes
            ));
            for (j, k) in sw.kernels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kernel\":\"{}\",\"stages\":{},\"sram_bytes\":{},\"alu_ops\":{}}}",
                    json_escape(&k.kernel),
                    k.stages,
                    k.sram_bytes,
                    k.alu_ops
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Total stages reserved across the fabric.
    pub fn total_stages(&self) -> usize {
        self.switches.iter().map(|s| s.stages).sum()
    }
}

/// Aggregate committed usage on one switch (all tenants, both versions
/// during upgrades).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchUsage {
    /// Committed pipeline stages.
    pub stages: usize,
    /// Committed SRAM bytes.
    pub sram_bytes: usize,
    /// Committed header PHV bytes.
    pub phv_header_bytes: usize,
    /// Committed metadata PHV bytes.
    pub phv_metadata_bytes: usize,
}

/// Everything that can go wrong talking to the controller.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdmissionError {
    /// `admit` called for a name that already holds a reservation.
    AlreadyAdmitted {
        /// Tenant name.
        tenant: String,
    },
    /// Operation on a tenant the controller has never admitted.
    UnknownTenant {
        /// Tenant name.
        tenant: String,
    },
    /// `begin_upgrade` while a previous upgrade is still pending.
    UpgradeInProgress {
        /// Tenant name.
        tenant: String,
    },
    /// `finish_upgrade`/`abort_upgrade` with no upgrade pending.
    NoUpgrade {
        /// Tenant name.
        tenant: String,
    },
    /// `finish_upgrade` before the drain set emptied.
    UpgradeNotDrained {
        /// Tenant name.
        tenant: String,
        /// Windows still owed to the old version.
        remaining: usize,
    },
    /// The placement was rejected; the report says why.
    Rejected(Box<CostReport>),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::AlreadyAdmitted { tenant } => {
                write!(f, "tenant '{tenant}' is already admitted")
            }
            AdmissionError::UnknownTenant { tenant } => {
                write!(f, "tenant '{tenant}' is not admitted")
            }
            AdmissionError::UpgradeInProgress { tenant } => {
                write!(f, "tenant '{tenant}' already has an upgrade in progress")
            }
            AdmissionError::NoUpgrade { tenant } => {
                write!(f, "tenant '{tenant}' has no upgrade in progress")
            }
            AdmissionError::UpgradeNotDrained { tenant, remaining } => write!(
                f,
                "tenant '{tenant}' upgrade still draining ({remaining} windows in flight)"
            ),
            AdmissionError::Rejected(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl AdmissionError {
    /// The cost report, when the error is a rejection.
    pub fn cost_report(&self) -> Option<&CostReport> {
        match self {
            AdmissionError::Rejected(r) => Some(r),
            _ => None,
        }
    }
}

struct TenantEntry {
    spec: TenantSpec,
    version: u16,
    plan: PlacementPlan,
    /// New version's reservation while an upgrade is dual-running.
    pending: Option<PlacementPlan>,
}

/// The fabric-wide admission controller.
///
/// Holds one [`ResourceModel`] (every simulated switch is the same chip)
/// and the committed reservations of every admitted tenant. All state is
/// derived bookkeeping — nothing here talks to the simulator.
pub struct AdmissionController {
    model: ResourceModel,
    tenants: BTreeMap<String, TenantEntry>,
}

impl AdmissionController {
    /// A controller for a fabric of identical chips.
    pub fn new(model: ResourceModel) -> Self {
        AdmissionController {
            model,
            tenants: BTreeMap::new(),
        }
    }

    /// The chip model capacity is checked against.
    pub fn model(&self) -> &ResourceModel {
        &self.model
    }

    /// Committed usage on `switch` across all tenants (including
    /// pending upgrade reservations).
    pub fn usage(&self, switch: &str) -> SwitchUsage {
        let mut u = SwitchUsage::default();
        for entry in self.tenants.values() {
            for plan in std::iter::once(&entry.plan).chain(entry.pending.iter()) {
                for sw in &plan.switches {
                    if sw.switch == switch {
                        u.stages += sw.stages;
                        u.sram_bytes += sw.sram_bytes;
                        u.phv_header_bytes += sw.phv_header_bytes;
                        u.phv_metadata_bytes += sw.phv_metadata_bytes;
                    }
                }
            }
        }
        u
    }

    /// Committed usage per switch across the whole fabric.
    pub fn fabric_usage(&self) -> BTreeMap<String, SwitchUsage> {
        let mut switches: BTreeMap<String, SwitchUsage> = BTreeMap::new();
        for entry in self.tenants.values() {
            for plan in std::iter::once(&entry.plan).chain(entry.pending.iter()) {
                for sw in &plan.switches {
                    let u = switches.entry(sw.switch.clone()).or_default();
                    u.stages += sw.stages;
                    u.sram_bytes += sw.sram_bytes;
                    u.phv_header_bytes += sw.phv_header_bytes;
                    u.phv_metadata_bytes += sw.phv_metadata_bytes;
                }
            }
        }
        switches
    }

    /// Admitted tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(|s| s.as_str()).collect()
    }

    /// The version a tenant currently runs (pending upgrades excluded).
    pub fn tenant_version(&self, tenant: &str) -> Option<u16> {
        self.tenants.get(tenant).map(|e| e.version)
    }

    /// The committed placement plan for a tenant's current version.
    pub fn plan(&self, tenant: &str) -> Option<&PlacementPlan> {
        self.tenants.get(tenant).map(|e| &e.plan)
    }

    /// Admit a new tenant: check quota + fabric capacity for every
    /// switch in `estimates` and, on success, commit the reservation as
    /// version 1.
    pub fn admit(
        &mut self,
        spec: &TenantSpec,
        estimates: &BTreeMap<String, ModuleEstimate>,
    ) -> Result<PlacementPlan, AdmissionError> {
        if self.tenants.contains_key(&spec.name) {
            return Err(AdmissionError::AlreadyAdmitted {
                tenant: spec.name.clone(),
            });
        }
        let plan = self
            .check(spec, 1, estimates)
            .map_err(AdmissionError::Rejected)?;
        self.tenants.insert(
            spec.name.clone(),
            TenantEntry {
                spec: spec.clone(),
                version: 1,
                plan: plan.clone(),
                pending: None,
            },
        );
        Ok(plan)
    }

    /// Start a hitless upgrade: admission-check the new version with the
    /// old one **still resident** (both run side by side while the old
    /// drains), commit the dual reservation, and hand back the
    /// [`Upgrade`] ticket plus the new version's plan.
    pub fn begin_upgrade(
        &mut self,
        tenant: &str,
        estimates: &BTreeMap<String, ModuleEstimate>,
    ) -> Result<(Upgrade, PlacementPlan), AdmissionError> {
        let entry = self
            .tenants
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        if entry.pending.is_some() {
            return Err(AdmissionError::UpgradeInProgress {
                tenant: tenant.to_string(),
            });
        }
        let spec = entry.spec.clone();
        let old_version = entry.version;
        let new_version = old_version + 1;
        let plan = self
            .check(&spec, new_version, estimates)
            .map_err(AdmissionError::Rejected)?;
        self.tenants.get_mut(tenant).expect("checked above").pending = Some(plan.clone());
        Ok((Upgrade::new(tenant, old_version, new_version), plan))
    }

    /// Reclaim the old version once the upgrade has fully drained: the
    /// pending reservation becomes the committed one and the old
    /// version's resources return to the pool.
    pub fn finish_upgrade(&mut self, upgrade: &Upgrade) -> Result<(), AdmissionError> {
        if !upgrade.is_complete() {
            return Err(AdmissionError::UpgradeNotDrained {
                tenant: upgrade.tenant().to_string(),
                remaining: upgrade.remaining(),
            });
        }
        let entry = self.tenants.get_mut(upgrade.tenant()).ok_or_else(|| {
            AdmissionError::UnknownTenant {
                tenant: upgrade.tenant().to_string(),
            }
        })?;
        let pending = entry
            .pending
            .take()
            .ok_or_else(|| AdmissionError::NoUpgrade {
                tenant: upgrade.tenant().to_string(),
            })?;
        entry.version = upgrade.new_version;
        entry.plan = pending;
        Ok(())
    }

    /// Abandon a dual-running upgrade: drop the new version's
    /// reservation, keep the old one committed.
    pub fn abort_upgrade(&mut self, tenant: &str) -> Result<(), AdmissionError> {
        let entry = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        if entry.pending.take().is_none() {
            return Err(AdmissionError::NoUpgrade {
                tenant: tenant.to_string(),
            });
        }
        Ok(())
    }

    /// Release everything a tenant holds. Returns whether it existed.
    pub fn release(&mut self, tenant: &str) -> bool {
        self.tenants.remove(tenant).is_some()
    }

    /// The pure admission check: chip model, then tenant quota, then
    /// fabric capacity, per switch in lexicographic order. Commits
    /// nothing.
    fn check(
        &self,
        spec: &TenantSpec,
        version: u16,
        estimates: &BTreeMap<String, ModuleEstimate>,
    ) -> Result<PlacementPlan, Box<CostReport>> {
        let mut switches = Vec::with_capacity(estimates.len());
        for (switch, est) in estimates {
            // 1. Chip model: the estimator already rejected the module.
            if !est.accepted() {
                let all = est.all_violations();
                let (kernel, violation) = &all[0];
                return Err(Box::new(
                    self.chip_report(spec, version, switch, *kernel, violation),
                ));
            }

            // Aggregate footprint on this switch.
            let stages_req = est.pipeline_stages;
            let sram_req: usize = est.kernels.iter().map(|k| k.sram_bytes).sum();
            let phv_req = est.phv_header_bytes + est.phv_metadata_bytes;
            let max_by = |f: fn(&ncl_p4::estimate::KernelEstimate) -> usize| {
                est.kernels
                    .iter()
                    .max_by_key(|k| f(k))
                    .map(|k| k.kernel.clone())
            };

            // 2. Tenant quota (per deployment, per switch).
            let q = spec.quota;
            if stages_req > q.stages {
                return Err(Box::new(self.quota_report(
                    spec,
                    version,
                    switch,
                    max_by(|k| k.stages),
                    ResourceKind::Stages,
                    stages_req,
                    q.stages,
                )));
            }
            if sram_req > q.sram_bytes {
                return Err(Box::new(self.quota_report(
                    spec,
                    version,
                    switch,
                    max_by(|k| k.sram_bytes),
                    ResourceKind::SramBytes,
                    sram_req,
                    q.sram_bytes,
                )));
            }
            if phv_req > q.phv_bytes {
                return Err(Box::new(self.quota_report(
                    spec,
                    version,
                    switch,
                    max_by(|k| k.phv_header_bytes + k.phv_metadata_bytes),
                    ResourceKind::PhvBytes,
                    phv_req,
                    q.phv_bytes,
                )));
            }

            // 3. Fabric capacity: what other reservations left behind.
            let used = self.usage(switch);
            let caps = [
                (
                    ResourceKind::Stages,
                    stages_req,
                    self.model.logical_stages(),
                    used.stages,
                ),
                (
                    ResourceKind::SramBytes,
                    sram_req,
                    self.model.sram_bytes_per_stage * self.model.stages,
                    used.sram_bytes,
                ),
                (
                    ResourceKind::PhvHeaderBytes,
                    est.phv_header_bytes,
                    self.model.phv_header_bytes,
                    used.phv_header_bytes,
                ),
                (
                    ResourceKind::PhvMetadataBytes,
                    est.phv_metadata_bytes,
                    self.model.phv_metadata_bytes,
                    used.phv_metadata_bytes,
                ),
            ];
            for (resource, requested, limit, committed) in caps {
                let available = limit.saturating_sub(committed);
                if requested > available {
                    return Err(Box::new(CostReport {
                        tenant: spec.name.clone(),
                        version,
                        switch: switch.clone(),
                        kernel: None,
                        budget: BudgetKind::FabricCapacity,
                        resource,
                        requested,
                        limit,
                        available,
                        detail: format!(
                            "{} of {} {} already committed by other reservations",
                            committed,
                            limit,
                            resource.as_str()
                        ),
                    }));
                }
            }

            switches.push(SwitchPlacement {
                switch: switch.clone(),
                stages: stages_req,
                sram_bytes: sram_req,
                phv_header_bytes: est.phv_header_bytes,
                phv_metadata_bytes: est.phv_metadata_bytes,
                kernels: est
                    .kernels
                    .iter()
                    .map(|k| KernelPlacement {
                        kernel: k.kernel.clone(),
                        stages: k.stages,
                        sram_bytes: k.sram_bytes,
                        alu_ops: k.alu_ops,
                    })
                    .collect(),
            });
        }
        Ok(PlacementPlan {
            tenant: spec.name.clone(),
            version,
            switches,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn quota_report(
        &self,
        spec: &TenantSpec,
        version: u16,
        switch: &str,
        kernel: Option<String>,
        resource: ResourceKind,
        requested: usize,
        limit: usize,
    ) -> CostReport {
        CostReport {
            tenant: spec.name.clone(),
            version,
            switch: switch.to_string(),
            kernel,
            budget: BudgetKind::TenantQuota,
            resource,
            requested,
            limit,
            available: limit,
            detail: format!(
                "module needs {} {} but tenant quota allows {}",
                requested,
                resource.as_str(),
                limit
            ),
        }
    }

    fn chip_report(
        &self,
        spec: &TenantSpec,
        version: u16,
        switch: &str,
        kernel: Option<&str>,
        violation: &ResourceViolation,
    ) -> CostReport {
        let (resource, requested, limit) = match violation {
            ResourceViolation::TooManyStages {
                required,
                available,
            } => (ResourceKind::Stages, *required, *available),
            ResourceViolation::OpsPerStage { found, budget, .. } => {
                (ResourceKind::AluOps, *found, *budget)
            }
            ResourceViolation::TablesPerStage { found, budget, .. } => {
                (ResourceKind::Tables, *found, *budget)
            }
            ResourceViolation::PhvHeader { used, budget } => {
                (ResourceKind::PhvHeaderBytes, *used, *budget)
            }
            ResourceViolation::PhvMetadata { used, budget } => {
                (ResourceKind::PhvMetadataBytes, *used, *budget)
            }
            ResourceViolation::RegisterMultiStage { stages, .. } => {
                (ResourceKind::RegisterAccesses, stages.len(), 1)
            }
            ResourceViolation::RegisterAccesses { found, budget, .. } => {
                (ResourceKind::RegisterAccesses, *found, *budget)
            }
            ResourceViolation::SramPerStage { used, budget, .. } => {
                (ResourceKind::SramBytes, *used, *budget)
            }
            ResourceViolation::TcamPerStage { used, budget, .. } => {
                (ResourceKind::TcamEntries, *used, *budget)
            }
        };
        CostReport {
            tenant: spec.name.clone(),
            version,
            switch: switch.to_string(),
            kernel: kernel.map(|k| k.to_string()),
            budget: BudgetKind::ChipModel,
            resource,
            requested,
            limit,
            available: limit,
            detail: violation.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantQuota;
    use ncl_p4::estimate::KernelEstimate;

    /// Synthetic estimate: `(name, stages, sram, phv_header, phv_meta)`
    /// per kernel; pipeline = dispatch + widest kernel; PHV = sums.
    fn est(kernels: &[(&str, usize, usize, usize, usize)]) -> ModuleEstimate {
        let ks: Vec<KernelEstimate> = kernels
            .iter()
            .map(|(name, stages, sram, ph, pm)| KernelEstimate {
                kernel: name.to_string(),
                stages: *stages,
                alu_ops: *stages * 4,
                sram_bytes: *sram,
                phv_header_bytes: *ph,
                phv_metadata_bytes: *pm,
                reg_accesses: BTreeMap::new(),
                violations: Vec::new(),
            })
            .collect();
        ModuleEstimate {
            pipeline_stages: 1 + ks.iter().map(|k| k.stages).max().unwrap_or(0),
            phv_header_bytes: ks.iter().map(|k| k.phv_header_bytes).sum(),
            phv_metadata_bytes: ks.iter().map(|k| k.phv_metadata_bytes).sum(),
            sram_by_stage: Vec::new(),
            violations: Vec::new(),
            kernels: ks,
        }
    }

    fn one_switch(label: &str, m: ModuleEstimate) -> BTreeMap<String, ModuleEstimate> {
        BTreeMap::from([(label.to_string(), m)])
    }

    #[test]
    fn admit_within_quota_returns_plan() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let spec = TenantSpec::with_quota("team-a", TenantQuota::new(8, 1 << 16, 128));
        let plan = ac
            .admit(&spec, &one_switch("s1", est(&[("agg", 3, 4096, 24, 8)])))
            .expect("fits");
        assert_eq!(plan.version, 1);
        assert_eq!(plan.switches.len(), 1);
        assert_eq!(plan.switches[0].stages, 4); // dispatch + 3
        assert_eq!(plan.switches[0].sram_bytes, 4096);
        assert_eq!(ac.tenant_version("team-a"), Some(1));
        assert_eq!(ac.usage("s1").stages, 4);
        assert!(plan.render_json().contains("\"tenant\":\"team-a\""));
    }

    #[test]
    fn over_quota_rejected_names_biggest_kernel() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let spec = TenantSpec::with_quota("greedy", TenantQuota::new(8, 1000, 128));
        let err = ac
            .admit(
                &spec,
                &one_switch("s1", est(&[("small", 1, 200, 8, 4), ("big", 2, 900, 8, 4)])),
            )
            .unwrap_err();
        let report = err.cost_report().expect("rejection");
        assert_eq!(report.budget, BudgetKind::TenantQuota);
        assert_eq!(report.resource, ResourceKind::SramBytes);
        assert_eq!(report.kernel.as_deref(), Some("big"));
        assert_eq!(report.requested, 1100);
        assert_eq!(report.limit, 1000);
        // Rejection commits nothing.
        assert_eq!(ac.usage("s1"), SwitchUsage::default());
        assert!(ac.tenant_version("greedy").is_none());
    }

    #[test]
    fn cost_report_json_is_deterministic() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let spec = TenantSpec::with_quota("greedy", TenantQuota::new(2, 1 << 20, 512));
        let err = ac
            .admit(&spec, &one_switch("s1", est(&[("agg", 5, 64, 8, 4)])))
            .unwrap_err();
        let report = err.cost_report().unwrap();
        assert_eq!(
            report.render_json(),
            "{\"kind\":\"ncsched-cost-report\",\"tenant\":\"greedy\",\"version\":1,\
             \"switch\":\"s1\",\"kernel\":\"agg\",\"budget\":\"tenant_quota\",\
             \"resource\":\"stages\",\"requested\":6,\"limit\":2,\"available\":2,\
             \"detail\":\"module needs 6 stages but tenant quota allows 2\"}"
        );
    }

    #[test]
    fn fabric_exhaustion_rejects_second_tenant() {
        // Tiny chip: 4 stages × (2 recirc + 1) = 12 logical stages.
        let mut ac = AdmissionController::new(ResourceModel::tiny());
        ac.admit(
            &TenantSpec::new("first"),
            &one_switch("s1", est(&[("wide", 9, 64, 8, 4)])),
        )
        .expect("first tenant fits alone");
        let err = ac
            .admit(
                &TenantSpec::new("second"),
                &one_switch("s1", est(&[("wide2", 4, 64, 8, 4)])),
            )
            .unwrap_err();
        let report = err.cost_report().unwrap();
        assert_eq!(report.budget, BudgetKind::FabricCapacity);
        assert_eq!(report.resource, ResourceKind::Stages);
        assert_eq!(report.requested, 5);
        assert_eq!(report.limit, 12);
        assert_eq!(report.available, 2); // 12 - 10 committed
        assert!(report.kernel.is_none());
        // A narrower module still fits in the gap.
        ac.admit(
            &TenantSpec::new("third"),
            &one_switch("s1", est(&[("narrow", 1, 64, 8, 4)])),
        )
        .expect("2 logical stages remain");
    }

    #[test]
    fn chip_violation_reports_before_quota() {
        let mut ac = AdmissionController::new(ResourceModel::tiny());
        let mut m = est(&[("huge", 2, 64, 8, 4)]);
        m.violations.push(ResourceViolation::PhvHeader {
            used: 100,
            budget: 64,
        });
        let err = ac
            .admit(&TenantSpec::new("t"), &one_switch("s1", m))
            .unwrap_err();
        let report = err.cost_report().unwrap();
        assert_eq!(report.budget, BudgetKind::ChipModel);
        assert_eq!(report.resource, ResourceKind::PhvHeaderBytes);
        assert_eq!(report.requested, 100);
        assert!(report.render_json().contains("\"budget\":\"chip_model\""));
    }

    #[test]
    fn duplicate_admit_is_an_error() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let spec = TenantSpec::new("dup");
        let ests = one_switch("s1", est(&[("k", 1, 64, 8, 4)]));
        ac.admit(&spec, &ests).unwrap();
        assert!(matches!(
            ac.admit(&spec, &ests),
            Err(AdmissionError::AlreadyAdmitted { .. })
        ));
    }

    #[test]
    fn upgrade_reserves_both_versions_then_reclaims_old() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let spec = TenantSpec::new("team-a");
        ac.admit(&spec, &one_switch("s1", est(&[("v1k", 3, 1000, 8, 4)])))
            .unwrap();
        assert_eq!(ac.usage("s1").sram_bytes, 1000);

        let (mut up, plan) = ac
            .begin_upgrade("team-a", &one_switch("s1", est(&[("v2k", 3, 1200, 8, 4)])))
            .expect("dual residency fits");
        assert_eq!(up.old_version, 1);
        assert_eq!(up.new_version, 2);
        assert_eq!(plan.version, 2);
        // Both versions committed while dual-running.
        assert_eq!(ac.usage("s1").sram_bytes, 2200);

        // Can't finish before the drain set empties.
        up.mark_installed();
        up.begin_drain([(1, 42)]);
        assert!(matches!(
            ac.finish_upgrade(&up),
            Err(AdmissionError::UpgradeNotDrained { remaining: 1, .. })
        ));

        assert!(up.acked(1, 42));
        ac.finish_upgrade(&up).expect("drained");
        assert_eq!(ac.tenant_version("team-a"), Some(2));
        // Old version's SRAM returned to the pool.
        assert_eq!(ac.usage("s1").sram_bytes, 1200);

        // Second upgrade only after the first finished.
        assert!(matches!(
            ac.abort_upgrade("team-a"),
            Err(AdmissionError::NoUpgrade { .. })
        ));
    }

    #[test]
    fn upgrade_dual_residency_can_exceed_capacity() {
        let mut ac = AdmissionController::new(ResourceModel::tiny());
        ac.admit(
            &TenantSpec::new("t"),
            &one_switch("s1", est(&[("k", 7, 64, 8, 4)])),
        )
        .unwrap();
        // 8 committed of 12; a same-size v2 (8 stages) cannot co-reside.
        let err = ac
            .begin_upgrade("t", &one_switch("s1", est(&[("k", 7, 64, 8, 4)])))
            .unwrap_err();
        let report = err.cost_report().unwrap();
        assert_eq!(report.budget, BudgetKind::FabricCapacity);
        assert_eq!(report.version, 2);
        assert_eq!(report.available, 4);
        // Rejected upgrade leaves the old reservation intact.
        assert_eq!(ac.usage("s1").stages, 8);
        assert_eq!(ac.tenant_version("t"), Some(1));
    }

    #[test]
    fn abort_upgrade_frees_the_pending_reservation() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        ac.admit(
            &TenantSpec::new("t"),
            &one_switch("s1", est(&[("k", 2, 100, 8, 4)])),
        )
        .unwrap();
        ac.begin_upgrade("t", &one_switch("s1", est(&[("k", 2, 100, 8, 4)])))
            .unwrap();
        assert_eq!(ac.usage("s1").sram_bytes, 200);
        ac.abort_upgrade("t").unwrap();
        assert_eq!(ac.usage("s1").sram_bytes, 100);
        assert_eq!(ac.tenant_version("t"), Some(1));
    }

    #[test]
    fn release_returns_resources() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        ac.admit(
            &TenantSpec::new("t"),
            &one_switch("s1", est(&[("k", 2, 100, 8, 4)])),
        )
        .unwrap();
        assert!(ac.release("t"));
        assert!(!ac.release("t"));
        assert_eq!(ac.usage("s1"), SwitchUsage::default());
    }

    #[test]
    fn multi_switch_plans_are_sorted_and_summed() {
        let mut ac = AdmissionController::new(ResourceModel::default());
        let ests = BTreeMap::from([
            ("s2".to_string(), est(&[("k", 2, 100, 8, 4)])),
            ("s1".to_string(), est(&[("k", 3, 200, 8, 4)])),
        ]);
        let plan = ac.admit(&TenantSpec::new("t"), &ests).unwrap();
        assert_eq!(plan.switches[0].switch, "s1");
        assert_eq!(plan.switches[1].switch, "s2");
        assert_eq!(plan.total_stages(), 4 + 3);
        let usage = ac.fabric_usage();
        assert_eq!(usage["s1"].sram_bytes, 200);
        assert_eq!(usage["s2"].sram_bytes, 100);
    }
}
