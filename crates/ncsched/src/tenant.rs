//! Tenant identity and per-switch resource quotas.
//!
//! A *tenant* is a named principal that compiles and deploys its own NCL
//! program onto the shared fabric. Quotas bound what one tenant may
//! occupy **on each switch**; they are checked by the
//! [`AdmissionController`](crate::AdmissionController) before fabric
//! capacity, so a noisy tenant is rejected against its own budget with a
//! cost report rather than starving its neighbours.

/// Per-switch resource budget for one tenant.
///
/// `usize::MAX` in a field means "no quota" for that resource; the
/// fabric's physical capacity still applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TenantQuota {
    /// Maximum pipeline stages (including the dispatch stage) the
    /// tenant's module may occupy on one switch.
    pub stages: usize,
    /// Maximum SRAM bytes (register arrays) per switch.
    pub sram_bytes: usize,
    /// Maximum PHV bytes (header + metadata) per switch.
    pub phv_bytes: usize,
}

impl TenantQuota {
    /// No limits — the tenant is bounded only by fabric capacity.
    pub fn unlimited() -> Self {
        TenantQuota {
            stages: usize::MAX,
            sram_bytes: usize::MAX,
            phv_bytes: usize::MAX,
        }
    }

    /// A concrete budget.
    pub fn new(stages: usize, sram_bytes: usize, phv_bytes: usize) -> Self {
        TenantQuota {
            stages,
            sram_bytes,
            phv_bytes,
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota::unlimited()
    }
}

/// A tenant: a name plus the quota its deployments are admitted under.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TenantSpec {
    /// Stable tenant name; used as the metric label value and the
    /// admission-registry key.
    pub name: String,
    /// Per-switch budget.
    pub quota: TenantQuota,
}

impl TenantSpec {
    /// A tenant with no quota (fabric capacity still applies).
    pub fn new(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            quota: TenantQuota::unlimited(),
        }
    }

    /// A tenant with a concrete budget.
    pub fn with_quota(name: &str, quota: TenantQuota) -> Self {
        TenantSpec {
            name: name.to_string(),
            quota,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_is_unlimited() {
        let t = TenantSpec::new("team-a");
        assert_eq!(t.quota, TenantQuota::unlimited());
        assert_eq!(t.quota.stages, usize::MAX);
    }

    #[test]
    fn concrete_quota_round_trips() {
        let q = TenantQuota::new(4, 1 << 16, 96);
        let t = TenantSpec::with_quota("team-b", q);
        assert_eq!(t.name, "team-b");
        assert_eq!(t.quota.sram_bytes, 1 << 16);
    }
}
