#![warn(missing_docs)]

//! # ncmc — bounded model checking for kernel × protocol schedules
//!
//! The lints in `ncl-ir` flag *potential* hazards: state a replayed
//! window corrupts, register reads torn across recirculation passes,
//! arrays two kernels race on, accumulators that wrap. This crate is
//! the second judge the paper's deployment story needs: it **executes**
//! the composed system — the compiled switch kernel (via
//! [`pisa::Pipeline`]), the production NCP-R sender/receiver machines
//! (via their `save`/`restore` state capture), and an adversarial
//! network — over *every* schedule within stated bounds, and returns
//! one of two artifacts:
//!
//! * a **witness**: a machine-found, delta-shrunk, replayable schedule
//!   (loss/duplication/reordering/stage-interleaving decisions, one per
//!   line) that drives the system to a state no loss-free serial
//!   execution can reach — the hazard, concretely; or
//! * a **certificate**: the bounded space was exhausted without a
//!   violation — the hazard is absent within `(retries, splits, drops,
//!   states)` bounds that the certificate records on its face.
//!
//! Exploration is pruned by visited-state dedup over a stable 128-bit
//! state hash and by sleep-set DPOR with *dynamic* commutation (two
//! steps commute at a state iff executing them in either order reaches
//! the identical state — checked, not assumed). A naive exhaustive mode
//! is kept as ground truth; the reduction modes must agree on every
//! verdict and on the reachable terminal observations, and tests (plus
//! the E15 benchmark gate) enforce exactly that.
//!
//! Layering: this crate sits below `ncl-core` (which builds scenarios
//! from compiled programs and wires outcomes into `nclc --lint` and
//! deployment gating) and depends only on `c3`, `pisa`, `ncp` and
//! `ncl-ir`.

pub mod cert;
pub mod check;
pub mod explore;
pub mod schedule;
pub mod system;

pub use cert::Certificate;
pub use check::{
    corpus_entry, corpus_file_name, plan_for, replay_violates, run_check, Check, CheckResult,
    Outcome, PropertyKind, WitnessReport,
};
pub use explore::{
    explore, minimal_witness, Exploration, ExploreOptions, Property, Reduction, Stats,
};
pub use schedule::{Schedule, Step};
pub use system::{Bounds, DataCopy, Domain, RespCopy, Suspended, SysState, System, WindowDef};

#[cfg(test)]
pub(crate) mod testutil {
    //! Hand-built bare-`u32` pipelines: the checker treats packets as
    //! opaque bytes, so unit tests don't need the NCL compiler — a
    //! one-field parser and a couple of register actions exercise every
    //! checker code path.

    use crate::system::{Bounds, System, WindowDef};
    use c3::{BinOp, ScalarType, Value};
    use pisa::{
        ActionDef, Arg, DeparserSpec, Extract, FieldClass, ParserSpec, Pipeline, PipelineConfig,
        PrimOp, ResourceModel, StageConfig, TableDef,
    };
    use std::collections::HashMap;

    /// What the pipeline does with the parsed `u32`.
    #[derive(Clone, Copy)]
    pub enum KernelShape {
        /// `mirror[0] += x; total[0] = mirror[0]` — not replay-safe
        /// (duplication double-adds), torn by a split (stale total).
        Accumulate,
        /// `mirror[0] = x; total[0] = mirror[0]` — replay-safe
        /// (idempotent per window), order-sensitive.
        Overwrite,
    }

    /// A two-stage pipeline with the mirror idiom the real lowered
    /// kernels use: stage 0 read-modify-writes `mirror[0]` (atomic
    /// within the stage, like one RegisterAction) and carries the
    /// result in a PHV temp; stage 1 publishes it to `total[0]`. Each
    /// array stays single-stage (the RMT constraint), yet a
    /// [`crate::Step::Split`] between the stages interleaves another
    /// window between the mirror update and the publish — exactly the
    /// recirculation tear the `non-atomic-rmw` lint flags. The kernel
    /// reflects a response.
    pub fn rmw_pipeline(shape: KernelShape) -> Pipeline {
        let mut layout = pisa::PhvLayout::default();
        let x = layout.add("x", ScalarType::U32, FieldClass::Header);
        let fwd = layout.add("meta.fwd", ScalarType::U8, FieldClass::Metadata);
        let tmp = layout.add("meta.tmp", ScalarType::U32, FieldClass::Metadata);
        let combine = match shape {
            KernelShape::Accumulate => PrimOp::Alu {
                guard: None,
                dst: tmp,
                op: BinOp::Add,
                a: Arg::Field(tmp),
                b: Arg::Field(x),
            },
            KernelShape::Overwrite => PrimOp::Mov {
                guard: None,
                dst: tmp,
                src: Arg::Field(x),
            },
        };
        let update = ActionDef {
            name: "update".into(),
            ops: vec![
                PrimOp::RegRead {
                    guard: None,
                    dst: tmp,
                    reg: 0,
                    idx: Arg::Const(Value::u32(0)),
                },
                combine,
                PrimOp::RegWrite {
                    guard: None,
                    reg: 0,
                    idx: Arg::Const(Value::u32(0)),
                    src: Arg::Field(tmp),
                },
            ],
        };
        let publish = ActionDef {
            name: "publish".into(),
            ops: vec![
                PrimOp::RegWrite {
                    guard: None,
                    reg: 1,
                    idx: Arg::Const(Value::u32(0)),
                    src: Arg::Field(tmp),
                },
                // _reflect(): code 1.
                PrimOp::Mov {
                    guard: None,
                    dst: fwd,
                    src: Arg::Const(Value::new(ScalarType::U8, 1)),
                },
            ],
        };
        let cfg = PipelineConfig {
            name: "rmw".into(),
            parser: ParserSpec {
                common: vec![Extract { field: x }],
                verify: vec![],
                select: None,
                branches: HashMap::new(),
            },
            deparser: DeparserSpec {
                common: vec![x],
                select: None,
                branches: HashMap::new(),
            },
            stages: vec![
                StageConfig {
                    tables: vec![TableDef::always("update", update)],
                },
                StageConfig {
                    tables: vec![TableDef::always("publish", publish)],
                },
            ],
            registers: vec![
                pisa::RegisterArrayDef {
                    name: "mirror".into(),
                    elem: ScalarType::U32,
                    len: 1,
                    init: vec![],
                },
                pisa::RegisterArrayDef {
                    name: "total".into(),
                    elem: ScalarType::U32,
                    len: 1,
                    init: vec![],
                },
            ],
            fwd_code: Some(fwd),
            fwd_label: None,
            layout,
        };
        Pipeline::load(cfg, ResourceModel::default()).unwrap()
    }

    /// A scenario of `u32` windows over the kernel, one per payload,
    /// all from host 1, distinct seqs.
    pub fn windows(payloads: &[u32]) -> Vec<WindowDef> {
        payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| WindowDef {
                name: "k".into(),
                kernel: 1,
                sender: 1,
                seq: i as u32,
                packet: p.to_be_bytes().to_vec(),
            })
            .collect()
    }

    /// System over [`rmw_pipeline`] with default bounds.
    pub fn system(shape: KernelShape, payloads: &[u32]) -> System {
        System::new(rmw_pipeline(shape), windows(payloads), Bounds::default())
    }
}

#[cfg(test)]
mod tests {
    use super::check::{run_check, Check, PropertyKind};
    use super::explore::{explore, minimal_witness, ExploreOptions, Property, Reduction};
    use super::schedule::Step;
    use super::system::Domain;
    use super::testutil::{system, KernelShape};
    use ncl_ir::lint::LintCode;
    use std::collections::BTreeSet;

    fn serializable(sys: &mut super::System) -> Property {
        let refs: BTreeSet<Vec<u64>> = sys.serial_references().into_iter().collect();
        Property::InSet(refs)
    }

    #[test]
    fn accumulator_duplication_found_and_shrunk() {
        // total[0] += x with dup+drop: a retransmitted window delivered
        // twice lands outside every serial state.
        let mut sys = system(KernelShape::Accumulate, &[10]);
        let prop = serializable(&mut sys);
        let ex = explore(&mut sys, Domain::DUP_DROP, &prop, ExploreOptions::default());
        assert!(ex.witness.is_some(), "dup hazard must be found");
        let min = minimal_witness(&mut sys, Domain::DUP_DROP, &prop).unwrap();
        // Minimal witness: tick a retransmission into existence, then
        // deliver both copies and let the schedule terminate. Two
        // pipeline entries — same length as the handwritten ones.
        assert_eq!(min.deliveries(), 2, "minimal witness: {min}");
        // Replaying the witness really violates the property.
        let init = sys.initial();
        let end = sys.exec_all(&init, &min);
        assert!(prop.violated(&sys, &end, Domain::DUP_DROP));
    }

    #[test]
    fn overwrite_kernel_is_dup_certified() {
        // total[0] = x is idempotent: duplication can only replay a
        // value some serial order also ends in.
        let mut sys = system(KernelShape::Overwrite, &[10, 20]);
        let prop = serializable(&mut sys);
        let ex = explore(&mut sys, Domain::DUP_DROP, &prop, ExploreOptions::default());
        assert!(ex.witness.is_none(), "overwrite kernel is replay-safe");
        assert!(ex.complete, "space must be covered for a certificate");
        assert!(ex.stats.terminals > 0);
    }

    #[test]
    fn split_tears_rmw_and_witness_is_minimal() {
        // Interleaving a second window between stage-0 read and
        // stage-1 write loses one addend.
        let mut sys = system(KernelShape::Accumulate, &[10, 20]);
        let prop = serializable(&mut sys);
        let ex = explore(
            &mut sys,
            Domain::SPLIT_ONLY,
            &prop,
            ExploreOptions::default(),
        );
        assert!(ex.witness.is_some(), "torn RMW must be found");
        let min = minimal_witness(&mut sys, Domain::SPLIT_ONLY, &prop).unwrap();
        assert_eq!(min.deliveries(), 2, "minimal witness: {min}");
        assert!(
            min.steps.iter().any(|s| matches!(s, Step::Split(..))),
            "the witness must actually split: {min}"
        );
    }

    #[test]
    fn reductions_agree_on_verdict_and_terminals() {
        // Scenarios small enough for the naive mode to exhaust, with
        // both verdicts represented in every domain.
        for (shape, payloads, domain) in [
            (KernelShape::Accumulate, vec![7u32], Domain::DUP_DROP),
            (KernelShape::Overwrite, vec![10], Domain::DUP_DROP),
            (KernelShape::Accumulate, vec![10, 20], Domain::SPLIT_ONLY),
            (KernelShape::Overwrite, vec![10, 20], Domain::ORDER_ONLY),
        ] {
            let mut naive_out = None;
            let mut results = Vec::new();
            for red in [Reduction::Naive, Reduction::Dedup, Reduction::Dpor] {
                let mut sys = system(shape, &payloads);
                let prop = serializable(&mut sys);
                let ex = explore(
                    &mut sys,
                    domain,
                    &prop,
                    ExploreOptions {
                        reduction: red,
                        order_seed: None,
                        stop_at_first: false,
                    },
                );
                assert!(ex.complete);
                results.push((red, ex.witness.is_some(), ex.terminal_obs.clone(), ex.stats));
                if red == Reduction::Naive {
                    naive_out = Some((ex.witness.is_some(), ex.terminal_obs));
                }
            }
            let (naive_verdict, naive_terminals) = naive_out.unwrap();
            for (red, verdict, terminals, _) in &results {
                assert_eq!(
                    *verdict, naive_verdict,
                    "{:?} disagrees with naive verdict",
                    red
                );
                assert_eq!(
                    *terminals, naive_terminals,
                    "{:?} reaches different terminal observations",
                    red
                );
            }
        }
    }

    #[test]
    fn dpor_prunes_where_deliveries_commute() {
        // Two overwrite windows with *equal* payloads: delivery order
        // commutes on the full state except for protocol bookkeeping —
        // use order-only domain where even that converges. DPOR must
        // cut schedules relative to naive.
        let mut naive_schedules = 0;
        let mut dpor = None;
        for red in [Reduction::Naive, Reduction::Dpor] {
            let mut sys = system(KernelShape::Accumulate, &[5, 5, 5]);
            let prop = serializable(&mut sys);
            let ex = explore(
                &mut sys,
                Domain::ORDER_ONLY,
                &prop,
                ExploreOptions {
                    reduction: red,
                    order_seed: None,
                    stop_at_first: false,
                },
            );
            assert!(ex.complete);
            assert!(ex.witness.is_none());
            match red {
                Reduction::Naive => naive_schedules = ex.stats.schedules,
                _ => dpor = Some(ex.stats),
            }
        }
        let dpor = dpor.unwrap();
        assert!(
            dpor.sleep_skips + dpor.dedup_hits > 0,
            "DPOR should prune something: {dpor:?}"
        );
        assert!(
            dpor.schedules < naive_schedules,
            "DPOR ({}) must explore fewer schedules than naive ({naive_schedules})",
            dpor.schedules
        );
    }

    #[test]
    fn shrunk_witness_is_independent_of_discovery_order() {
        let mut reference = None;
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let mut sys = system(KernelShape::Accumulate, &[10]);
            let prop = serializable(&mut sys);
            let ex = explore(
                &mut sys,
                Domain::DUP_DROP,
                &prop,
                ExploreOptions {
                    reduction: Reduction::Dpor,
                    order_seed: Some(seed),
                    stop_at_first: true,
                },
            );
            assert!(ex.witness.is_some(), "seed {seed} failed to find the bug");
            let min = minimal_witness(&mut sys, Domain::DUP_DROP, &prop).unwrap();
            match &reference {
                None => reference = Some(min),
                Some(r) => assert_eq!(&min, r, "seed {seed} shrank to a different schedule"),
            }
        }
    }

    #[test]
    fn run_check_maps_lint_codes_end_to_end() {
        // replay-unsafe on an accumulator → witness.
        let mut sys = system(KernelShape::Accumulate, &[10]);
        let check = Check::for_lint(LintCode::ReplayUnsafe, "k", vec![]).unwrap();
        let res = run_check(&mut sys, "rmw", &check, Reduction::Dpor, None);
        match res.outcome {
            super::Outcome::Witness(w) => {
                assert_eq!(w.deliveries, 2);
                assert!(!w.expected.is_empty());
                assert!(!w.expected.contains(&w.got));
            }
            other => panic!("expected witness, got {}", other.summary()),
        }
        // replay-unsafe on an overwrite kernel → certificate with the
        // bounds on its face.
        let mut sys = system(KernelShape::Overwrite, &[10, 20]);
        let check = Check::for_lint(LintCode::ReplayUnsafe, "k", vec![]).unwrap();
        let res = run_check(&mut sys, "rmw", &check, Reduction::Dpor, None);
        match res.outcome {
            super::Outcome::Certificate(c) => {
                assert_eq!(c.property, "serializable");
                assert_eq!(c.windows, 2);
                assert!(c.to_json().contains("\"max_retries\":1"));
            }
            other => panic!("expected certificate, got {}", other.summary()),
        }
        // resource-overrun is not schedule-checkable.
        assert!(Check::for_lint(LintCode::ResourceOverrun, "k", vec![]).is_none());
        assert!(!LintCode::ResourceOverrun.schedule_checkable());
    }

    #[test]
    fn overflow_watch_finds_strict_decrease() {
        // Two max-weight windows wrap the u32 accumulator; the watched
        // cell strictly decreases on the second delivery.
        let mut sys = system(KernelShape::Accumulate, &[0xc000_0000, 0xc000_0000]);
        let check = Check {
            code: Some(LintCode::UnguardedOverflow),
            kernel: "k".into(),
            kind: PropertyKind::NoRegression,
            domain: Domain::ORDER_ONLY,
            watch: vec!["total".into()],
        };
        let res = run_check(&mut sys, "rmw", &check, Reduction::Dpor, None);
        match res.outcome {
            super::Outcome::Witness(w) => {
                assert_eq!(w.deliveries, 2, "wrap needs both windows: {}", w.schedule);
            }
            other => panic!("expected overflow witness, got {}", other.summary()),
        }
        // Small payloads cannot wrap within bounds → certificate.
        let mut sys = system(KernelShape::Accumulate, &[10, 20]);
        let check = Check {
            code: Some(LintCode::UnguardedOverflow),
            kernel: "k".into(),
            kind: PropertyKind::NoRegression,
            domain: Domain::ORDER_ONLY,
            watch: vec!["total".into()],
        };
        let res = run_check(&mut sys, "rmw", &check, Reduction::Dpor, None);
        assert!(res.outcome.is_certificate(), "{}", res.outcome.summary());
    }

    #[test]
    fn witness_replays_from_rendered_text() {
        // The full corpus loop: find, shrink, render, parse, replay.
        let mut sys = system(KernelShape::Accumulate, &[10]);
        let prop = serializable(&mut sys);
        explore(&mut sys, Domain::DUP_DROP, &prop, ExploreOptions::default());
        let min = minimal_witness(&mut sys, Domain::DUP_DROP, &prop).unwrap();
        let text = min.render();
        let parsed = super::Schedule::parse(&text).unwrap();
        let init = sys.initial();
        let end = sys.exec_all(&init, &parsed);
        assert!(prop.violated(&sys, &end, Domain::DUP_DROP));
        assert_eq!(parsed.hash64(), min.hash64());
    }
}
