//! Bounded-absence certificates.
//!
//! When exploration covers the whole bounded schedule space without
//! finding a violation, the checker emits a certificate recording
//! *exactly what was proven*: the property, the scenario size, every
//! bound parameter, and the exploration counters. A certificate is not
//! a proof of correctness — it is a proof of absence **within the
//! stated bounds**, and it must say so on its face. The JSON is
//! hand-rolled with a pinned key order so certificates diff cleanly and
//! can be snapshot-tested in CI.

use crate::explore::Stats;
use crate::system::Bounds;

/// A bounded-absence certificate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Program (pipeline) name.
    pub program: String,
    /// Lint code this certificate discharges (kebab-case), or `None`
    /// for the whole-program convergence property.
    pub code: Option<String>,
    /// Kernel (or kernel set) the scenario exercised.
    pub kernel: String,
    /// Property name (`serializable`, `order-invariant`,
    /// `no-regression`, `convergence`).
    pub property: String,
    /// Scenario windows injected.
    pub windows: usize,
    /// The bounds the absence holds within.
    pub bounds: Bounds,
    /// Reduction mode used.
    pub reduction: &'static str,
    /// Exploration counters at completion.
    pub stats: Stats,
    /// Size of the serial reference set the terminals were checked
    /// against (0 for `no-regression`).
    pub serial_states: usize,
}

impl Certificate {
    /// Renders the certificate as JSON with pinned key order.
    pub fn to_json(&self) -> String {
        let code = match &self.code {
            Some(c) => format!("\"{}\"", escape(c)),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"program\":\"{}\",\"code\":{},\"kernel\":\"{}\",",
                "\"property\":\"{}\",\"windows\":{},",
                "\"bounds\":{{\"max_retries\":{},\"max_splits\":{},",
                "\"max_drops\":{},\"max_states\":{}}},",
                "\"reduction\":\"{}\",",
                "\"states\":{},\"edges\":{},\"terminals\":{},",
                "\"schedules\":{},\"dedup_hits\":{},\"sleep_skips\":{},",
                "\"probe_execs\":{},\"serial_states\":{}}}"
            ),
            escape(&self.program),
            code,
            escape(&self.kernel),
            self.property,
            self.windows,
            self.bounds.max_retries,
            self.bounds.max_splits,
            self.bounds.max_drops,
            self.bounds.max_states,
            self.reduction,
            self.stats.states,
            self.stats.edges,
            self.stats.terminals,
            self.stats.schedules,
            self.stats.dedup_hits,
            self.stats.sleep_skips,
            self.stats.probe_execs,
            self.serial_states,
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let cert = Certificate {
            program: "kvs".into(),
            code: Some("replay-unsafe".into()),
            kernel: "que\"ry".into(),
            property: "serializable".into(),
            windows: 2,
            bounds: Bounds::default(),
            reduction: "dpor",
            stats: Stats {
                states: 10,
                edges: 9,
                terminals: 2,
                schedules: 2,
                dedup_hits: 1,
                sleep_skips: 3,
                probe_execs: 8,
            },
            serial_states: 2,
        };
        let json = cert.to_json();
        assert!(json.starts_with("{\"program\":\"kvs\""));
        assert!(json.contains("\"code\":\"replay-unsafe\""));
        assert!(json.contains("que\\\"ry"));
        assert!(json.contains("\"max_retries\":1"));
        assert!(json.contains("\"sleep_skips\":3"));
        // Convergence certificates have no lint code.
        let conv = Certificate { code: None, ..cert };
        assert!(conv.to_json().contains("\"code\":null"));
    }
}
