//! The composed system under check: one switch pipeline + per-host
//! NCP-R senders + per-host receivers + an unordered lossy network.
//!
//! The checker explores *schedules* — sequences of [`Step`]s — over this
//! system. All nondeterminism of the real deployment (loss, duplication,
//! reordering, stage-level interleaving, timer firings) is reified as
//! explicit steps, and everything else is deterministic: executing the
//! same schedule from the same initial state always produces the same
//! [`SysState`], bit for bit. That determinism is what makes visited-set
//! dedup, DPOR commutation probing, and corpus replay sound.
//!
//! ## State model
//!
//! * **Switch**: a [`pisa::Pipeline`]; its persistent registers are
//!   checkpointed with [`pisa::Pipeline::snapshot`]. At most one packet
//!   may be suspended mid-pipeline ([`Step::Split`]) at a time — stages
//!   stay atomic, matching the RMT guarantee.
//! * **Hosts**: one [`ncp::Sender`] per distinct sending host and one
//!   [`ncp::Receiver`] per host (receiver-side duplicate suppression of
//!   responses). Sender/receiver state is captured with their
//!   `save`/`restore` pairs, so the checker never reimplements protocol
//!   logic — it steps the production code.
//! * **Network**: a multiset of data copies and response copies with
//!   deterministically assigned ids. Delivery order is the scheduler's
//!   choice (reordering), copies can be dropped (loss), and RTO ticks
//!   mint new copies (duplication).
//!
//! Responses are modeled abstractly: delivering a window whose kernel
//! emits (`_pass`/`_reflect`/`_pass-to`) produces one response copy for
//! the origin host; `_bcast` fans out one per host; `_drop` produces
//! none (the sender eventually retransmits or abandons). Delivering a
//! response acks the corresponding `(kernel, seq)` at the host's sender
//! and runs the receiver's admit (dedup) path.

use crate::schedule::{Schedule, Step};
use ncl_ir::hash::StableHasher;
use ncp::reliable::Time;
use ncp::{Receiver, ReceiverState, ReliableConfig, Sender, SenderState};
use pisa::{PartialPacket, Pipeline, PipelineSnapshot};

/// One application window the scenario injects: the packet bytes plus
/// the transport identity NCP-R tracks it under.
#[derive(Clone, Debug)]
pub struct WindowDef {
    /// Kernel name, for diagnostics.
    pub name: String,
    /// Kernel id (the `(kernel, seq)` ack key).
    pub kernel: u16,
    /// Sending host id.
    pub sender: u16,
    /// Window sequence number.
    pub seq: u32,
    /// Fully encoded packet bytes (what the wire would carry).
    pub packet: Vec<u8>,
}

/// Exploration bounds. Every bound is part of any certificate the
/// checker emits: absence is only proven *within* these.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bounds {
    /// RTO retransmissions per window (total copies per window is
    /// `1 + max_retries`).
    pub max_retries: u32,
    /// Stage-split suspensions across the whole schedule.
    pub max_splits: u32,
    /// Dropped copies (data + response) across the whole schedule.
    pub max_drops: u32,
    /// Visited-state ceiling; exceeding it makes the run inconclusive
    /// rather than silently incomplete.
    pub max_states: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_retries: 1,
            max_splits: 1,
            max_drops: 1,
            max_states: 200_000,
        }
    }
}

/// Which fault classes a property's schedule domain enables. Properties
/// differ: replay safety quantifies over duplication + loss, RMW
/// atomicity over stage splits, aliasing over pure reorderings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Domain {
    /// Enable RTO ticks (duplication source) and response-loss-induced
    /// retransmission.
    pub dups: bool,
    /// Enable stage-split suspensions.
    pub splits: bool,
    /// Enable copy drops.
    pub drops: bool,
}

impl Domain {
    /// Pure reorderings only.
    pub const ORDER_ONLY: Domain = Domain {
        dups: false,
        splits: false,
        drops: false,
    };
    /// Duplication + loss (replay-safety domain).
    pub const DUP_DROP: Domain = Domain {
        dups: true,
        splits: false,
        drops: true,
    };
    /// Stage splits only (RMW-atomicity domain).
    pub const SPLIT_ONLY: Domain = Domain {
        dups: false,
        splits: true,
        drops: false,
    };
    /// Everything (whole-program convergence domain).
    pub const FULL: Domain = Domain {
        dups: true,
        splits: true,
        drops: true,
    };
}

/// A data copy in flight towards the switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataCopy {
    /// Deterministic copy id (`c<id>` in schedules).
    pub id: u32,
    /// Index into the scenario's window list.
    pub win: usize,
}

/// A response copy in flight towards a host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RespCopy {
    /// Deterministic response id (`r<id>` in schedules).
    pub id: u32,
    /// The delivered window this response answers (acks its
    /// `(kernel, seq)`).
    pub win: usize,
    /// Destination host.
    pub host: u16,
}

/// A packet suspended mid-pipeline by [`Step::Split`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Suspended {
    /// The copy being delivered.
    pub copy: DataCopy,
    /// Its pipeline position (PHV + next stage).
    pub packet: PartialPacket,
}

/// The full state of the composed system at one point of a schedule.
///
/// Plain data, cheap to clone; the checker forks it freely at every
/// branch point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SysState {
    /// Switch register state.
    pub regs: PipelineSnapshot,
    /// Per-host sender protocol state (one slot per scenario host).
    pub senders: Vec<SenderState>,
    /// Per-host receiver dedup state (one slot per scenario host).
    pub receivers: Vec<ReceiverState>,
    /// The logical clock.
    pub clock: Time,
    /// Data copies in flight, ordered by id.
    pub net: Vec<DataCopy>,
    /// Response copies in flight, ordered by id.
    pub resps: Vec<RespCopy>,
    /// At most one packet suspended mid-pipeline.
    pub suspended: Option<Suspended>,
    /// Next data-copy id to mint.
    pub next_copy: u32,
    /// Next response id to mint.
    pub next_resp: u32,
    /// Pipeline executions per window (completeness: every window must
    /// reach the switch at least once for a terminal state to count).
    pub execs: Vec<u32>,
    /// Splits spent.
    pub splits_used: u32,
    /// Drops spent.
    pub drops_used: u32,
    /// Set as soon as any watched register cell strictly decreases
    /// across a pipeline execution (the `unguarded-overflow` property).
    pub regressed: bool,
}

/// The composed system: pipeline + scenario + scratch protocol
/// machines. The pipeline and the scratch sender/receivers are working
/// storage — all semantic state lives in [`SysState`] and is restored
/// into them before every step.
pub struct System {
    pipeline: Pipeline,
    windows: Vec<WindowDef>,
    /// Distinct sending hosts, sorted; indexes `SysState::senders`.
    hosts: Vec<u16>,
    sender_cfg: ReliableConfig,
    scratch_senders: Vec<Sender>,
    scratch_receivers: Vec<Receiver>,
    bounds: Bounds,
    init_regs: PipelineSnapshot,
    /// Register arrays included in the observable state (application
    /// arrays; synthetic `__nclr_*` replay-filter arrays excluded).
    obs_regs: Vec<usize>,
    /// Register arrays watched for monotonic regression.
    watch_regs: Vec<usize>,
    stage_count: usize,
}

impl System {
    /// Builds a system over a loaded pipeline and a window scenario.
    ///
    /// The pipeline's *current* register contents become the initial
    /// state — write control variables (e.g. `nworkers`) before calling
    /// this. Observable state is every register array whose name does
    /// not start with `__nclr_` (the compiler's synthetic replay-filter
    /// arrays are protocol bookkeeping, not application state — they
    /// legitimately differ between a duplicated and a clean schedule).
    pub fn new(pipeline: Pipeline, windows: Vec<WindowDef>, bounds: Bounds) -> System {
        let mut hosts: Vec<u16> = windows.iter().map(|w| w.sender).collect();
        hosts.sort_unstable();
        hosts.dedup();
        let cfg = ReliableConfig {
            rto: 1_000,
            max_rto: 64_000,
            max_retries: bounds.max_retries,
            // Large enough that no scenario window ever queues: cwnd
            // dynamics are real code but not what these properties
            // quantify over.
            cwnd: 64,
            max_cwnd: 64,
            filter_slots: 0,
        };
        let scratch_senders = hosts.iter().map(|_| Sender::new(cfg)).collect();
        let scratch_receivers = hosts.iter().map(|_| Receiver::new()).collect();
        let obs_regs = pipeline
            .config()
            .registers
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.name.starts_with("__nclr_"))
            .map(|(i, _)| i)
            .collect();
        let init_regs = pipeline.snapshot();
        let stage_count = pipeline.stage_count();
        System {
            pipeline,
            windows,
            hosts,
            sender_cfg: cfg,
            scratch_senders,
            scratch_receivers,
            bounds,
            init_regs,
            obs_regs,
            watch_regs: Vec::new(),
            stage_count,
        }
    }

    /// Restricts the regression watch to the named register arrays
    /// (every array whose name starts with one of the given names —
    /// compiled lane banks suffix the source name).
    pub fn watch(&mut self, arrays: &[String]) {
        self.watch_regs = self
            .pipeline
            .config()
            .registers
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                arrays
                    .iter()
                    .any(|a| r.name == *a || r.name.starts_with(&format!("{a}_")))
            })
            .map(|(i, _)| i)
            .collect();
    }

    /// The scenario's windows.
    pub fn windows(&self) -> &[WindowDef] {
        &self.windows
    }

    /// The exploration bounds.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Number of register arrays currently under regression watch.
    pub fn watched(&self) -> usize {
        self.watch_regs.len()
    }

    /// The initial state: every window tracked at its sender (at
    /// distinct logical times, so RTO deadlines — and therefore
    /// retransmission schedules — are distinct) and one data copy per
    /// window in the network. Copy `c<i>` is window `i`'s first
    /// transmission.
    pub fn initial(&mut self) -> SysState {
        for s in &mut self.scratch_senders {
            *s = Sender::new(self.sender_cfg);
        }
        for r in &mut self.scratch_receivers {
            *r = Receiver::new();
        }
        let mut net = Vec::new();
        for (i, w) in self.windows.iter().enumerate() {
            let h = self.host_index(w.sender);
            let admitted = self.scratch_senders[h].track(w.kernel, w.seq, i as Time);
            debug_assert!(admitted, "scenario window queued (cwnd too small)");
            net.push(DataCopy {
                id: i as u32,
                win: i,
            });
        }
        SysState {
            regs: self.init_regs.clone(),
            senders: self.scratch_senders.iter().map(|s| s.save()).collect(),
            receivers: self.scratch_receivers.iter().map(|r| r.save()).collect(),
            clock: self.windows.len() as Time,
            next_copy: self.windows.len() as u32,
            next_resp: 0,
            execs: vec![0; self.windows.len()],
            net,
            resps: Vec::new(),
            suspended: None,
            splits_used: 0,
            drops_used: 0,
            regressed: false,
        }
    }

    fn host_index(&self, host: u16) -> usize {
        self.hosts
            .binary_search(&host)
            .expect("window sender not in host set")
    }

    /// The steps enabled in `st` under `domain`, in canonical order
    /// (sorted by [`Step`]'s derived `Ord`).
    pub fn enabled(&self, st: &SysState, domain: Domain) -> Vec<Step> {
        let mut steps = Vec::new();
        for c in &st.net {
            steps.push(Step::Deliver(c.id));
        }
        if domain.splits && st.suspended.is_none() && st.splits_used < self.bounds.max_splits {
            for c in &st.net {
                for k in 1..self.stage_count {
                    steps.push(Step::Split(c.id, k as u32));
                }
            }
        }
        if st.suspended.is_some() {
            steps.push(Step::Resume);
        }
        for r in &st.resps {
            steps.push(Step::DeliverResp(r.id));
        }
        if domain.drops && st.drops_used < self.bounds.max_drops {
            for c in &st.net {
                steps.push(Step::DropData(c.id));
            }
            for r in &st.resps {
                steps.push(Step::DropResp(r.id));
            }
        }
        if domain.dups && st.senders.iter().any(|s| !s.flight.is_empty()) {
            steps.push(Step::Tick);
        }
        steps.sort_unstable();
        steps
    }

    /// Whether `st` is terminal under `domain` (no step enabled).
    pub fn terminal(&self, st: &SysState, domain: Domain) -> bool {
        self.enabled(st, domain).is_empty()
    }

    /// Whether every scenario window executed at the switch at least
    /// once (incomplete terminals — e.g. a window dropped and then
    /// abandoned — are vacuous for convergence properties).
    pub fn complete(&self, st: &SysState) -> bool {
        st.execs.iter().all(|&e| e > 0)
    }

    /// Executes one step, returning the successor state.
    ///
    /// # Panics
    ///
    /// If the step is not enabled in `st` (schedules must come from
    /// [`System::enabled`] or a previously recorded witness).
    pub fn exec(&mut self, st: &SysState, step: Step) -> SysState {
        let mut st = st.clone();
        self.pipeline.restore(&st.regs);
        match step {
            Step::Deliver(id) => {
                let copy = self.take_copy(&mut st, id);
                let before = self.watch_cells();
                let fwd = {
                    let begun = self.pipeline.begin(&self.windows[copy.win].packet);
                    begun.map(|p| self.pipeline.finish(p))
                };
                st.execs[copy.win] += 1;
                self.check_regression(&mut st, &before);
                if let Some(out) = fwd {
                    self.route(&mut st, copy.win, out.fwd_code);
                }
            }
            Step::Split(id, stage) => {
                let copy = self.take_copy(&mut st, id);
                assert!(st.suspended.is_none(), "split while a packet is suspended");
                let before = self.watch_cells();
                if let Some(mut p) = self.pipeline.begin(&self.windows[copy.win].packet) {
                    self.pipeline.advance(&mut p, stage as usize);
                    st.suspended = Some(Suspended { copy, packet: p });
                }
                st.execs[copy.win] += 1;
                st.splits_used += 1;
                self.check_regression(&mut st, &before);
            }
            Step::Resume => {
                let s = st
                    .suspended
                    .take()
                    .expect("resume without suspended packet");
                let before = self.watch_cells();
                let out = self.pipeline.finish(s.packet);
                self.check_regression(&mut st, &before);
                self.route(&mut st, s.copy.win, out.fwd_code);
            }
            Step::DeliverResp(id) => {
                let pos = st
                    .resps
                    .iter()
                    .position(|r| r.id == id)
                    .expect("response not in flight");
                let resp = st.resps.remove(pos);
                let w = &self.windows[resp.win];
                let h = self.host_index(resp.host);
                self.scratch_receivers[h].restore(&st.receivers[h]);
                self.scratch_receivers[h].admit(w.sender, w.kernel, w.seq);
                st.receivers[h] = self.scratch_receivers[h].save();
                self.scratch_senders[h].restore(&st.senders[h]);
                self.scratch_senders[h].on_ack(w.kernel, w.seq);
                st.senders[h] = self.scratch_senders[h].save();
            }
            Step::DropData(id) => {
                self.take_copy(&mut st, id);
                st.drops_used += 1;
            }
            Step::DropResp(id) => {
                let pos = st
                    .resps
                    .iter()
                    .position(|r| r.id == id)
                    .expect("response not in flight");
                st.resps.remove(pos);
                st.drops_used += 1;
            }
            Step::Tick => {
                let now = st
                    .senders
                    .iter()
                    .filter_map(|s| s.flight.iter().map(|f| f.2).min())
                    .min()
                    .expect("tick with no window in flight")
                    .max(st.clock);
                for h in 0..self.hosts.len() {
                    self.scratch_senders[h].restore(&st.senders[h]);
                    let (send, _) = self.scratch_senders[h].poll(now);
                    st.senders[h] = self.scratch_senders[h].save();
                    for (kernel, seq) in send {
                        let win = self
                            .windows
                            .iter()
                            .position(|w| {
                                w.sender == self.hosts[h] && w.kernel == kernel && w.seq == seq
                            })
                            .expect("retransmission of unknown window");
                        st.net.push(DataCopy {
                            id: st.next_copy,
                            win,
                        });
                        st.next_copy += 1;
                    }
                }
                st.clock = now;
            }
        }
        st.regs = self.pipeline.snapshot();
        st
    }

    /// Executes a whole schedule from a state.
    pub fn exec_all(&mut self, st: &SysState, schedule: &Schedule) -> SysState {
        let mut cur = st.clone();
        for &step in &schedule.steps {
            cur = self.exec(&cur, step);
        }
        cur
    }

    fn take_copy(&self, st: &mut SysState, id: u32) -> DataCopy {
        let pos = st
            .net
            .iter()
            .position(|c| c.id == id)
            .expect("data copy not in flight");
        st.net.remove(pos)
    }

    fn route(&self, st: &mut SysState, win: usize, fwd_code: u8) {
        // Forward::code(): 0 Pass, 1 Reflect, 2 Bcast, 3 Drop, 4 PassTo.
        let hosts: &[u16] = match fwd_code {
            3 => &[],
            2 => self.hosts.as_slice(),
            _ => std::slice::from_ref(&self.windows[win].sender),
        };
        for &host in hosts {
            st.resps.push(RespCopy {
                id: st.next_resp,
                win,
                host,
            });
            st.next_resp += 1;
        }
    }

    fn watch_cells(&self) -> Vec<u64> {
        let snap = self.pipeline.snapshot();
        let mut cells = Vec::new();
        for &i in &self.watch_regs {
            for v in &snap.registers()[i] {
                cells.push(v.bits());
            }
        }
        cells
    }

    fn check_regression(&self, st: &mut SysState, before: &[u64]) {
        if self.watch_regs.is_empty() || st.regressed {
            return;
        }
        let after = self.watch_cells();
        if before.iter().zip(&after).any(|(b, a)| a < b) {
            st.regressed = true;
        }
    }

    /// The observable (application-visible) switch state: every cell of
    /// every non-synthetic register array, in configuration order.
    /// Convergence properties compare exactly this.
    pub fn observe(&self, st: &SysState) -> Vec<u64> {
        self.obs_regs
            .iter()
            .flat_map(|&i| st.regs.registers()[i].iter().map(|v| v.bits()))
            .collect()
    }

    /// Stable 128-bit hash of the *full* system state (switch registers
    /// including synthetic arrays, protocol machines, network contents,
    /// clock, budgets). Two states with equal hashes are treated as
    /// identical by the explorer's visited set and the DPOR commutation
    /// probe.
    pub fn hash(&self, st: &SysState) -> u128 {
        let mut h = StableHasher::new();
        for arr in st.regs.registers() {
            h.write_u64(arr.len() as u64);
            for v in arr {
                h.write_u8(v.ty() as u8);
                h.write_u64(v.bits());
            }
        }
        for s in &st.senders {
            h.write_u64(s.cwnd as u64);
            h.write_u64(s.acks_since_grow as u64);
            h.write_u64(s.last_now);
            h.write_u64(s.flight.len() as u64);
            for &(k, q, d, r, n) in &s.flight {
                h.write_u32(k as u32);
                h.write_u32(q);
                h.write_u64(d);
                h.write_u64(r);
                h.write_u32(n);
            }
            h.write_u64(s.queue.len() as u64);
            for &(k, q) in &s.queue {
                h.write_u32(k as u32);
                h.write_u32(q);
            }
        }
        for r in &st.receivers {
            h.write_u64(r.entries.len() as u64);
            for (s, k, floor, above) in &r.entries {
                h.write_u32(*s as u32);
                h.write_u32(*k as u32);
                h.write_u32(*floor);
                h.write_u64(above.len() as u64);
                for &o in above {
                    h.write_u32(o);
                }
            }
        }
        h.write_u64(st.clock);
        h.write_u64(st.net.len() as u64);
        for c in &st.net {
            h.write_u32(c.id);
            h.write_u64(c.win as u64);
        }
        h.write_u64(st.resps.len() as u64);
        for r in &st.resps {
            h.write_u32(r.id);
            h.write_u64(r.win as u64);
            h.write_u32(r.host as u32);
        }
        match &st.suspended {
            None => h.write_u8(0),
            Some(s) => {
                h.write_u8(1);
                h.write_u32(s.copy.id);
                h.write_u64(s.copy.win as u64);
                h.write_u64(s.packet.next_stage() as u64);
                let phv = s.packet.phv();
                for i in 0..phv.len() {
                    h.write_u64(phv.get(pisa::FieldId(i as u16)).bits());
                }
            }
        }
        h.write_u32(st.next_copy);
        h.write_u32(st.next_resp);
        for &e in &st.execs {
            h.write_u32(e);
        }
        h.write_u32(st.splits_used);
        h.write_u32(st.drops_used);
        h.write_u8(st.regressed as u8);
        h.finish128()
    }

    /// The observable states reachable by loss-free, duplication-free,
    /// atomic serial executions — one per permutation of the scenario
    /// windows. This is the reference set convergence properties check
    /// membership in. The first element corresponds to the canonical
    /// (scenario) order.
    pub fn serial_references(&mut self) -> Vec<Vec<u64>> {
        let n = self.windows.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut refs = Vec::new();
        permute(&mut order, 0, &mut |perm| {
            let mut st = self.initial();
            for &w in perm {
                st = self.exec(&st, Step::Deliver(w as u32));
            }
            refs.push(self.observe(&st));
        });
        refs
    }
}

fn permute(xs: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}
