//! Schedules: the serialized form of one explored execution.
//!
//! A schedule is a sequence of [`Step`]s — the checker's action
//! alphabet over the composed system (packet deliveries, stage-split
//! suspensions, response deliveries, losses and logical-clock ticks).
//! Copy and response identifiers are assigned deterministically during
//! execution, so a rendered schedule replays bit-identically on a fresh
//! [`crate::System`]: that is what lets shrunk counterexamples land in
//! `tests/corpus/` as plain text files.

use ncl_ir::hash::StableHasher;

/// One scheduling decision of the checker.
///
/// The derived `Ord` is the canonical exploration order: every
/// enumeration of enabled steps, the BFS used for shrinking, and the
/// lexicographic tie-break of minimal witnesses all use it, which is
/// why shrinking is deterministic regardless of discovery order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Step {
    /// Deliver data copy `c<id>` to the switch and run the full
    /// pipeline atomically.
    Deliver(u32),
    /// Begin delivering data copy `c<id>` but suspend it after logical
    /// stage `stage` (exclusive), modeling a packet mid-recirculation.
    Split(u32, u32),
    /// Run the suspended packet's remaining stages to completion.
    Resume,
    /// Deliver response copy `r<id>` to its host (NCP-R ack-by-response
    /// plus receiver dedup).
    DeliverResp(u32),
    /// The network loses data copy `c<id>`.
    DropData(u32),
    /// The network loses response copy `r<id>`.
    DropResp(u32),
    /// Advance the logical clock to the earliest sender RTO deadline,
    /// firing retransmissions (the duplication source).
    Tick,
}

impl Step {
    /// Renders the step in the one-line schedule syntax.
    pub fn render(&self) -> String {
        match self {
            Step::Deliver(c) => format!("deliver c{c}"),
            Step::Split(c, k) => format!("split c{c}@{k}"),
            Step::Resume => "resume".to_string(),
            Step::DeliverResp(r) => format!("resp r{r}"),
            Step::DropData(c) => format!("drop c{c}"),
            Step::DropResp(r) => format!("drop r{r}"),
            Step::Tick => "tick".to_string(),
        }
    }

    /// Parses the one-line syntax produced by [`Step::render`].
    pub fn parse(line: &str) -> Result<Step, String> {
        let line = line.trim();
        let bad = || format!("unparseable schedule step: '{line}'");
        if line == "resume" {
            return Ok(Step::Resume);
        }
        if line == "tick" {
            return Ok(Step::Tick);
        }
        let (verb, rest) = line.split_once(' ').ok_or_else(bad)?;
        let id = |s: &str, tag: char| -> Result<u32, String> {
            s.strip_prefix(tag)
                .and_then(|n| n.parse().ok())
                .ok_or_else(bad)
        };
        match verb {
            "deliver" => Ok(Step::Deliver(id(rest, 'c')?)),
            "split" => {
                let (c, k) = rest.split_once('@').ok_or_else(bad)?;
                Ok(Step::Split(id(c, 'c')?, k.parse().map_err(|_| bad())?))
            }
            "resp" => Ok(Step::DeliverResp(id(rest, 'r')?)),
            "drop" => match rest.as_bytes().first() {
                Some(b'c') => Ok(Step::DropData(id(rest, 'c')?)),
                Some(b'r') => Ok(Step::DropResp(id(rest, 'r')?)),
                _ => Err(bad()),
            },
            _ => Err(bad()),
        }
    }
}

/// An ordered sequence of steps.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Schedule {
    /// The steps, in execution order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// A schedule over the given steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Schedule { steps }
    }

    /// Renders the schedule, one step per line (with trailing newline),
    /// ignoring-comments-tolerant inverse of [`Schedule::parse`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.render());
            out.push('\n');
        }
        out
    }

    /// Parses a rendered schedule; blank lines and `#` comments are
    /// skipped (corpus files carry provenance headers as comments).
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut steps = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            steps.push(Step::parse(line)?);
        }
        Ok(Schedule { steps })
    }

    /// Stable 64-bit hash of the schedule (content-addressed corpus
    /// file names dedup on this).
    pub fn hash64(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write(self.render().as_bytes());
        h.finish64()
    }

    /// The hash as the 16-hex-digit string used in corpus file names.
    pub fn hash16(&self) -> String {
        format!("{:016x}", self.hash64())
    }

    /// How many times a packet entered the switch pipeline under this
    /// schedule ([`Step::Deliver`] + [`Step::Split`]) — the length
    /// metric compared against hand-written witnesses, which count
    /// `process()` calls.
    pub fn deliveries(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Deliver(_) | Step::Split(..)))
            .count()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let s = Schedule::new(vec![
            Step::Deliver(0),
            Step::Split(1, 3),
            Step::Resume,
            Step::Tick,
            Step::Deliver(2),
            Step::DropData(3),
            Step::DeliverResp(0),
            Step::DropResp(1),
        ]);
        let text = s.render();
        assert_eq!(Schedule::parse(&text).unwrap(), s);
        // Comments and blank lines are tolerated.
        let annotated = format!("# witness for tally\n\n{text}# end\n");
        assert_eq!(Schedule::parse(&annotated).unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("deliver x1").is_err());
        assert!(Schedule::parse("split c1").is_err());
        assert!(Schedule::parse("drop q7").is_err());
        assert!(Schedule::parse("frobnicate").is_err());
    }

    #[test]
    fn canonical_step_order_is_declaration_order() {
        let mut steps = vec![
            Step::Tick,
            Step::DropResp(0),
            Step::Resume,
            Step::Deliver(1),
            Step::Deliver(0),
            Step::Split(0, 1),
            Step::DeliverResp(0),
            Step::DropData(0),
        ];
        steps.sort();
        assert_eq!(
            steps,
            vec![
                Step::Deliver(0),
                Step::Deliver(1),
                Step::Split(0, 1),
                Step::Resume,
                Step::DeliverResp(0),
                Step::DropData(0),
                Step::DropResp(0),
                Step::Tick,
            ]
        );
    }

    #[test]
    fn hash_is_stable_and_content_addressed() {
        let a = Schedule::new(vec![Step::Deliver(0), Step::Tick, Step::Deliver(1)]);
        let b = Schedule::parse(&a.render()).unwrap();
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a.hash16().len(), 16);
        let c = Schedule::new(vec![Step::Deliver(1), Step::Tick, Step::Deliver(0)]);
        assert_ne!(a.hash64(), c.hash64());
    }

    #[test]
    fn delivery_count_is_the_witness_length_metric() {
        let s = Schedule::new(vec![
            Step::Deliver(0),
            Step::Tick,
            Step::Split(1, 2),
            Step::Resume,
            Step::DeliverResp(0),
        ]);
        assert_eq!(s.deliveries(), 2);
    }
}
