//! The checker driver: maps lint verdicts to properties + schedule
//! domains, runs exploration, shrinks witnesses, emits certificates.
//!
//! This is the second judge the tentpole wires behind `nclint`: a
//! static verdict (replay hazard, non-atomic RMW, cross-kernel alias,
//! unguarded overflow) becomes a *dynamic* obligation — either the
//! checker finds a schedule that actually exhibits the hazard (a
//! machine-found, shrunk, replayable counterexample) or it proves the
//! hazard absent within stated bounds (a certificate). Static analysis
//! says "this could go wrong"; the checker answers "here is how" or
//! "not within these bounds, it can't".

use crate::cert::Certificate;
use crate::explore::{explore, minimal_witness, ExploreOptions, Property, Reduction, Stats};
use crate::schedule::Schedule;
use crate::system::{Domain, System};
use ncl_ir::lint::LintCode;
use std::collections::BTreeSet;

/// The property class a check instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PropertyKind {
    /// Terminal observation ∈ {loss-free serial executions}.
    Serializable,
    /// Terminal observation == the canonical delivery order's.
    OrderInvariant,
    /// No watched cell ever strictly decreases.
    NoRegression,
}

impl PropertyKind {
    /// Stable property name (certificates, reports).
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Serializable => "serializable",
            PropertyKind::OrderInvariant => "order-invariant",
            PropertyKind::NoRegression => "no-regression",
        }
    }
}

/// The schedule-domain plan for one lint code: which property the
/// verdict asserts, quantified over which fault classes. `None` means
/// the code is not schedule-checkable ([`LintCode::schedule_checkable`]
/// must agree — `resource-overrun` is about table capacity, not
/// schedules).
pub fn plan_for(code: LintCode) -> Option<(PropertyKind, Domain)> {
    match code {
        LintCode::ReplayUnsafe | LintCode::ReplayUnsafeNoFilter => {
            Some((PropertyKind::Serializable, Domain::DUP_DROP))
        }
        LintCode::NonAtomicRmw => Some((PropertyKind::Serializable, Domain::SPLIT_ONLY)),
        LintCode::CrossKernelAlias => Some((PropertyKind::OrderInvariant, Domain::ORDER_ONLY)),
        LintCode::UnguardedOverflow => Some((PropertyKind::NoRegression, Domain::ORDER_ONLY)),
        LintCode::ResourceOverrun => None,
    }
}

/// One model-checking obligation: a property over a scenario.
#[derive(Clone, Debug)]
pub struct Check {
    /// The lint code being judged, or `None` for whole-program
    /// convergence.
    pub code: Option<LintCode>,
    /// Kernel (or kernel set) label for reports.
    pub kernel: String,
    /// Property class.
    pub kind: PropertyKind,
    /// Fault classes quantified over.
    pub domain: Domain,
    /// Register arrays to watch for regression
    /// ([`PropertyKind::NoRegression`] only).
    pub watch: Vec<String>,
}

impl Check {
    /// The obligation for a lint verdict, or `None` when the code is
    /// not schedule-checkable.
    pub fn for_lint(code: LintCode, kernel: &str, watch: Vec<String>) -> Option<Check> {
        let (kind, domain) = plan_for(code)?;
        Some(Check {
            code: Some(code),
            kernel: kernel.to_string(),
            kind,
            domain,
            watch,
        })
    }

    /// The whole-program convergence obligation: under loss,
    /// duplication, reordering and stage splits, every complete
    /// execution must land in a loss-free serial state.
    pub fn convergence(kernels: &str) -> Check {
        Check {
            code: None,
            kernel: kernels.to_string(),
            kind: PropertyKind::Serializable,
            domain: Domain::FULL,
            watch: Vec::new(),
        }
    }

    /// Property name for reports (`convergence` when not tied to a
    /// lint code).
    pub fn property_name(&self) -> &'static str {
        if self.code.is_none() {
            "convergence"
        } else {
            self.kind.name()
        }
    }
}

/// A shrunk, replayable counterexample.
#[derive(Clone, Debug)]
pub struct WitnessReport {
    /// The canonical minimal violating schedule.
    pub schedule: Schedule,
    /// Pipeline entries in the schedule (the length metric compared
    /// against hand-written witnesses).
    pub deliveries: usize,
    /// Observable state the schedule ends in.
    pub got: Vec<u64>,
    /// The serial reference observations the property allowed (empty
    /// for `no-regression`).
    pub expected: Vec<Vec<u64>>,
}

/// The verdict of one check.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The hazard is real: a minimal schedule exhibiting it.
    Witness(WitnessReport),
    /// The hazard is absent within the stated bounds.
    Certificate(Certificate),
    /// The state cap was hit before the space was covered; neither a
    /// witness nor a certificate.
    Inconclusive {
        /// States visited before truncation.
        states: u64,
    },
}

impl Outcome {
    /// Whether this outcome is a counterexample.
    pub fn is_witness(&self) -> bool {
        matches!(self, Outcome::Witness(_))
    }

    /// Whether this outcome is a bounded-absence certificate.
    pub fn is_certificate(&self) -> bool {
        matches!(self, Outcome::Certificate(_))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self {
            Outcome::Witness(w) => format!(
                "WITNESS ({} steps, {} deliveries)",
                w.schedule.len(),
                w.deliveries
            ),
            Outcome::Certificate(c) => format!(
                "certified absent within bounds ({} states, {} schedules)",
                c.stats.states, c.stats.schedules
            ),
            Outcome::Inconclusive { states } => {
                format!("inconclusive (state cap hit after {states} states)")
            }
        }
    }
}

/// The result of running one check.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Verdict.
    pub outcome: Outcome,
    /// Exploration counters (the discovery run's, not the shrink's).
    pub stats: Stats,
}

/// Runs one check over a prepared system.
///
/// The scenario (windows, control-register values, watch arrays) must
/// already be encoded in `sys`; this drives reference computation,
/// exploration, shrinking and certification.
pub fn run_check(
    sys: &mut System,
    program: &str,
    check: &Check,
    reduction: Reduction,
    order_seed: Option<u64>,
) -> CheckResult {
    if !check.watch.is_empty() {
        sys.watch(&check.watch);
    }
    let (property, refs) = build_property(sys, check);
    let exploration = explore(
        sys,
        check.domain,
        &property,
        ExploreOptions {
            reduction,
            order_seed,
            stop_at_first: true,
        },
    );
    let outcome = if exploration.witness.is_some() {
        // Shrink to the canonical minimal schedule; the discovery
        // witness is only evidence that one exists.
        match minimal_witness(sys, check.domain, &property) {
            Some(schedule) => {
                let init = sys.initial();
                let final_state = sys.exec_all(&init, &schedule);
                Outcome::Witness(WitnessReport {
                    deliveries: schedule.deliveries(),
                    got: sys.observe(&final_state),
                    expected: refs.clone(),
                    schedule,
                })
            }
            // The DFS found a witness but BFS hit the cap before
            // reproducing one: report honestly rather than emit a
            // non-canonical schedule.
            None => Outcome::Inconclusive {
                states: exploration.stats.states,
            },
        }
    } else if exploration.complete {
        Outcome::Certificate(Certificate {
            program: program.to_string(),
            code: check.code.map(|c| c.name().to_string()),
            kernel: check.kernel.clone(),
            property: check.property_name().to_string(),
            windows: sys.windows().len(),
            bounds: sys.bounds(),
            reduction: reduction.name(),
            stats: exploration.stats,
            serial_states: refs.len(),
        })
    } else {
        Outcome::Inconclusive {
            states: exploration.stats.states,
        }
    };
    CheckResult {
        outcome,
        stats: exploration.stats,
    }
}

/// Builds the concrete property (computing serial references where the
/// kind needs them) and returns the reference list for reporting.
fn build_property(sys: &mut System, check: &Check) -> (Property, Vec<Vec<u64>>) {
    match check.kind {
        PropertyKind::NoRegression => (Property::NoRegression, Vec::new()),
        PropertyKind::Serializable => {
            let refs = sys.serial_references();
            let set: BTreeSet<Vec<u64>> = refs.iter().cloned().collect();
            (Property::InSet(set), refs)
        }
        PropertyKind::OrderInvariant => {
            let refs = sys.serial_references();
            let canonical = refs.first().cloned().unwrap_or_default();
            (Property::Equals(canonical.clone()), vec![canonical])
        }
    }
}

/// Replays a schedule against a prepared system and reports whether it
/// violates the check's property — corpus regression: a committed
/// counterexample must keep failing on the kernel it was minted
/// against.
pub fn replay_violates(sys: &mut System, check: &Check, schedule: &Schedule) -> bool {
    if !check.watch.is_empty() {
        sys.watch(&check.watch);
    }
    let (property, _) = build_property(sys, check);
    let init = sys.initial();
    let st = sys.exec_all(&init, schedule);
    property.violated(sys, &st, check.domain)
}

/// The corpus file name for a shrunk witness:
/// `<code>__<kernel>__<hash16>.schedule`. The hash covers the schedule
/// body only (not provenance comments), so re-discovered duplicates of
/// the same schedule dedup to the same file name.
pub fn corpus_file_name(code: Option<LintCode>, kernel: &str, schedule: &Schedule) -> String {
    let code = code.map(|c| c.name().to_string());
    format!(
        "{}__{}__{}.schedule",
        code.as_deref().unwrap_or("convergence"),
        kernel,
        schedule.hash16()
    )
}

/// Renders a corpus entry: provenance header (comments, ignored by the
/// parser and the schedule hash) + the schedule body.
pub fn corpus_entry(
    program: &str,
    code: Option<LintCode>,
    kernel: &str,
    property: &str,
    w: &WitnessReport,
) -> String {
    let code = code.map(|c| c.name().to_string());
    format!(
        "# ncmc counterexample: {} on kernel {} (program {})\n\
         # property: {}; deliveries: {}; schedule hash: {}\n\
         {}",
        code.as_deref().unwrap_or("convergence"),
        kernel,
        program,
        property,
        w.deliveries,
        w.schedule.hash16(),
        w.schedule.render()
    )
}
