//! Schedule-space exploration: bounded DFS with optional state dedup
//! and sleep-set DPOR, plus the canonical BFS used to shrink witnesses.
//!
//! ## Reductions
//!
//! * [`Reduction::Naive`] — exhaustive enumeration of every schedule in
//!   the domain. Ground truth (and the baseline E15 measures prune
//!   ratios against), exponential in interleavings.
//! * [`Reduction::Dedup`] — prunes re-entry into states already visited
//!   (keyed by [`crate::System::hash`]). Sound because the system is
//!   deterministic: the subtree below a state depends only on the state.
//! * [`Reduction::Dpor`] — dedup plus sleep-set partial-order
//!   reduction with *dynamic* commutation: two steps are independent at
//!   a state iff executing them in both orders is possible and lands in
//!   the identical full-state hash. Sleep sets carry already-explored
//!   steps into sibling branches so commuting permutations are explored
//!   once. Soundness note: a visited entry records the sleep set it was
//!   explored under, and a revisit is only pruned when some recorded
//!   sleep set is a **subset** of the current one (the prior visit
//!   explored a superset of the successors this visit would).
//!
//! All three must — and, by the identity tests in this crate, do —
//! agree on the verdict and on the set of reachable terminal
//! observations.

use crate::schedule::{Schedule, Step};
use crate::system::{Domain, SysState, System};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// How aggressively exploration prunes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reduction {
    /// Every schedule, no pruning.
    Naive,
    /// Visited-state dedup.
    Dedup,
    /// Dedup + sleep-set DPOR with dynamic commutation.
    Dpor,
}

impl Reduction {
    /// Stable lowercase name (certificates, metrics).
    pub fn name(self) -> &'static str {
        match self {
            Reduction::Naive => "naive",
            Reduction::Dedup => "dedup",
            Reduction::Dpor => "dpor",
        }
    }
}

/// The property a schedule domain is checked against.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Property {
    /// Every complete terminal observation must be one of these (the
    /// serial reference set — "serializability" of the fault domain).
    InSet(BTreeSet<Vec<u64>>),
    /// Every complete terminal observation must equal this one (order
    /// invariance: all orders must agree with the canonical order).
    Equals(Vec<u64>),
    /// No watched register cell may ever strictly decrease (monotonic
    /// accumulators; a decrease is an unguarded wrap).
    NoRegression,
}

impl Property {
    /// Whether `st` violates the property (for terminal-style
    /// properties this is only meaningful — and only true — when `st`
    /// is terminal and complete).
    pub fn violated(&self, sys: &System, st: &SysState, domain: Domain) -> bool {
        match self {
            Property::NoRegression => st.regressed,
            Property::InSet(refs) => {
                sys.terminal(st, domain) && sys.complete(st) && !refs.contains(&sys.observe(st))
            }
            Property::Equals(target) => {
                sys.terminal(st, domain) && sys.complete(st) && sys.observe(st) != *target
            }
        }
    }

    fn any_state(&self) -> bool {
        matches!(self, Property::NoRegression)
    }
}

/// Exploration counters. These are the honesty data of a certificate:
/// how much of the space was actually walked, and how much each
/// reduction saved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// DFS node entries.
    pub states: u64,
    /// Steps executed along explored paths (excludes commutation
    /// probes).
    pub edges: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Maximal schedules enumerated (every path that ran to a terminal
    /// or was cut by dedup counts the work actually done; this counts
    /// completed ones).
    pub schedules: u64,
    /// Branches cut by the visited set.
    pub dedup_hits: u64,
    /// Steps skipped because they were in the sleep set.
    pub sleep_skips: u64,
    /// Step executions spent probing commutation (DPOR only).
    pub probe_execs: u64,
}

/// Exploration options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreOptions {
    /// Pruning mode.
    pub reduction: Reduction,
    /// When set, the DFS visits enabled steps in a deterministic
    /// pseudo-random order derived from this seed instead of canonical
    /// order. Verdicts and shrunk witnesses must not depend on it —
    /// that is exactly what the shrink-determinism proptest checks.
    pub order_seed: Option<u64>,
    /// Stop as soon as one violation is found (the checker then shrinks
    /// it with [`minimal_witness`]); `false` explores the entire
    /// bounded space regardless.
    pub stop_at_first: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            reduction: Reduction::Dpor,
            order_seed: None,
            stop_at_first: true,
        }
    }
}

/// The result of one exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// A violating schedule, if any was found (not necessarily
    /// minimal — shrink with [`minimal_witness`]).
    pub witness: Option<Schedule>,
    /// All complete terminal observations reached.
    pub terminal_obs: BTreeSet<Vec<u64>>,
    /// Counters.
    pub stats: Stats,
    /// `true` when the bounded space was fully explored (no state-cap
    /// truncation); only then is the absence of a witness a
    /// certificate.
    pub complete: bool,
}

struct Explorer<'a> {
    sys: &'a mut System,
    domain: Domain,
    property: &'a Property,
    opts: ExploreOptions,
    max_states: usize,
    /// State hash → sleep sets it has been explored under.
    visited: HashMap<u128, Vec<BTreeSet<Step>>>,
    /// `(state hash, step, step)` → commutes?
    indep: HashMap<(u128, Step, Step), bool>,
    witness: Option<Schedule>,
    terminal_obs: BTreeSet<Vec<u64>>,
    stats: Stats,
    truncated: bool,
    rng: SplitMix,
}

/// Explores the bounded schedule space of `sys` under `domain`,
/// checking `property`.
pub fn explore(
    sys: &mut System,
    domain: Domain,
    property: &Property,
    opts: ExploreOptions,
) -> Exploration {
    let max_states = sys.bounds().max_states;
    let init = sys.initial();
    let mut ex = Explorer {
        sys,
        domain,
        property,
        opts,
        max_states,
        visited: HashMap::new(),
        indep: HashMap::new(),
        witness: None,
        terminal_obs: BTreeSet::new(),
        stats: Stats::default(),
        truncated: false,
        rng: SplitMix::new(opts.order_seed.unwrap_or(0)),
    };
    if opts.reduction != Reduction::Naive {
        ex.visited.insert(ex.sys.hash(&init), vec![BTreeSet::new()]);
    }
    let mut path = Vec::new();
    ex.dfs(&init, BTreeSet::new(), &mut path);
    Exploration {
        witness: ex.witness,
        terminal_obs: ex.terminal_obs,
        stats: ex.stats,
        complete: !ex.truncated,
    }
}

impl Explorer<'_> {
    fn done(&self) -> bool {
        self.truncated || (self.opts.stop_at_first && self.witness.is_some())
    }

    fn record_witness(&mut self, path: &[Step]) {
        if self.witness.is_none() {
            self.witness = Some(Schedule::new(path.to_vec()));
        }
    }

    fn dfs(&mut self, st: &SysState, sleep: BTreeSet<Step>, path: &mut Vec<Step>) {
        if self.done() {
            return;
        }
        self.stats.states += 1;
        if self.visited.len() >= self.max_states || self.stats.states as usize >= self.max_states {
            self.truncated = true;
            return;
        }
        if self.property.any_state() && self.property.violated(self.sys, st, self.domain) {
            self.record_witness(path);
            return;
        }
        let enabled = self.sys.enabled(st, self.domain);
        if enabled.is_empty() {
            self.stats.terminals += 1;
            self.stats.schedules += 1;
            if self.sys.complete(st) {
                self.terminal_obs.insert(self.sys.observe(st));
            }
            if self.property.violated(self.sys, st, self.domain) {
                self.record_witness(path);
            }
            return;
        }
        let mut order = enabled.clone();
        if self.opts.order_seed.is_some() {
            let salt = self.rng.next();
            shuffle(&mut order, salt);
        }
        let dpor = self.opts.reduction == Reduction::Dpor;
        let st_hash = if dpor { Some(self.sys.hash(st)) } else { None };
        let mut done_steps: Vec<Step> = Vec::new();
        for &a in &order {
            if self.done() {
                return;
            }
            if dpor && sleep.contains(&a) {
                self.stats.sleep_skips += 1;
                continue;
            }
            let next = self.sys.exec(st, a);
            self.stats.edges += 1;
            let child_sleep = if dpor {
                let h = st_hash.expect("hash computed for dpor");
                let mut cs = BTreeSet::new();
                for x in sleep.iter().chain(done_steps.iter()).copied() {
                    if x != a && enabled.contains(&x) && self.independent(st, h, x, a) {
                        cs.insert(x);
                    }
                }
                cs
            } else {
                BTreeSet::new()
            };
            if self.opts.reduction != Reduction::Naive {
                let h = self.sys.hash(&next);
                let records = self.visited.entry(h).or_default();
                if records.iter().any(|r| r.is_subset(&child_sleep)) {
                    self.stats.dedup_hits += 1;
                    done_steps.push(a);
                    continue;
                }
                records.push(child_sleep.clone());
            }
            path.push(a);
            self.dfs(&next, child_sleep, path);
            path.pop();
            done_steps.push(a);
        }
    }

    /// Dynamic commutation: `x` and `y` are independent at `st` iff
    /// both orders are executable and land in the same full-state hash.
    /// Memoized on `(state hash, x, y)`.
    fn independent(&mut self, st: &SysState, st_hash: u128, x: Step, y: Step) -> bool {
        let key = (st_hash, x.min(y), x.max(y));
        if let Some(&v) = self.indep.get(&key) {
            return v;
        }
        let v = self.probe_commutation(st, key.1, key.2);
        self.indep.insert(key, v);
        v
    }

    fn probe_commutation(&mut self, st: &SysState, x: Step, y: Step) -> bool {
        let sx = self.sys.exec(st, x);
        self.stats.probe_execs += 1;
        if !self.sys.enabled(&sx, self.domain).contains(&y) {
            return false;
        }
        let sy = self.sys.exec(st, y);
        self.stats.probe_execs += 1;
        if !self.sys.enabled(&sy, self.domain).contains(&x) {
            return false;
        }
        let sxy = self.sys.exec(&sx, y);
        let syx = self.sys.exec(&sy, x);
        self.stats.probe_execs += 2;
        self.sys.hash(&sxy) == self.sys.hash(&syx)
    }
}

/// The canonical minimal witness: the lexicographically smallest (in
/// [`Step`] order) among the shortest violating schedules, found by BFS
/// over the deduped state graph expanding successors in canonical
/// order. Deterministic by construction — it never depends on how the
/// witness was originally discovered, which is what makes shrunk
/// corpus entries byte-stable.
pub fn minimal_witness(sys: &mut System, domain: Domain, property: &Property) -> Option<Schedule> {
    let max_states = sys.bounds().max_states;
    let init = sys.initial();
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(sys.hash(&init));
    let mut queue: VecDeque<(SysState, Vec<Step>)> = VecDeque::new();
    queue.push_back((init, Vec::new()));
    while let Some((st, path)) = queue.pop_front() {
        if property.violated(sys, &st, domain) {
            return Some(Schedule::new(path));
        }
        if seen.len() >= max_states {
            return None;
        }
        for a in sys.enabled(&st, domain) {
            let next = sys.exec(&st, a);
            if seen.insert(sys.hash(&next)) {
                let mut p = path.clone();
                p.push(a);
                queue.push_back((next, p));
            }
        }
    }
    None
}

/// SplitMix64 — the crate-local deterministic stream used only to
/// permute exploration order in the shrink-determinism tests.
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn shuffle(xs: &mut [Step], seed: u64) {
    let mut rng = SplitMix::new(seed);
    for i in (1..xs.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}
