//! The chip resource model.
//!
//! A behavioural stand-in for the constraints a Tofino-class backend
//! enforces (paper §5: "the PHV size depends on the VLIW length, which
//! may be too small for a given kernel", "chip constraints are not
//! publicly available" — ours are, right here). `ncl-p4` allocates
//! stages against this model and the pipeline validates against it at
//! load time, playing the role of the proprietary P4 backend's
//! accept/reject step.

use std::fmt;

/// Resource limits of a simulated switch chip.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResourceModel {
    /// Physical match-action stages per pass.
    pub stages: usize,
    /// VLIW ALU ops per stage (across all tables in the stage).
    pub ops_per_stage: usize,
    /// Tables per stage.
    pub tables_per_stage: usize,
    /// PHV budget for header fields, bytes.
    pub phv_header_bytes: usize,
    /// PHV budget for metadata fields, bytes.
    pub phv_metadata_bytes: usize,
    /// Micro-ops (reads + writes) one fused RegisterAction may issue
    /// against its array per pass. A Tofino-style stateful ALU performs
    /// one *access* per pass but evaluates a small predicated
    /// read/modify/write program against it; this bounds that program.
    pub reg_accesses_per_pass: usize,
    /// Maximum recirculation passes (0 = single pass only).
    pub max_recirc: usize,
    /// SRAM bytes per stage for register arrays and exact tables.
    pub sram_bytes_per_stage: usize,
    /// TCAM entries per stage for ternary/LPM tables.
    pub tcam_entries_per_stage: usize,
}

impl Default for ResourceModel {
    /// Defaults roughly shaped after a Tofino-1 profile (documented in
    /// DESIGN.md §4.5).
    fn default() -> Self {
        ResourceModel {
            stages: 12,
            ops_per_stage: 64,
            tables_per_stage: 8,
            phv_header_bytes: 512,
            phv_metadata_bytes: 256,
            reg_accesses_per_pass: 4,
            max_recirc: 4,
            sram_bytes_per_stage: 1 << 20, // 1 MiB
            tcam_entries_per_stage: 2048,
        }
    }
}

impl ResourceModel {
    /// A small test chip (stress recirculation quickly).
    pub fn tiny() -> Self {
        ResourceModel {
            stages: 4,
            ops_per_stage: 8,
            tables_per_stage: 2,
            phv_header_bytes: 64,
            phv_metadata_bytes: 32,
            reg_accesses_per_pass: 2,
            max_recirc: 2,
            sram_bytes_per_stage: 1 << 14,
            tcam_entries_per_stage: 64,
        }
    }

    /// Total usable logical stages including recirculation.
    pub fn logical_stages(&self) -> usize {
        self.stages * (self.max_recirc + 1)
    }
}

/// A violated constraint found at pipeline load time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResourceViolation {
    /// More logical stages than the chip can offer even with maximal
    /// recirculation.
    TooManyStages {
        /// Stages required.
        required: usize,
        /// Stages available (including recirculation).
        available: usize,
    },
    /// A stage packs more ALU ops than the VLIW width.
    OpsPerStage {
        /// Stage index.
        stage: usize,
        /// Ops found.
        found: usize,
        /// Budget.
        budget: usize,
    },
    /// A stage holds too many tables.
    TablesPerStage {
        /// Stage index.
        stage: usize,
        /// Tables found.
        found: usize,
        /// Budget.
        budget: usize,
    },
    /// Header PHV overflow.
    PhvHeader {
        /// Bytes used.
        used: usize,
        /// Budget.
        budget: usize,
    },
    /// Metadata PHV overflow.
    PhvMetadata {
        /// Bytes used.
        used: usize,
        /// Budget.
        budget: usize,
    },
    /// A register array is accessed from more than one stage per pass.
    RegisterMultiStage {
        /// Array name.
        array: String,
        /// Stages (within one pass) that touch it.
        stages: Vec<usize>,
    },
    /// A register array's fused RegisterAction issues more micro-ops
    /// than the stateful ALU supports.
    RegisterAccesses {
        /// Array name.
        array: String,
        /// Micro-ops found in one stage.
        found: usize,
        /// Budget.
        budget: usize,
    },
    /// A stage's register arrays overflow its SRAM.
    SramPerStage {
        /// Stage index.
        stage: usize,
        /// Bytes required.
        used: usize,
        /// Budget.
        budget: usize,
    },
    /// A stage's ternary entries overflow its TCAM.
    TcamPerStage {
        /// Stage index.
        stage: usize,
        /// Entries required.
        used: usize,
        /// Budget.
        budget: usize,
    },
}

impl fmt::Display for ResourceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceViolation::TooManyStages {
                required,
                available,
            } => write!(
                f,
                "program needs {required} stages but the chip offers {available} \
                 (including recirculation)"
            ),
            ResourceViolation::OpsPerStage {
                stage,
                found,
                budget,
            } => write!(
                f,
                "stage {stage}: {found} VLIW ops exceed the budget of {budget}"
            ),
            ResourceViolation::TablesPerStage {
                stage,
                found,
                budget,
            } => write!(
                f,
                "stage {stage}: {found} tables exceed the budget of {budget}"
            ),
            ResourceViolation::PhvHeader { used, budget } => {
                write!(f, "header PHV needs {used} bytes, budget {budget}")
            }
            ResourceViolation::PhvMetadata { used, budget } => {
                write!(f, "metadata PHV needs {used} bytes, budget {budget}")
            }
            ResourceViolation::RegisterMultiStage { array, stages } => write!(
                f,
                "register array '{array}' accessed from stages {stages:?} in one pass; \
                 arrays bind to a single stage"
            ),
            ResourceViolation::RegisterAccesses {
                array,
                found,
                budget,
            } => write!(
                f,
                "register array '{array}': {found} stateful micro-ops in one stage, budget {budget}"
            ),
            ResourceViolation::SramPerStage {
                stage,
                used,
                budget,
            } => write!(f, "stage {stage}: SRAM {used} bytes exceeds {budget}"),
            ResourceViolation::TcamPerStage {
                stage,
                used,
                budget,
            } => write!(f, "stage {stage}: TCAM {used} entries exceeds {budget}"),
        }
    }
}

impl std::error::Error for ResourceViolation {}

/// A full resource-usage report (exercised by E6).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ResourceReport {
    /// Logical stages used.
    pub stages_used: usize,
    /// Recirculation passes required.
    pub recirc_passes: usize,
    /// Ops per stage.
    pub ops_by_stage: Vec<usize>,
    /// Tables per stage.
    pub tables_by_stage: Vec<usize>,
    /// Header PHV bytes.
    pub phv_header_bytes: usize,
    /// Metadata PHV bytes.
    pub phv_metadata_bytes: usize,
    /// Violations (empty = accepted).
    pub violations: Vec<ResourceViolation>,
}

impl ResourceReport {
    /// Whether the program fits the chip.
    pub fn accepted(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let m = ResourceModel::default();
        assert_eq!(m.logical_stages(), 12 * 5);
        assert!(m.ops_per_stage >= 32);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = ResourceModel::tiny();
        let d = ResourceModel::default();
        assert!(t.stages < d.stages);
        assert!(t.logical_stages() < d.logical_stages());
    }

    #[test]
    fn violation_messages() {
        let v = ResourceViolation::TooManyStages {
            required: 99,
            available: 60,
        };
        assert!(v.to_string().contains("99"));
        let v = ResourceViolation::RegisterMultiStage {
            array: "accum".into(),
            stages: vec![1, 3],
        };
        assert!(v.to_string().contains("accum"));
    }

    #[test]
    fn report_accepted() {
        let mut r = ResourceReport::default();
        assert!(r.accepted());
        r.violations.push(ResourceViolation::PhvHeader {
            used: 600,
            budget: 512,
        });
        assert!(!r.accepted());
    }
}
