#![warn(missing_docs)]

//! # pisa — a behavioural simulator for protocol-independent switch
//! architectures
//!
//! Models the PISA pipeline of the paper's Fig. 1a: a programmable
//! **parser** extracts packet bytes into the packet header vector
//! ([`Phv`]); a sequence of match-action **stages** processes the PHV —
//! each stage holds match-action tables whose rules (TCAM/SRAM) select
//! VLIW **actions** for the stage's ALUs; actions can modify the PHV and
//! persistent **register arrays**; finally a **deparser** reconstructs
//! the packet.
//!
//! The simulator is behavioural (per-packet, not cycle-accurate) but
//! enforces a Tofino-flavoured [resource model](resources::ResourceModel):
//! bounded stage count, per-stage ALU-op and table budgets, PHV size
//! budgets, one stage binding per register array with at most one access
//! per packet pass, and recirculation when a program needs more stages
//! than the chip has.
//!
//! `ncl-p4` compiles NCL kernels into [`PipelineConfig`]s; `netsim`
//! embeds a [`Pipeline`] into each simulated switch. The crate knows
//! nothing about NCL or NCP — it executes whatever configuration it is
//! given, exactly like a switch runs whatever `switch.bin` it is flashed
//! with.

pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod resources;
pub mod table;

pub use parser::{DeparserSpec, Extract, ParserSpec};
pub use phv::{FieldClass, FieldDecl, FieldId, Phv, PhvLayout};
pub use pipeline::{
    ExecStats, PartialPacket, Pipeline, PipelineConfig, PipelineSnapshot, RegisterArrayDef,
    StageConfig, StageTrace,
};
pub use resources::{ResourceModel, ResourceReport, ResourceViolation};
pub use table::{ActionDef, ActionRef, Arg, Entry, MatchKind, MatchPattern, PrimOp, TableDef};
