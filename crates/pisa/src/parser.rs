//! Programmable parser and deparser.
//!
//! The parser walks the packet front-to-back, extracting big-endian
//! fields into the PHV. A [`ParserSpec`] has a *common* extraction
//! sequence (the NCP header, say) followed by a per-select-value branch
//! (the paper's packet parser recognizing which kernel's window layout
//! follows). The [`DeparserSpec`] re-serializes header fields in order,
//! reconstructing the packet.

use crate::phv::{FieldId, Phv, PhvLayout};
use c3::Value;
use std::collections::HashMap;

/// One extraction step: the next `ty.size()` bytes become `field`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Extract {
    /// Destination PHV field (its declared type gives the width).
    pub field: FieldId,
}

/// A parser program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ParserSpec {
    /// Extracted for every packet, from offset 0.
    pub common: Vec<Extract>,
    /// Fields that must hold these exact values after the common
    /// extraction (protocol recognition: magic, version). A mismatch
    /// rejects the packet — Fig. 3b's "NCP?" test.
    pub verify: Vec<(FieldId, u64)>,
    /// After the common part, the value of this field selects a branch
    /// (e.g. `ncp.kernel_id`).
    pub select: Option<FieldId>,
    /// Per-select-value extraction sequences.
    pub branches: HashMap<u64, Vec<Extract>>,
}

/// Parse-time errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Packet shorter than the extraction sequence.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The select value has no branch and no default.
    NoBranch {
        /// The unmatched select value.
        value: u64,
    },
    /// A verified field did not hold its required value (not this
    /// protocol).
    NotRecognized {
        /// The failing field.
        field: FieldId,
        /// The value seen.
        value: u64,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { needed, have } => {
                write!(f, "packet truncated: need {needed} bytes, have {have}")
            }
            ParseError::NoBranch { value } => {
                write!(f, "parser has no branch for select value {value}")
            }
            ParseError::NotRecognized { field, value } => {
                write!(f, "field {field:?} holds {value}; protocol not recognized")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl ParserSpec {
    /// Parses a packet into a fresh PHV. Returns the PHV and the number
    /// of bytes consumed (payload beyond the parsed headers is carried
    /// opaque by the embedding).
    pub fn parse(&self, layout: &PhvLayout, packet: &[u8]) -> Result<(Phv, usize), ParseError> {
        let mut phv = layout.empty_phv();
        let mut off = 0usize;
        for ex in &self.common {
            off = extract_one(layout, ex, packet, off, &mut phv)?;
        }
        for &(field, expected) in &self.verify {
            let got = phv.get(field).bits();
            if got != expected {
                return Err(ParseError::NotRecognized { field, value: got });
            }
        }
        if let Some(sel) = self.select {
            let value = phv.get(sel).bits();
            let branch = self
                .branches
                .get(&value)
                .ok_or(ParseError::NoBranch { value })?;
            for ex in branch {
                off = extract_one(layout, ex, packet, off, &mut phv)?;
            }
        }
        Ok((phv, off))
    }
}

fn extract_one(
    layout: &PhvLayout,
    ex: &Extract,
    packet: &[u8],
    off: usize,
    phv: &mut Phv,
) -> Result<usize, ParseError> {
    let ty = layout.decl(ex.field).ty;
    let n = ty.size();
    let end = off + n;
    if end > packet.len() {
        return Err(ParseError::Truncated {
            needed: end,
            have: packet.len(),
        });
    }
    phv.set(ex.field, Value::read_be(ty, &packet[off..end]));
    Ok(end)
}

/// A deparser program: header fields serialized back in order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DeparserSpec {
    /// Emitted for every packet.
    pub common: Vec<FieldId>,
    /// Select field (mirrors the parser).
    pub select: Option<FieldId>,
    /// Per-select-value field sequences.
    pub branches: HashMap<u64, Vec<FieldId>>,
}

impl DeparserSpec {
    /// Serializes the PHV's header fields into packet bytes.
    pub fn deparse(&self, layout: &PhvLayout, phv: &Phv) -> Vec<u8> {
        let mut out = Vec::new();
        for &f in &self.common {
            let v = phv.get(f);
            let mut buf = vec![0u8; layout.decl(f).ty.size()];
            v.write_be(&mut buf);
            out.extend_from_slice(&buf);
        }
        if let Some(sel) = self.select {
            let value = phv.get(sel).bits();
            if let Some(fields) = self.branches.get(&value) {
                for &f in fields {
                    let v = phv.get(f);
                    let mut buf = vec![0u8; layout.decl(f).ty.size()];
                    v.write_be(&mut buf);
                    out.extend_from_slice(&buf);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldClass;
    use c3::ScalarType;

    fn layout3() -> (PhvLayout, FieldId, FieldId, FieldId) {
        let mut l = PhvLayout::default();
        let a = l.add("magic", ScalarType::U16, FieldClass::Header);
        let b = l.add("kid", ScalarType::U16, FieldClass::Header);
        let c = l.add("payload0", ScalarType::U32, FieldClass::Header);
        (l, a, b, c)
    }

    #[test]
    fn parse_deparse_roundtrip() {
        let (l, a, b, c) = layout3();
        let spec = ParserSpec {
            common: vec![Extract { field: a }, Extract { field: b }],
            verify: vec![],
            select: Some(b),
            branches: HashMap::from([(7u64, vec![Extract { field: c }])]),
        };
        let pkt = [0x4E, 0x43, 0x00, 0x07, 0xDE, 0xAD, 0xBE, 0xEF];
        let (phv, used) = spec.parse(&l, &pkt).unwrap();
        assert_eq!(used, 8);
        assert_eq!(phv.get(a).bits(), 0x4E43);
        assert_eq!(phv.get(c).bits(), 0xDEADBEEF);

        let de = DeparserSpec {
            common: vec![a, b],
            select: Some(b),
            branches: HashMap::from([(7u64, vec![c])]),
        };
        assert_eq!(de.deparse(&l, &phv), pkt.to_vec());
    }

    #[test]
    fn truncated_packet_rejected() {
        let (l, a, ..) = layout3();
        let spec = ParserSpec {
            common: vec![Extract { field: a }],
            verify: vec![],
            select: None,
            branches: HashMap::new(),
        };
        assert_eq!(
            spec.parse(&l, &[0x4E]),
            Err(ParseError::Truncated { needed: 2, have: 1 })
        );
    }

    #[test]
    fn unknown_select_value_rejected() {
        let (l, a, b, _) = layout3();
        let spec = ParserSpec {
            common: vec![Extract { field: a }, Extract { field: b }],
            verify: vec![],
            select: Some(b),
            branches: HashMap::new(),
        };
        let pkt = [0, 0, 0, 9];
        assert_eq!(spec.parse(&l, &pkt), Err(ParseError::NoBranch { value: 9 }));
    }

    #[test]
    fn verify_rejects_wrong_magic() {
        let (l, a, b, _) = layout3();
        let spec = ParserSpec {
            common: vec![Extract { field: a }, Extract { field: b }],
            verify: vec![(a, 0x4E43)],
            select: None,
            branches: HashMap::new(),
        };
        assert!(spec.parse(&l, &[0x4E, 0x43, 0, 1]).is_ok());
        assert_eq!(
            spec.parse(&l, &[0x11, 0x22, 0, 1]),
            Err(ParseError::NotRecognized {
                field: a,
                value: 0x1122
            })
        );
    }

    #[test]
    fn deparser_without_branch_emits_common_only() {
        let (l, a, b, _) = layout3();
        let de = DeparserSpec {
            common: vec![a],
            select: Some(b),
            branches: HashMap::new(),
        };
        let phv = l.empty_phv();
        assert_eq!(de.deparse(&l, &phv).len(), 2);
    }
}
