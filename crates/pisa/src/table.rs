//! Match-action tables and VLIW action primitives.
//!
//! A [`TableDef`] matches PHV fields against installed [`Entry`]s
//! (exact, ternary, or longest-prefix) and runs the selected
//! [`ActionDef`]: a bundle of [`PrimOp`]s for the stage's ALUs. Entries
//! carry *action data* (the `idx` NetCache stores per key, say) that ops
//! reference through [`Arg::Param`].
//!
//! Compiled NCL control flow arrives **predicated**: ops carry an
//! optional guard field and only execute when the guard is true —
//! branch-free execution, exactly how a PISA compiler flattens an
//! `if`/`else` cascade onto the pipeline.

use crate::phv::{FieldId, Phv};
use c3::{BinOp, ScalarType, UnOp, Value};

/// How a table key field is matched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchKind {
    /// Exact value match (SRAM).
    Exact,
    /// Value/mask match (TCAM); entries are priority-ordered.
    Ternary,
    /// Longest-prefix match (for routing tables).
    Lpm,
}

/// One key pattern within an entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatchPattern {
    /// The value to match.
    pub value: u64,
    /// Mask for ternary (all-ones for exact); for LPM, the prefix mask.
    pub mask: u64,
}

impl MatchPattern {
    /// An exact pattern.
    pub fn exact(value: u64) -> Self {
        MatchPattern {
            value,
            mask: u64::MAX,
        }
    }

    /// A ternary pattern.
    pub fn ternary(value: u64, mask: u64) -> Self {
        MatchPattern { value, mask }
    }

    /// Whether `v` matches.
    pub fn matches(&self, v: u64) -> bool {
        v & self.mask == self.value & self.mask
    }

    /// Prefix length (for LPM ordering).
    pub fn prefix_len(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Reference to an action within a table's action list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ActionRef(pub u16);

/// An installed table entry.
#[derive(Clone, PartialEq, Debug)]
pub struct Entry {
    /// One pattern per key field.
    pub patterns: Vec<MatchPattern>,
    /// The action to run on match.
    pub action: ActionRef,
    /// Action data bound to this entry ([`Arg::Param`] resolves here).
    pub args: Vec<Value>,
    /// Priority for ternary tables (higher wins).
    pub priority: i32,
}

/// An operand of a VLIW primitive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arg {
    /// A PHV field.
    Field(FieldId),
    /// An immediate.
    Const(Value),
    /// Entry action-data slot.
    Param(u8),
}

/// A VLIW primitive executed by a stage ALU.
///
/// Every op carries an optional `guard`: a boolean PHV field that must
/// be true for the op to take effect (predicated execution).
#[derive(Clone, PartialEq, Debug)]
pub enum PrimOp {
    /// `dst = src`.
    Mov {
        /// Guard field (always execute when `None`).
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// Source.
        src: Arg,
    },
    /// `dst = a <op> b` in the destination field's type.
    Alu {
        /// Guard field.
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// ALU operation.
        op: BinOp,
        /// Left operand.
        a: Arg,
        /// Right operand.
        b: Arg,
    },
    /// `dst = <op> a`.
    UnAlu {
        /// Guard field.
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// Unary operation.
        op: UnOp,
        /// Operand.
        a: Arg,
    },
    /// `dst = (ty) a` — container-width conversion.
    Cast {
        /// Guard field.
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// Target type.
        ty: ScalarType,
        /// Operand.
        a: Arg,
    },
    /// `dst = cond ? a : b`.
    Select {
        /// Guard field.
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// Condition.
        cond: Arg,
        /// Value when true.
        a: Arg,
        /// Value when false.
        b: Arg,
    },
    /// Read a register-array element into a PHV field.
    RegRead {
        /// Guard field.
        guard: Option<FieldId>,
        /// Destination PHV field.
        dst: FieldId,
        /// Register array index (into the pipeline's array list).
        reg: u16,
        /// Element index (wraps modulo the array length).
        idx: Arg,
    },
    /// Write a PHV value into a register-array element.
    RegWrite {
        /// Guard field.
        guard: Option<FieldId>,
        /// Register array index.
        reg: u16,
        /// Element index.
        idx: Arg,
        /// Value to write.
        src: Arg,
    },
}

impl PrimOp {
    /// The op's guard, if any.
    pub fn guard(&self) -> Option<FieldId> {
        match self {
            PrimOp::Mov { guard, .. }
            | PrimOp::Alu { guard, .. }
            | PrimOp::UnAlu { guard, .. }
            | PrimOp::Cast { guard, .. }
            | PrimOp::Select { guard, .. }
            | PrimOp::RegRead { guard, .. }
            | PrimOp::RegWrite { guard, .. } => *guard,
        }
    }

    /// The register array the op touches, if any.
    pub fn register(&self) -> Option<u16> {
        match self {
            PrimOp::RegRead { reg, .. } | PrimOp::RegWrite { reg, .. } => Some(*reg),
            _ => None,
        }
    }
}

/// An action: a named bundle of primitives.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ActionDef {
    /// Diagnostic name (appears in emitted P4).
    pub name: String,
    /// The ops, executed in order within the stage.
    pub ops: Vec<PrimOp>,
}

/// A match-action table.
#[derive(Clone, PartialEq, Debug)]
pub struct TableDef {
    /// Diagnostic name (appears in emitted P4).
    pub name: String,
    /// Key fields, matched in order.
    pub keys: Vec<(FieldId, MatchKind)>,
    /// The actions entries can select.
    pub actions: Vec<ActionDef>,
    /// Installed entries (control-plane managed).
    pub entries: Vec<Entry>,
    /// Action run when no entry matches.
    pub default_action: Option<ActionRef>,
    /// Maximum entries (SRAM/TCAM budget for this table).
    pub size: usize,
}

impl TableDef {
    /// A keyless always-run table holding a single action (how compiled
    /// straight-line code is packaged).
    pub fn always(name: impl Into<String>, action: ActionDef) -> Self {
        TableDef {
            name: name.into(),
            keys: vec![],
            actions: vec![action],
            entries: vec![],
            default_action: Some(ActionRef(0)),
            size: 0,
        }
    }

    /// Looks up the entry matching the PHV, honoring match kinds and
    /// priorities. Returns `(action, args)`.
    pub fn lookup(&self, phv: &Phv) -> Option<(ActionRef, &[Value])> {
        if self.keys.is_empty() {
            return self.default_action.map(|a| (a, &[][..]));
        }
        let key_vals: Vec<u64> = self.keys.iter().map(|(f, _)| phv.get(*f).bits()).collect();
        let mut best: Option<(&Entry, i64)> = None;
        for e in &self.entries {
            if e.patterns.len() != key_vals.len() {
                continue;
            }
            let hit = e.patterns.iter().zip(&key_vals).all(|(p, &v)| p.matches(v));
            if !hit {
                continue;
            }
            // Rank: LPM tables prefer longer prefixes, ternary uses the
            // entry priority, exact tables take the first hit.
            let rank = match self.keys.first().map(|(_, k)| *k) {
                Some(MatchKind::Lpm) => e.patterns.iter().map(|p| p.prefix_len() as i64).sum(),
                Some(MatchKind::Ternary) => e.priority as i64,
                _ => return Some((e.action, &e.args)),
            };
            match best {
                Some((_, best_rank)) if best_rank >= rank => {}
                _ => best = Some((e, rank)),
            }
        }
        match best {
            Some((e, _)) => Some((e.action, &e.args)),
            None => self.default_action.map(|a| (a, &[][..])),
        }
    }

    /// Installs an entry (control-plane API). Fails when full.
    pub fn insert(&mut self, entry: Entry) -> Result<(), TableFull> {
        if self.size > 0 && self.entries.len() >= self.size {
            return Err(TableFull {
                table: self.name.clone(),
                size: self.size,
            });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes entries whose patterns equal `patterns` exactly. Returns
    /// how many were removed.
    pub fn remove(&mut self, patterns: &[MatchPattern]) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.patterns != patterns);
        before - self.entries.len()
    }

    /// Total VLIW ops across all actions (stage budget accounting).
    pub fn op_count(&self) -> usize {
        self.actions.iter().map(|a| a.ops.len()).sum()
    }
}

/// Error: table capacity exhausted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableFull {
    /// Table name.
    pub table: String,
    /// Its capacity.
    pub size: usize,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table '{}' is full ({} entries)", self.table, self.size)
    }
}

impl std::error::Error for TableFull {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::{FieldClass, PhvLayout};

    fn layout_with(fields: &[(&str, ScalarType)]) -> PhvLayout {
        let mut l = PhvLayout::default();
        for (n, t) in fields {
            l.add(*n, *t, FieldClass::Header);
        }
        l
    }

    #[test]
    fn exact_match_first_hit() {
        let l = layout_with(&[("k", ScalarType::U32)]);
        let f = l.find("k").unwrap();
        let mut t = TableDef {
            name: "t".into(),
            keys: vec![(f, MatchKind::Exact)],
            actions: vec![ActionDef::default(), ActionDef::default()],
            entries: vec![],
            default_action: Some(ActionRef(0)),
            size: 4,
        };
        t.insert(Entry {
            patterns: vec![MatchPattern::exact(7)],
            action: ActionRef(1),
            args: vec![Value::u32(99)],
            priority: 0,
        })
        .unwrap();
        let mut phv = l.empty_phv();
        phv.set(f, Value::u32(7));
        let (a, args) = t.lookup(&phv).unwrap();
        assert_eq!(a, ActionRef(1));
        assert_eq!(args, &[Value::u32(99)]);
        phv.set(f, Value::u32(8));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(0)); // default
    }

    #[test]
    fn ternary_priority() {
        let l = layout_with(&[("k", ScalarType::U16)]);
        let f = l.find("k").unwrap();
        let t = TableDef {
            name: "t".into(),
            keys: vec![(f, MatchKind::Ternary)],
            actions: vec![
                ActionDef::default(),
                ActionDef::default(),
                ActionDef::default(),
            ],
            entries: vec![
                Entry {
                    patterns: vec![MatchPattern::ternary(0x0100, 0xFF00)],
                    action: ActionRef(1),
                    args: vec![],
                    priority: 1,
                },
                Entry {
                    patterns: vec![MatchPattern::ternary(0x0101, 0xFFFF)],
                    action: ActionRef(2),
                    args: vec![],
                    priority: 10,
                },
            ],
            default_action: Some(ActionRef(0)),
            size: 0,
        };
        let mut phv = l.empty_phv();
        phv.set(f, Value::new(ScalarType::U16, 0x0101));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(2));
        phv.set(f, Value::new(ScalarType::U16, 0x0102));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(1));
        phv.set(f, Value::new(ScalarType::U16, 0x0201));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(0));
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let l = layout_with(&[("dst", ScalarType::U32)]);
        let f = l.find("dst").unwrap();
        let t = TableDef {
            name: "route".into(),
            keys: vec![(f, MatchKind::Lpm)],
            actions: vec![
                ActionDef::default(),
                ActionDef::default(),
                ActionDef::default(),
            ],
            entries: vec![
                Entry {
                    patterns: vec![MatchPattern::ternary(0x0A000000, 0xFF000000)],
                    action: ActionRef(1),
                    args: vec![],
                    priority: 0,
                },
                Entry {
                    patterns: vec![MatchPattern::ternary(0x0A010000, 0xFFFF0000)],
                    action: ActionRef(2),
                    args: vec![],
                    priority: 0,
                },
            ],
            default_action: Some(ActionRef(0)),
            size: 0,
        };
        let mut phv = l.empty_phv();
        phv.set(f, Value::u32(0x0A010203));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(2));
        phv.set(f, Value::u32(0x0A990203));
        assert_eq!(t.lookup(&phv).unwrap().0, ActionRef(1));
    }

    #[test]
    fn table_capacity() {
        let l = layout_with(&[("k", ScalarType::U8)]);
        let f = l.find("k").unwrap();
        let mut t = TableDef {
            name: "tiny".into(),
            keys: vec![(f, MatchKind::Exact)],
            actions: vec![ActionDef::default()],
            entries: vec![],
            default_action: None,
            size: 1,
        };
        t.insert(Entry {
            patterns: vec![MatchPattern::exact(1)],
            action: ActionRef(0),
            args: vec![],
            priority: 0,
        })
        .unwrap();
        assert!(t
            .insert(Entry {
                patterns: vec![MatchPattern::exact(2)],
                action: ActionRef(0),
                args: vec![],
                priority: 0,
            })
            .is_err());
        assert_eq!(t.remove(&[MatchPattern::exact(1)]), 1);
        assert_eq!(t.remove(&[MatchPattern::exact(1)]), 0);
    }

    #[test]
    fn always_table_runs_default() {
        let t = TableDef::always("go", ActionDef::default());
        let l = layout_with(&[]);
        assert_eq!(t.lookup(&l.empty_phv()).unwrap().0, ActionRef(0));
    }

    #[test]
    fn miss_without_default_is_none() {
        let l = layout_with(&[("k", ScalarType::U8)]);
        let f = l.find("k").unwrap();
        let t = TableDef {
            name: "t".into(),
            keys: vec![(f, MatchKind::Exact)],
            actions: vec![],
            entries: vec![],
            default_action: None,
            size: 0,
        };
        assert!(t.lookup(&l.empty_phv()).is_none());
    }
}
