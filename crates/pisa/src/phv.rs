//! The packet header vector (PHV) and its layout.
//!
//! A PHV is the per-packet working set a PISA pipeline computes on:
//! header fields extracted by the parser plus metadata fields (compiler
//! temporaries, intrinsic fields like the forwarding decision). The
//! layout is part of the compiled program; the PHV itself is just the
//! field values for one packet in flight.

use c3::{ScalarType, Value};
use std::fmt;

/// Index of a field in a [`PhvLayout`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Whether a field is parsed from the packet (header) or scratch
/// (metadata). Headers are deparsed back into the packet; metadata is
/// dropped at the deparser. The distinction also drives the PHV size
/// budgets of the resource model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldClass {
    /// Extracted from / deparsed into the packet.
    Header,
    /// Scratch state private to the pipeline traversal.
    Metadata,
}

/// A field declaration in the PHV layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDecl {
    /// Diagnostic name (e.g. `ncp.seq`, `w0_e3`, `meta.pred_1`).
    pub name: String,
    /// Scalar type (determines container width).
    pub ty: ScalarType,
    /// Header or metadata.
    pub class: FieldClass,
}

/// The compiled PHV layout: an ordered list of field declarations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhvLayout {
    /// Field declarations; [`FieldId`] indexes this vector.
    pub fields: Vec<FieldDecl>,
}

impl PhvLayout {
    /// Adds a field, returning its id.
    pub fn add(&mut self, name: impl Into<String>, ty: ScalarType, class: FieldClass) -> FieldId {
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldDecl {
            name: name.into(),
            ty,
            class,
        });
        id
    }

    /// Looks up a field id by name.
    pub fn find(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u16))
    }

    /// The declaration of a field.
    pub fn decl(&self, id: FieldId) -> &FieldDecl {
        &self.fields[id.0 as usize]
    }

    /// Total bytes of header fields (for the PHV budget).
    pub fn header_bytes(&self) -> usize {
        self.fields
            .iter()
            .filter(|f| f.class == FieldClass::Header)
            .map(|f| f.ty.size())
            .sum()
    }

    /// Total bytes of metadata fields.
    pub fn metadata_bytes(&self) -> usize {
        self.fields
            .iter()
            .filter(|f| f.class == FieldClass::Metadata)
            .map(|f| f.ty.size())
            .sum()
    }

    /// A fresh PHV with every field zeroed.
    pub fn empty_phv(&self) -> Phv {
        Phv {
            values: self.fields.iter().map(|f| Value::zero(f.ty)).collect(),
        }
    }
}

/// The per-packet field values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Phv {
    values: Vec<Value>,
}

impl Phv {
    /// Reads a field.
    pub fn get(&self, id: FieldId) -> Value {
        self.values[id.0 as usize]
    }

    /// Writes a field; the value is cast to the field's declared type
    /// (containers truncate, like hardware).
    pub fn set(&mut self, id: FieldId, v: Value) {
        let slot = &mut self.values[id.0 as usize];
        *slot = v.cast(slot.ty());
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the PHV has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_phv_roundtrip() {
        let mut layout = PhvLayout::default();
        let a = layout.add("ncp.seq", ScalarType::U32, FieldClass::Header);
        let b = layout.add("meta.t0", ScalarType::U8, FieldClass::Metadata);
        assert_eq!(layout.find("ncp.seq"), Some(a));
        assert_eq!(layout.find("nope"), None);
        let mut phv = layout.empty_phv();
        assert_eq!(phv.get(a), Value::zero(ScalarType::U32));
        phv.set(a, Value::u32(7));
        phv.set(b, Value::u32(0x1FF)); // truncates into u8
        assert_eq!(phv.get(a), Value::u32(7));
        assert_eq!(phv.get(b).bits(), 0xFF);
    }

    #[test]
    fn byte_accounting() {
        let mut layout = PhvLayout::default();
        layout.add("h1", ScalarType::U32, FieldClass::Header);
        layout.add("h2", ScalarType::U16, FieldClass::Header);
        layout.add("m1", ScalarType::U64, FieldClass::Metadata);
        assert_eq!(layout.header_bytes(), 6);
        assert_eq!(layout.metadata_bytes(), 8);
    }

    #[test]
    fn set_casts_to_declared_type() {
        let mut layout = PhvLayout::default();
        let f = layout.add("b", ScalarType::Bool, FieldClass::Metadata);
        let mut phv = layout.empty_phv();
        phv.set(f, Value::u32(42));
        assert_eq!(phv.get(f), Value::bool(true));
    }
}
