//! The pipeline: configuration, load-time validation, and per-packet
//! execution.
//!
//! A [`PipelineConfig`] is the simulator's analogue of `switch.bin` +
//! `switch.p4info`: PHV layout, parser/deparser programs, the logical
//! stage sequence with its tables, register-array definitions, and the
//! intrinsic metadata fields the embedding reads (forwarding decision,
//! `_pass(label)` target). [`Pipeline::load`] validates the configuration
//! against a [`ResourceModel`] — the accept/reject step the paper
//! delegates to the proprietary P4 backend — and instantiates register
//! state.

use crate::parser::{DeparserSpec, ParserSpec};
use crate::phv::{FieldId, Phv, PhvLayout};
use crate::resources::{ResourceModel, ResourceReport, ResourceViolation};
use crate::table::{Arg, Entry, MatchPattern, PrimOp, TableDef, TableFull};
use c3::{ScalarType, Value};
use std::collections::HashMap;

/// A persistent register array of the pipeline.
#[derive(Clone, PartialEq, Debug)]
pub struct RegisterArrayDef {
    /// Name (control-plane handle and P4 symbol).
    pub name: String,
    /// Element type.
    pub elem: ScalarType,
    /// Element count.
    pub len: usize,
    /// Initial contents (padded with zeros).
    pub init: Vec<Value>,
}

/// One logical match-action stage.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StageConfig {
    /// Tables applied in order within the stage.
    pub tables: Vec<TableDef>,
}

impl StageConfig {
    /// Total VLIW ops across the stage's tables.
    pub fn op_count(&self) -> usize {
        self.tables.iter().map(|t| t.op_count()).sum()
    }
}

/// A loadable pipeline configuration.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PipelineConfig {
    /// Program name.
    pub name: String,
    /// PHV layout.
    pub layout: PhvLayout,
    /// Parser program.
    pub parser: ParserSpec,
    /// Deparser program.
    pub deparser: DeparserSpec,
    /// Logical stages (may exceed the physical count; execution
    /// recirculates).
    pub stages: Vec<StageConfig>,
    /// Register arrays.
    pub registers: Vec<RegisterArrayDef>,
    /// Metadata field holding the forwarding decision code
    /// ([`c3::Forward::code`]).
    pub fwd_code: Option<FieldId>,
    /// Metadata field holding the `_pass(label)` target id.
    pub fwd_label: Option<FieldId>,
}

impl PipelineConfig {
    /// Validates against a resource model, producing a full report.
    pub fn report(&self, model: &ResourceModel) -> ResourceReport {
        let mut report = ResourceReport {
            stages_used: self.stages.len(),
            recirc_passes: self.stages.len().div_ceil(model.stages).saturating_sub(1),
            ops_by_stage: self.stages.iter().map(|s| s.op_count()).collect(),
            tables_by_stage: self.stages.iter().map(|s| s.tables.len()).collect(),
            phv_header_bytes: self.layout.header_bytes(),
            phv_metadata_bytes: self.layout.metadata_bytes(),
            violations: Vec::new(),
        };
        if self.stages.len() > model.logical_stages() {
            report.violations.push(ResourceViolation::TooManyStages {
                required: self.stages.len(),
                available: model.logical_stages(),
            });
        }
        for (i, s) in self.stages.iter().enumerate() {
            let ops = s.op_count();
            if ops > model.ops_per_stage {
                report.violations.push(ResourceViolation::OpsPerStage {
                    stage: i,
                    found: ops,
                    budget: model.ops_per_stage,
                });
            }
            if s.tables.len() > model.tables_per_stage {
                report.violations.push(ResourceViolation::TablesPerStage {
                    stage: i,
                    found: s.tables.len(),
                    budget: model.tables_per_stage,
                });
            }
            let tcam: usize = s
                .tables
                .iter()
                .filter(|t| {
                    t.keys
                        .iter()
                        .any(|(_, k)| !matches!(k, crate::table::MatchKind::Exact))
                })
                .map(|t| t.size.max(t.entries.len()))
                .sum();
            if tcam > model.tcam_entries_per_stage {
                report.violations.push(ResourceViolation::TcamPerStage {
                    stage: i,
                    used: tcam,
                    budget: model.tcam_entries_per_stage,
                });
            }
        }
        if report.phv_header_bytes > model.phv_header_bytes {
            report.violations.push(ResourceViolation::PhvHeader {
                used: report.phv_header_bytes,
                budget: model.phv_header_bytes,
            });
        }
        if report.phv_metadata_bytes > model.phv_metadata_bytes {
            report.violations.push(ResourceViolation::PhvMetadata {
                used: report.phv_metadata_bytes,
                budget: model.phv_metadata_bytes,
            });
        }
        // Register arrays: all accesses to one array must sit in a single
        // logical stage (they fuse into one RegisterAction); the number
        // of reads (and writes) there is bounded per pass.
        let mut touched: HashMap<u16, Vec<usize>> = HashMap::new();
        let mut access_counts: HashMap<u16, (usize, usize)> = HashMap::new();
        for (i, s) in self.stages.iter().enumerate() {
            for t in &s.tables {
                for a in &t.actions {
                    for op in &a.ops {
                        if let Some(r) = op.register() {
                            touched.entry(r).or_default().push(i);
                            let counts = access_counts.entry(r).or_default();
                            match op {
                                PrimOp::RegRead { .. } => counts.0 += 1,
                                PrimOp::RegWrite { .. } => counts.1 += 1,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        for (reg, mut stages) in touched {
            stages.sort_unstable();
            stages.dedup();
            let name = self
                .registers
                .get(reg as usize)
                .map(|r| r.name.clone())
                .unwrap_or_else(|| format!("reg{reg}"));
            if stages.len() > 1 {
                report
                    .violations
                    .push(ResourceViolation::RegisterMultiStage {
                        array: name.clone(),
                        stages,
                    });
            }
            let (reads, writes) = access_counts[&reg];
            let accesses = reads + writes;
            if accesses > model.reg_accesses_per_pass {
                report.violations.push(ResourceViolation::RegisterAccesses {
                    array: name,
                    found: accesses,
                    budget: model.reg_accesses_per_pass,
                });
            }
        }
        // SRAM per physical stage: register arrays bound there plus
        // exact-table entries.
        let mut sram = vec![0usize; model.stages.max(1)];
        for (i, s) in self.stages.iter().enumerate() {
            let phys = i % model.stages.max(1);
            for t in &s.tables {
                for a in &t.actions {
                    for op in &a.ops {
                        if let Some(r) = op.register() {
                            if let Some(def) = self.registers.get(r as usize) {
                                sram[phys] += def.len * def.elem.size();
                            }
                        }
                    }
                }
            }
        }
        for (stage, used) in sram.iter().enumerate() {
            if *used > model.sram_bytes_per_stage {
                report.violations.push(ResourceViolation::SramPerStage {
                    stage,
                    used: *used,
                    budget: model.sram_bytes_per_stage,
                });
            }
        }
        report
    }
}

/// Execution statistics.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Packets processed.
    pub packets: u64,
    /// Total recirculation passes beyond the first.
    pub recirculations: u64,
    /// Parse errors (packet dropped before the pipeline).
    pub parse_errors: u64,
    /// Flat per-table hit counters in `(stage, table)` order; resolve
    /// names through [`Pipeline::table_hits`].
    pub hit_counts: Vec<u64>,
}

/// Output of processing one packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelineOutput {
    /// The deparsed packet bytes (headers; the embedding re-appends any
    /// opaque payload it withheld).
    pub packet: Vec<u8>,
    /// Forwarding decision code ([`c3::Forward::code`]), 0 when the
    /// config declares no intrinsic field.
    pub fwd_code: u8,
    /// `_pass(label)` target id (meaningful when `fwd_code == 4`).
    pub fwd_label: u16,
    /// Passes the packet took through the pipeline (1 = no
    /// recirculation).
    pub passes: usize,
    /// Bytes of the original packet the parser consumed.
    pub parsed_bytes: usize,
}

/// A loaded pipeline: configuration + register state + statistics.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    model: ResourceModel,
    registers: Vec<Vec<Value>>,
    /// Flat table index: names in `(stage, table)` order, parallel to
    /// [`ExecStats::hit_counts`].
    table_names: Vec<String>,
    /// Exec statistics.
    pub stats: ExecStats,
}

/// Load-time rejection: the configuration violates the resource model.
#[derive(Clone, PartialEq, Debug)]
pub struct LoadError {
    /// The full report, including all violations.
    pub report: ResourceReport,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pipeline rejected by the resource model:")?;
        for v in &self.report.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LoadError {}

impl Pipeline {
    /// Validates and loads a configuration.
    pub fn load(config: PipelineConfig, model: ResourceModel) -> Result<Self, LoadError> {
        let report = config.report(&model);
        if !report.accepted() {
            return Err(LoadError { report });
        }
        let registers = config
            .registers
            .iter()
            .map(|r| {
                let mut v = r.init.clone();
                v.resize(r.len, Value::zero(r.elem));
                v
            })
            .collect();
        let table_names: Vec<String> = config
            .stages
            .iter()
            .flat_map(|s| s.tables.iter().map(|t| t.name.clone()))
            .collect();
        let stats = ExecStats {
            hit_counts: vec![0; table_names.len()],
            ..ExecStats::default()
        };
        Ok(Pipeline {
            config,
            model,
            registers,
            table_names,
            stats,
        })
    }

    /// The loaded configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Passes required per packet.
    pub fn passes(&self) -> usize {
        self.config.stages.len().div_ceil(self.model.stages).max(1)
    }

    /// Processes one packet. Returns `None` on a parse error (packet is
    /// not for us — the embedding forwards it unmodified, Fig. 3b).
    pub fn process(&mut self, packet: &[u8]) -> Option<PipelineOutput> {
        let p = self.begin(packet)?;
        Some(self.finish(p))
    }

    /// Parses a packet into a [`PartialPacket`] positioned before stage
    /// 0, without running any stages. Returns `None` on a parse error
    /// (counted, exactly like [`Pipeline::process`]).
    ///
    /// Together with [`Pipeline::advance`] and [`Pipeline::finish`]
    /// this exposes the pipeline as a resumable state machine: a packet
    /// can be left suspended between stages while other packets run to
    /// completion — the interleaving a recirculating packet experiences
    /// on a real RMT chip, and the step granularity the ncmc model
    /// checker schedules.
    pub fn begin(&mut self, packet: &[u8]) -> Option<PartialPacket> {
        match self.config.parser.parse(&self.config.layout, packet) {
            Ok((phv, parsed_bytes)) => Some(PartialPacket {
                phv,
                next_stage: 0,
                parsed_bytes,
            }),
            Err(_) => {
                self.stats.parse_errors += 1;
                None
            }
        }
    }

    /// Runs the suspended packet's stages up to (but excluding) logical
    /// stage `upto`, clamped to the stage count. Already-executed
    /// stages are never re-run.
    pub fn advance(&mut self, p: &mut PartialPacket, upto: usize) {
        let upto = upto.min(self.config.stages.len());
        while p.next_stage < upto {
            let s = p.next_stage;
            self.run_stage(&mut p.phv, s);
            p.next_stage += 1;
        }
    }

    /// Runs any remaining stages and deparses, producing the same
    /// output (and the same statistics) as [`Pipeline::process`] would
    /// have for this packet.
    pub fn finish(&mut self, mut p: PartialPacket) -> PipelineOutput {
        self.advance(&mut p, self.config.stages.len());
        let passes = self.passes();
        self.stats.packets += 1;
        self.stats.recirculations += (passes - 1) as u64;
        let out_packet = self.config.deparser.deparse(&self.config.layout, &p.phv);
        let fwd_code = self
            .config
            .fwd_code
            .map(|f| p.phv.get(f).bits() as u8)
            .unwrap_or(0);
        let fwd_label = self
            .config
            .fwd_label
            .map(|f| p.phv.get(f).bits() as u16)
            .unwrap_or(0);
        PipelineOutput {
            packet: out_packet,
            fwd_code,
            fwd_label,
            passes,
            parsed_bytes: p.parsed_bytes,
        }
    }

    /// Captures the persistent register state (the pipeline's only
    /// cross-packet state; tables are control-plane-owned and stats are
    /// observability, not semantics). The snapshot is the checkpoint
    /// unit of the ncmc model checker: restore it and replay a schedule
    /// and the pipeline is bit-identical.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            registers: self.registers.clone(),
        }
    }

    /// Restores register state captured by [`Pipeline::snapshot`].
    ///
    /// # Panics
    ///
    /// If the snapshot's shape does not match this pipeline's register
    /// arrays (it came from a different configuration).
    pub fn restore(&mut self, snap: &PipelineSnapshot) {
        assert_eq!(
            self.registers.len(),
            snap.registers.len(),
            "snapshot from a different pipeline (array count mismatch)"
        );
        for (ours, theirs) in self.registers.iter_mut().zip(&snap.registers) {
            assert_eq!(
                ours.len(),
                theirs.len(),
                "snapshot from a different pipeline (array length mismatch)"
            );
            ours.copy_from_slice(theirs);
        }
    }

    /// Runs the match-action stages over an already-parsed PHV (used by
    /// differential tests that bypass the parser).
    pub fn run_stages(&mut self, phv: &mut Phv) {
        for stage in 0..self.config.stages.len() {
            self.run_stage(phv, stage);
        }
    }

    /// Logical stage count of the loaded configuration.
    pub fn stage_count(&self) -> usize {
        self.config.stages.len()
    }

    /// Runs a single logical stage over a parsed PHV.
    ///
    /// [`Pipeline::process`] runs every packet to completion, which
    /// over-serializes relative to a real RMT chip: there, a packet
    /// recirculating for its second pass interleaves with fresh
    /// arrivals, and in-flight packets occupy different stages at the
    /// same instant. Stepping stages one at a time lets tests replay
    /// exactly the interleaved schedules the `non-atomic-rmw` lint
    /// reasons about, with each stage remaining atomic (one
    /// RegisterAction pass) as on hardware.
    pub fn run_stage(&mut self, phv: &mut Phv, stage: usize) {
        let mut flat: usize = self.config.stages[..stage]
            .iter()
            .map(|s| s.tables.len())
            .sum();
        for table in &self.config.stages[stage].tables {
            let Some((action, args)) = table.lookup(phv) else {
                flat += 1;
                continue;
            };
            self.stats.hit_counts[flat] += 1;
            flat += 1;
            for op in &table.actions[action.0 as usize].ops {
                exec_op(&self.config.layout, &mut self.registers, op, phv, args);
            }
        }
    }

    /// Processes one packet with a per-stage execution trace — the
    /// debugging aid the paper lists as missing tooling (§6: "NCL would
    /// greatly benefit from external tools for … debugging"). Each
    /// [`StageTrace`] records the tables that hit and every PHV field
    /// the stage changed, by name.
    pub fn process_traced(&mut self, packet: &[u8]) -> Option<(PipelineOutput, Vec<StageTrace>)> {
        let (mut phv, parsed_bytes) = match self.config.parser.parse(&self.config.layout, packet) {
            Ok(r) => r,
            Err(_) => {
                self.stats.parse_errors += 1;
                return None;
            }
        };
        let mut traces = Vec::with_capacity(self.config.stages.len());
        let mut flat = 0usize;
        for (si, stage) in self.config.stages.iter().enumerate() {
            let before = phv.clone();
            let mut hits = Vec::new();
            for table in &stage.tables {
                let Some((action, args)) = table.lookup(&phv) else {
                    flat += 1;
                    continue;
                };
                self.stats.hit_counts[flat] += 1;
                flat += 1;
                hits.push((
                    table.name.clone(),
                    table.actions[action.0 as usize].name.clone(),
                ));
                for op in &table.actions[action.0 as usize].ops {
                    exec_op(&self.config.layout, &mut self.registers, op, &mut phv, args);
                }
            }
            let changed: Vec<(String, Value, Value)> = (0..self.config.layout.fields.len())
                .filter_map(|i| {
                    let f = FieldId(i as u16);
                    let (old, new) = (before.get(f), phv.get(f));
                    (old != new).then(|| (self.config.layout.decl(f).name.clone(), old, new))
                })
                .collect();
            traces.push(StageTrace {
                stage: si,
                hits,
                changed,
            });
        }
        let passes = self.passes();
        self.stats.packets += 1;
        self.stats.recirculations += (passes - 1) as u64;
        let out_packet = self.config.deparser.deparse(&self.config.layout, &phv);
        let fwd_code = self
            .config
            .fwd_code
            .map(|f| phv.get(f).bits() as u8)
            .unwrap_or(0);
        let fwd_label = self
            .config
            .fwd_label
            .map(|f| phv.get(f).bits() as u16)
            .unwrap_or(0);
        Some((
            PipelineOutput {
                packet: out_packet,
                fwd_code,
                fwd_label,
                passes,
                parsed_bytes,
            },
            traces,
        ))
    }

    /// Hit count of a named table (resolves the flat counters).
    pub fn table_hits_for(&self, name: &str) -> u64 {
        self.table_names
            .iter()
            .zip(&self.stats.hit_counts)
            .filter(|(n, _)| n.as_str() == name)
            .map(|(_, &c)| c)
            .sum()
    }

    /// All `(table name, hits)` pairs.
    pub fn table_hits(&self) -> impl Iterator<Item = (&str, u64)> {
        self.table_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.stats.hit_counts.iter().copied())
    }
}

/// A packet suspended between logical stages (see [`Pipeline::begin`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartialPacket {
    phv: Phv,
    next_stage: usize,
    parsed_bytes: usize,
}

impl PartialPacket {
    /// The packet's current PHV (for state hashing / inspection).
    pub fn phv(&self) -> &Phv {
        &self.phv
    }

    /// The next logical stage this packet will execute.
    pub fn next_stage(&self) -> usize {
        self.next_stage
    }
}

/// Persistent register state captured by [`Pipeline::snapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelineSnapshot {
    registers: Vec<Vec<Value>>,
}

impl PipelineSnapshot {
    /// The captured register arrays, in configuration order.
    pub fn registers(&self) -> &[Vec<Value>] {
        &self.registers
    }
}

/// One stage's contribution to a traced packet execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageTrace {
    /// Logical stage index.
    pub stage: usize,
    /// `(table, action)` pairs that fired, in order.
    pub hits: Vec<(String, String)>,
    /// `(field name, before, after)` for every PHV field the stage
    /// changed.
    pub changed: Vec<(String, Value, Value)>,
}

impl std::fmt::Display for StageTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage {}:", self.stage)?;
        for (t, a) in &self.hits {
            write!(f, " {t}→{a}")?;
        }
        for (name, old, new) in &self.changed {
            write!(f, "  {name}: {old} ⇒ {new}")?;
        }
        Ok(())
    }
}

fn arg_value(a: &Arg, phv: &Phv, args: &[Value]) -> Value {
    match a {
        Arg::Field(f) => phv.get(*f),
        Arg::Const(v) => *v,
        Arg::Param(i) => args.get(*i as usize).copied().unwrap_or(Value::u64(0)),
    }
}

fn exec_op(
    layout: &PhvLayout,
    registers: &mut [Vec<Value>],
    op: &PrimOp,
    phv: &mut Phv,
    args: &[Value],
) {
    if let Some(g) = op.guard() {
        if !phv.get(g).is_truthy() {
            return;
        }
    }
    match op {
        PrimOp::Mov { dst, src, .. } => {
            let v = arg_value(src, phv, args);
            phv.set(*dst, v);
        }
        PrimOp::Alu { dst, op, a, b, .. } => {
            let dty = layout.decl(*dst).ty;
            let x = arg_value(a, phv, args);
            let y = arg_value(b, phv, args);
            // Operands are normalized to a common type by the
            // compiler; the ALU computes in the wider operand type
            // and the destination container truncates.
            let common = if x.ty().size() >= y.ty().size() {
                x.ty()
            } else {
                y.ty()
            };
            let r = Value::binop(*op, x.cast(common), y.cast(common));
            phv.set(*dst, r.cast(dty));
        }
        PrimOp::UnAlu { dst, op, a, .. } => {
            let v = arg_value(a, phv, args);
            phv.set(*dst, Value::unop(*op, v));
        }
        PrimOp::Cast { dst, ty, a, .. } => {
            let v = arg_value(a, phv, args);
            phv.set(*dst, v.cast(*ty));
        }
        PrimOp::Select {
            dst, cond, a, b, ..
        } => {
            let c = arg_value(cond, phv, args);
            let v = if c.is_truthy() {
                arg_value(a, phv, args)
            } else {
                arg_value(b, phv, args)
            };
            phv.set(*dst, v);
        }
        PrimOp::RegRead { dst, reg, idx, .. } => {
            let arr = &registers[*reg as usize];
            if arr.is_empty() {
                return;
            }
            let i = arg_value(idx, phv, args).bits() as usize % arr.len();
            let v = arr[i];
            phv.set(*dst, v);
        }
        PrimOp::RegWrite { reg, idx, src, .. } => {
            let v = arg_value(src, phv, args);
            let i_raw = arg_value(idx, phv, args).bits() as usize;
            let arr = &mut registers[*reg as usize];
            if arr.is_empty() {
                return;
            }
            let i = i_raw % arr.len();
            let ty = arr[i].ty();
            arr[i] = v.cast(ty);
        }
    }
}

// ----------------------------------------------------------------------
// Control-plane API (what libncrt's transparent control-plane
// interaction calls into)
// ----------------------------------------------------------------------

impl Pipeline {
    /// Reads a register element (debug/verification).
    pub fn register_read(&self, name: &str, idx: usize) -> Option<Value> {
        let r = self.config.registers.iter().position(|r| r.name == name)?;
        self.registers[r].get(idx).copied()
    }

    /// Writes a register element (control variables use this).
    pub fn register_write(&mut self, name: &str, idx: usize, v: Value) -> bool {
        let Some(r) = self.config.registers.iter().position(|r| r.name == name) else {
            return false;
        };
        let Some(slot) = self.registers[r].get_mut(idx) else {
            return false;
        };
        let ty = slot.ty();
        *slot = v.cast(ty);
        true
    }

    /// Inserts an entry into a named table (map inserts, routing rules).
    pub fn table_insert(&mut self, table: &str, entry: Entry) -> Result<(), TableInsertError> {
        for s in &mut self.config.stages {
            for t in &mut s.tables {
                if t.name == table {
                    return t.insert(entry).map_err(TableInsertError::Full);
                }
            }
        }
        Err(TableInsertError::NoSuchTable(table.to_string()))
    }

    /// Removes entries matching `patterns` from a named table.
    pub fn table_remove(&mut self, table: &str, patterns: &[MatchPattern]) -> usize {
        for s in &mut self.config.stages {
            for t in &mut s.tables {
                if t.name == table {
                    return t.remove(patterns);
                }
            }
        }
        0
    }

    /// Number of entries currently installed in a table.
    pub fn table_len(&self, table: &str) -> Option<usize> {
        for s in &self.config.stages {
            for t in &s.tables {
                if t.name == table {
                    return Some(t.entries.len());
                }
            }
        }
        None
    }
}

/// Control-plane insert failure.
#[derive(Clone, PartialEq, Debug)]
pub enum TableInsertError {
    /// The table rejected the entry.
    Full(TableFull),
    /// No table of that name exists in the pipeline.
    NoSuchTable(String),
}

impl std::fmt::Display for TableInsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableInsertError::Full(e) => write!(f, "{e}"),
            TableInsertError::NoSuchTable(t) => write!(f, "no table named '{t}'"),
        }
    }
}

impl std::error::Error for TableInsertError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Extract;
    use crate::phv::FieldClass;
    use crate::table::{ActionDef, ActionRef, MatchKind};
    use c3::BinOp;

    /// A pipeline that parses one u32, adds a register value, counts the
    /// packet, and deparses.
    fn counter_pipeline() -> PipelineConfig {
        let mut layout = PhvLayout::default();
        let x = layout.add("x", ScalarType::U32, FieldClass::Header);
        let fwd = layout.add("meta.fwd", ScalarType::U8, FieldClass::Metadata);
        let tmp = layout.add("meta.tmp", ScalarType::U32, FieldClass::Metadata);
        let action = ActionDef {
            name: "bump".into(),
            ops: vec![
                PrimOp::RegRead {
                    guard: None,
                    dst: tmp,
                    reg: 0,
                    idx: Arg::Const(Value::u32(0)),
                },
                PrimOp::Alu {
                    guard: None,
                    dst: tmp,
                    op: BinOp::Add,
                    a: Arg::Field(tmp),
                    b: Arg::Field(x),
                },
                PrimOp::RegWrite {
                    guard: None,
                    reg: 0,
                    idx: Arg::Const(Value::u32(0)),
                    src: Arg::Field(tmp),
                },
                PrimOp::Mov {
                    guard: None,
                    dst: x,
                    src: Arg::Field(tmp),
                },
            ],
        };
        PipelineConfig {
            name: "counter".into(),
            parser: ParserSpec {
                common: vec![Extract { field: x }],
                verify: vec![],
                select: None,
                branches: HashMap::new(),
            },
            deparser: DeparserSpec {
                common: vec![x],
                select: None,
                branches: HashMap::new(),
            },
            stages: vec![StageConfig {
                tables: vec![TableDef::always("bump", action)],
            }],
            registers: vec![RegisterArrayDef {
                name: "total".into(),
                elem: ScalarType::U32,
                len: 1,
                init: vec![],
            }],
            fwd_code: Some(fwd),
            fwd_label: None,
            layout,
        }
    }

    #[test]
    fn packet_flows_and_registers_persist() {
        let mut p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        let out1 = p.process(&5u32.to_be_bytes()).unwrap();
        assert_eq!(out1.packet, 5u32.to_be_bytes());
        let out2 = p.process(&7u32.to_be_bytes()).unwrap();
        assert_eq!(out2.packet, 12u32.to_be_bytes());
        assert_eq!(p.register_read("total", 0), Some(Value::u32(12)));
        assert_eq!(p.stats.packets, 2);
        assert_eq!(p.table_hits_for("bump"), 2);
    }

    #[test]
    fn parse_error_counted_not_processed() {
        let mut p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        assert!(p.process(&[1, 2]).is_none());
        assert_eq!(p.stats.parse_errors, 1);
        assert_eq!(p.stats.packets, 0);
    }

    #[test]
    fn guarded_op_skipped() {
        let mut layout = PhvLayout::default();
        let x = layout.add("x", ScalarType::U32, FieldClass::Header);
        let g = layout.add("g", ScalarType::Bool, FieldClass::Metadata);
        let action = ActionDef {
            name: "maybe".into(),
            ops: vec![PrimOp::Mov {
                guard: Some(g),
                dst: x,
                src: Arg::Const(Value::u32(99)),
            }],
        };
        let cfg = PipelineConfig {
            name: "t".into(),
            parser: ParserSpec {
                common: vec![Extract { field: x }],
                verify: vec![],
                select: None,
                branches: HashMap::new(),
            },
            deparser: DeparserSpec {
                common: vec![x],
                select: None,
                branches: HashMap::new(),
            },
            stages: vec![StageConfig {
                tables: vec![TableDef::always("maybe", action)],
            }],
            registers: vec![],
            fwd_code: None,
            fwd_label: None,
            layout,
        };
        let mut p = Pipeline::load(cfg, ResourceModel::default()).unwrap();
        // Guard is false (metadata zero-initialized) — x unchanged.
        let out = p.process(&3u32.to_be_bytes()).unwrap();
        assert_eq!(out.packet, 3u32.to_be_bytes());
    }

    #[test]
    fn load_rejects_oversized_program() {
        let mut cfg = counter_pipeline();
        // Blow the stage budget.
        let model = ResourceModel::tiny();
        for _ in 0..(model.logical_stages() + 1) {
            cfg.stages.push(StageConfig::default());
        }
        let err = Pipeline::load(cfg, model).unwrap_err();
        assert!(matches!(
            err.report.violations.first(),
            Some(ResourceViolation::TooManyStages { .. })
        ));
    }

    #[test]
    fn register_multi_stage_rejected() {
        let mut cfg = counter_pipeline();
        // Duplicate the stage: the same register now accessed in two
        // stages.
        let dup = cfg.stages[0].clone();
        cfg.stages.push(dup);
        let err = Pipeline::load(cfg, ResourceModel::default()).unwrap_err();
        assert!(err
            .report
            .violations
            .iter()
            .any(|v| matches!(v, ResourceViolation::RegisterMultiStage { .. })));
    }

    #[test]
    fn control_plane_table_ops() {
        let mut layout = PhvLayout::default();
        let k = layout.add("k", ScalarType::U16, FieldClass::Header);
        let cfg = PipelineConfig {
            name: "t".into(),
            parser: ParserSpec {
                common: vec![Extract { field: k }],
                verify: vec![],
                select: None,
                branches: HashMap::new(),
            },
            deparser: DeparserSpec {
                common: vec![k],
                select: None,
                branches: HashMap::new(),
            },
            stages: vec![StageConfig {
                tables: vec![TableDef {
                    name: "lookup".into(),
                    keys: vec![(k, MatchKind::Exact)],
                    actions: vec![ActionDef::default()],
                    entries: vec![],
                    default_action: Some(ActionRef(0)),
                    size: 2,
                }],
            }],
            registers: vec![],
            fwd_code: None,
            fwd_label: None,
            layout,
        };
        let mut p = Pipeline::load(cfg, ResourceModel::default()).unwrap();
        assert_eq!(p.table_len("lookup"), Some(0));
        p.table_insert(
            "lookup",
            Entry {
                patterns: vec![MatchPattern::exact(5)],
                action: ActionRef(0),
                args: vec![],
                priority: 0,
            },
        )
        .unwrap();
        assert_eq!(p.table_len("lookup"), Some(1));
        assert!(matches!(
            p.table_insert(
                "nope",
                Entry {
                    patterns: vec![],
                    action: ActionRef(0),
                    args: vec![],
                    priority: 0
                }
            ),
            Err(TableInsertError::NoSuchTable(_))
        ));
        assert_eq!(p.table_remove("lookup", &[MatchPattern::exact(5)]), 1);
        assert_eq!(p.table_len("lookup"), Some(0));
    }

    #[test]
    fn traced_execution_reports_hits_and_changes() {
        let mut p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        let (out, traces) = p.process_traced(&5u32.to_be_bytes()).unwrap();
        assert_eq!(out.packet, 5u32.to_be_bytes());
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].hits,
            vec![("bump".to_string(), "bump".to_string())]
        );
        // meta.tmp went 0 → 5; x stayed 5 (0 + 5).
        assert!(traces[0]
            .changed
            .iter()
            .any(|(n, old, new)| n == "meta.tmp" && old.bits() == 0 && new.bits() == 5));
        let rendered = traces[0].to_string();
        assert!(rendered.contains("stage 0") && rendered.contains("bump"));
        // Stats behave identically to the untraced path.
        assert_eq!(p.stats.packets, 1);
        assert_eq!(p.table_hits_for("bump"), 1);
    }

    #[test]
    fn snapshot_restore_roundtrips_register_state() {
        let mut p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        p.process(&5u32.to_be_bytes()).unwrap();
        let snap = p.snapshot();
        assert_eq!(snap.registers()[0][0], Value::u32(5));
        p.process(&7u32.to_be_bytes()).unwrap();
        assert_eq!(p.register_read("total", 0), Some(Value::u32(12)));
        p.restore(&snap);
        assert_eq!(p.register_read("total", 0), Some(Value::u32(5)));
        // Replay from the checkpoint is bit-identical.
        p.process(&7u32.to_be_bytes()).unwrap();
        assert_eq!(p.register_read("total", 0), Some(Value::u32(12)));
    }

    #[test]
    #[should_panic(expected = "different pipeline")]
    fn restore_rejects_foreign_snapshot() {
        let p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        let snap = p.snapshot();
        let mut cfg = counter_pipeline();
        cfg.registers.push(RegisterArrayDef {
            name: "extra".into(),
            elem: ScalarType::U32,
            len: 1,
            init: vec![],
        });
        // "extra" is never accessed by any stage, so the config loads.
        let mut other = Pipeline::load(cfg, ResourceModel::default()).unwrap();
        other.restore(&snap);
    }

    #[test]
    fn partial_execution_matches_process() {
        // Reference: two straight process() calls.
        let mut reference = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        let r1 = reference.process(&5u32.to_be_bytes()).unwrap();
        let r2 = reference.process(&7u32.to_be_bytes()).unwrap();

        // Same packets via begin/advance/finish, suspended mid-way.
        let mut p = Pipeline::load(counter_pipeline(), ResourceModel::default()).unwrap();
        let mut partial = p.begin(&5u32.to_be_bytes()).unwrap();
        assert_eq!(partial.next_stage(), 0);
        p.advance(&mut partial, 1);
        assert_eq!(partial.next_stage(), 1);
        let o1 = p.finish(partial);
        let o2 = p.process(&7u32.to_be_bytes()).unwrap();
        assert_eq!((o1, o2), (r1, r2));
        assert_eq!(p.stats, reference.stats);
        assert_eq!(p.snapshot(), reference.snapshot());

        // Parse errors count identically too.
        assert!(p.begin(&[1, 2]).is_none());
        assert_eq!(p.stats.parse_errors, 1);
    }

    #[test]
    fn recirculation_counted() {
        let mut cfg = counter_pipeline();
        // Empty filler stages force a second pass on the tiny chip.
        let model = ResourceModel::tiny();
        while cfg.stages.len() <= model.stages {
            cfg.stages.push(StageConfig::default());
        }
        let mut p = Pipeline::load(cfg, model).unwrap();
        let out = p.process(&1u32.to_be_bytes()).unwrap();
        assert_eq!(out.passes, 2);
        assert_eq!(p.stats.recirculations, 1);
    }
}
