//! Declarative per-tenant service-level objectives with deterministic
//! multi-rate burn-rate alerting.
//!
//! Each [`SloSpec`] compiles one [`Objective`] into a rolling evaluator
//! ([`SloTracker`]): every evaluation tick the engine classifies the
//! tick as in- or out-of-objective (a binary "bad tick"), and the
//! tracker maintains the bad-tick fraction over a *fast* and a *slow*
//! window. The alert fires only when **both** windows burn the error
//! budget faster than the threshold — the fast window gives low
//! detection latency, the slow window suppresses one-tick blips
//! (multiwindow burn-rate alerting à la Prometheus SLO practice, but
//! with integer per-mille arithmetic so runs replay bit-identically).

use std::collections::VecDeque;

/// What a tenant objective constrains. Evaluation inputs are the
/// per-tick deltas / gauges the [`crate::engine::Watch`] derives from
/// registry snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Acked windows per evaluation tick must not fall below this.
    /// Only evaluated on ticks where the tenant has traffic in flight
    /// (otherwise an idle tenant would "violate" its own floor).
    GoodputFloor {
        /// Minimum acked windows per tick.
        min_acked_per_tick: u64,
    },
    /// The tenant's p99 first-send→ack latency (from the
    /// `ncpr.sender.ack_latency_ns` histogram) must stay at or below
    /// this. Only evaluated once the histogram has observations.
    LatencyCeiling {
        /// Maximum tolerated p99, in ns.
        max_p99_ns: u64,
    },
    /// Retransmitted sends per 1000 wire sends must stay at or below
    /// this. Only evaluated on ticks with sends.
    RetransmitCeiling {
        /// Maximum retransmit share, in per-mille of all sends.
        max_per_mille: u64,
    },
    /// No window of this tenant may reach a switch that has no deployed
    /// kernel for it — any unknown-kernel delta is a bad tick.
    UnknownKernelZero,
}

impl Objective {
    /// Stable lowercase tag used in incident reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Objective::GoodputFloor { .. } => "goodput_floor",
            Objective::LatencyCeiling { .. } => "latency_ceiling",
            Objective::RetransmitCeiling { .. } => "retransmit_ceiling",
            Objective::UnknownKernelZero => "unknown_kernel_zero",
        }
    }
}

/// One declared objective plus its alerting policy.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable name, used as the incident source and cooldown key.
    pub name: String,
    /// Tenant the objective applies to.
    pub tenant: String,
    /// The constrained quantity.
    pub objective: Objective,
    /// Fast burn window, in evaluation ticks.
    pub fast_window: usize,
    /// Slow burn window, in evaluation ticks.
    pub slow_window: usize,
    /// Error budget: tolerated bad-tick fraction, in per-mille.
    pub budget_per_mille: u64,
    /// Fire when both windows' burn rate reaches this many milli-burns
    /// (4000 = burning budget 4× faster than sustainable).
    pub burn_threshold_milli: u64,
}

impl SloSpec {
    /// A spec with the default alerting policy: fast window 3 ticks,
    /// slow window 12, 5% error budget, 4× burn threshold.
    pub fn new(name: &str, tenant: &str, objective: Objective) -> Self {
        SloSpec {
            name: name.to_string(),
            tenant: tenant.to_string(),
            objective,
            fast_window: 3,
            slow_window: 12,
            budget_per_mille: 50,
            burn_threshold_milli: 4000,
        }
    }
}

/// Burn rates over the two windows, in milli-burns (1000 = consuming
/// budget exactly at the sustainable rate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurnRates {
    /// Burn over the fast window.
    pub fast_milli: u64,
    /// Burn over the slow window.
    pub slow_milli: u64,
}

/// State transition produced by one evaluation tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloTransition {
    /// No state change.
    Unchanged,
    /// The alert just started firing (this is the incident trigger).
    Fired(BurnRates),
    /// The alert just cleared (fast-window burn fell below threshold).
    Cleared,
}

/// Rolling evaluation state of one [`SloSpec`].
#[derive(Clone, Debug)]
pub struct SloTracker {
    /// The compiled spec.
    pub spec: SloSpec,
    /// Bad-tick bits, newest last, bounded by `slow_window`.
    window: VecDeque<bool>,
    firing: bool,
    evaluated: u64,
    bad_total: u64,
}

impl SloTracker {
    /// Compiles a spec into a tracker.
    pub fn new(spec: SloSpec) -> Self {
        assert!(spec.fast_window >= 1 && spec.fast_window <= spec.slow_window);
        assert!(spec.budget_per_mille >= 1);
        SloTracker {
            spec,
            window: VecDeque::new(),
            firing: false,
            evaluated: 0,
            bad_total: 0,
        }
    }

    /// Feeds one evaluation tick. `None` means the objective was not
    /// evaluable this tick (no traffic for a goodput floor, empty
    /// histogram for a latency ceiling); the windows are left
    /// untouched so idle periods neither heal nor hurt the budget.
    pub fn observe(&mut self, breached: Option<bool>) -> SloTransition {
        let Some(bad) = breached else {
            return SloTransition::Unchanged;
        };
        self.evaluated += 1;
        self.bad_total += bad as u64;
        self.window.push_back(bad);
        while self.window.len() > self.spec.slow_window {
            self.window.pop_front();
        }
        let burn = self.burn();
        let thr = self.spec.burn_threshold_milli;
        if self.firing {
            if burn.fast_milli < thr {
                self.firing = false;
                return SloTransition::Cleared;
            }
            return SloTransition::Unchanged;
        }
        // Both windows must agree before firing, and the fast window
        // must actually be full — a single first bad tick is not a
        // sustained burn.
        if self.window.len() >= self.spec.fast_window
            && burn.fast_milli >= thr
            && burn.slow_milli >= thr
        {
            self.firing = true;
            return SloTransition::Fired(burn);
        }
        SloTransition::Unchanged
    }

    /// Burn rates over the currently held window (the slow burn uses
    /// however much history exists, up to `slow_window`).
    pub fn burn(&self) -> BurnRates {
        let over = |w: usize| -> u64 {
            let w = w.min(self.window.len());
            if w == 0 {
                return 0;
            }
            let bad = self.window.iter().rev().take(w).filter(|&&b| b).count() as u64;
            // burn = (bad / w) / (budget_per_mille / 1000), in milli:
            bad * 1_000_000 / (w as u64 * self.spec.budget_per_mille)
        };
        BurnRates {
            fast_milli: over(self.spec.fast_window),
            slow_milli: over(self.spec.slow_window),
        }
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// `(evaluated ticks, bad ticks)` lifetime totals.
    pub fn totals(&self) -> (u64, u64) {
        (self.evaluated, self.bad_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::new(
            "t.goodput",
            "t",
            Objective::GoodputFloor {
                min_acked_per_tick: 10,
            },
        )
    }

    #[test]
    fn sustained_breach_fires_once_and_clears() {
        let mut t = SloTracker::new(spec());
        // Healthy history fills the slow window.
        for _ in 0..12 {
            assert_eq!(t.observe(Some(false)), SloTransition::Unchanged);
        }
        // One blip: fast window not saturated → no fire.
        assert_eq!(t.observe(Some(true)), SloTransition::Unchanged);
        assert_eq!(t.observe(Some(false)), SloTransition::Unchanged);
        // Sustained breach: fires exactly once...
        let mut fired = 0;
        for _ in 0..6 {
            if let SloTransition::Fired(b) = t.observe(Some(true)) {
                fired += 1;
                assert!(b.fast_milli >= 4000 && b.slow_milli >= 4000);
            }
        }
        assert_eq!(fired, 1);
        assert!(t.firing());
        // ...and clears once the fast window drains.
        let mut cleared = 0;
        for _ in 0..4 {
            if t.observe(Some(false)) == SloTransition::Cleared {
                cleared += 1;
            }
        }
        assert_eq!(cleared, 1);
        assert!(!t.firing());
    }

    #[test]
    fn idle_ticks_do_not_heal_the_budget() {
        let mut t = SloTracker::new(spec());
        for _ in 0..3 {
            t.observe(Some(true));
        }
        let burn = t.burn();
        // A run of None ticks must leave burn untouched.
        for _ in 0..100 {
            assert_eq!(t.observe(None), SloTransition::Unchanged);
        }
        assert_eq!(t.burn(), burn);
    }

    #[test]
    fn slow_window_suppresses_oscillating_blips() {
        let mut t = SloTracker::new(spec());
        // Alternating good/bad: fast window (3) sees at most 2 bad →
        // fast burn 2/3 / 0.05 = 13333 milli ≥ 4000, but after enough
        // history the slow window holds 6/12 = 10000 milli — both over
        // threshold, so this *should* fire (50% bad is a real outage).
        // The suppression case is sparser: one bad tick in 12.
        for _ in 0..12 {
            t.observe(Some(false));
        }
        t.observe(Some(true));
        for _ in 0..11 {
            assert_eq!(t.observe(Some(false)), SloTransition::Unchanged);
        }
        assert!(!t.firing());
    }

    #[test]
    fn burn_arithmetic_is_exact() {
        let mut t = SloTracker::new(spec());
        for bad in [true, false, true] {
            t.observe(Some(bad));
        }
        // fast: 2 bad / 3 ticks / 5% budget = 13333 milli (integer div).
        assert_eq!(t.burn().fast_milli, 2 * 1_000_000 / (3 * 50));
    }
}
