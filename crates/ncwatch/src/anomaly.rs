//! Self-calibrating anomaly baselines: EWMA mean + EWMA absolute
//! deviation (a streaming stand-in for the median absolute deviation)
//! over per-link / per-switch / per-tenant series.
//!
//! No hand-set thresholds: each series learns its own level and spread
//! during warmup, and a point is anomalous when it deviates from the
//! learned mean by more than `k` spreads. A relative + absolute
//! deviation floor keeps near-constant series (spread ≈ 0) from
//! flagging trivia, and detection is up-only by default — a series
//! *dropping* (end of run, drained tenant) is not an incident unless
//! the caller opts in via [`AnomalyConfig::watch_low`].
//!
//! All arithmetic is plain IEEE f64 over identical inputs, so verdicts
//! are deterministic across runs.

/// Tuning for every [`EwmaMad`] detector an engine owns.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyConfig {
    /// EWMA smoothing factor for both mean and deviation.
    pub alpha: f64,
    /// Flag when `|x - mean| > k * spread`.
    pub k: f64,
    /// Observations before any verdict (the baseline must settle).
    pub warmup: u64,
    /// Absolute spread floor.
    pub abs_floor: f64,
    /// Relative spread floor, as a fraction of `|mean|`.
    pub rel_floor: f64,
    /// Also flag downward deviations (default: up-only).
    pub watch_low: bool,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            alpha: 0.3,
            k: 8.0,
            warmup: 5,
            abs_floor: 4.0,
            rel_floor: 0.25,
            watch_low: false,
        }
    }
}

/// A flagged deviation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Anomaly {
    /// The offending observation.
    pub value: f64,
    /// Learned baseline mean at flag time.
    pub mean: f64,
    /// Learned spread (post-floor) at flag time.
    pub spread: f64,
    /// `|value - mean| / spread` — how many spreads out.
    pub score: f64,
    /// Deviation direction: `true` = above baseline.
    pub high: bool,
}

/// One series' streaming baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct EwmaMad {
    mean: f64,
    dev: f64,
    n: u64,
}

impl EwmaMad {
    /// A fresh, empty baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation; returns the verdict *before* the
    /// baseline absorbs it (so a level shift is judged against the
    /// pre-shift baseline, then re-baselined over the following
    /// `~1/alpha` ticks — a persistent shift fires once, not forever).
    pub fn observe(&mut self, cfg: &AnomalyConfig, x: f64) -> Option<Anomaly> {
        let verdict = if self.n >= cfg.warmup {
            let floor = cfg.abs_floor.max(cfg.rel_floor * self.mean.abs());
            let spread = self.dev.max(floor);
            let delta = x - self.mean;
            let score = delta.abs() / spread;
            if score > cfg.k && (delta > 0.0 || cfg.watch_low) {
                Some(Anomaly {
                    value: x,
                    mean: self.mean,
                    spread,
                    score,
                    high: delta > 0.0,
                })
            } else {
                None
            }
        } else {
            None
        };
        if self.n == 0 {
            self.mean = x;
        } else {
            let delta = x - self.mean;
            self.mean += cfg.alpha * delta;
            self.dev = (1.0 - cfg.alpha) * self.dev + cfg.alpha * delta.abs();
        }
        self.n += 1;
        verdict
    }

    /// `(mean, deviation, observations)` of the current baseline.
    pub fn baseline(&self) -> (f64, f64, u64) {
        (self.mean, self.dev, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_never_flags() {
        let cfg = AnomalyConfig::default();
        let mut d = EwmaMad::new();
        for x in [0.0, 1000.0, 0.0, 1000.0, 0.0] {
            assert_eq!(d.observe(&cfg, x), None, "warmup must stay silent");
        }
    }

    #[test]
    fn step_change_is_flagged_once_then_rebaselined() {
        let cfg = AnomalyConfig::default();
        let mut d = EwmaMad::new();
        for i in 0..50u64 {
            // Steady series with mild texture.
            let x = 100.0 + (i % 3) as f64;
            assert!(d.observe(&cfg, x).is_none(), "steady state flagged at {i}");
        }
        // 10× step: flags immediately, scored against the old baseline.
        let a = d.observe(&cfg, 1000.0).expect("step must flag");
        assert!(a.high && a.score > cfg.k);
        assert!((a.mean - 101.0).abs() < 2.0);
        // The shifted level stops flagging once absorbed.
        let mut flags = 0;
        for _ in 0..20 {
            flags += d.observe(&cfg, 1000.0).is_some() as u32;
        }
        assert!(flags <= 3, "rebaselining too slow: {flags} repeat flags");
        assert!(d.observe(&cfg, 1000.0).is_none());
    }

    #[test]
    fn downward_moves_are_gated_by_default() {
        // k below the floor-limited drop score (a drop to zero on a
        // constant series scores exactly 1/rel_floor), so direction
        // gating is the only thing standing between the drop and a
        // flag.
        let cfg = AnomalyConfig {
            k: 3.0,
            ..AnomalyConfig::default()
        };
        let mut d = EwmaMad::new();
        for _ in 0..20 {
            d.observe(&cfg, 500.0);
        }
        assert!(d.observe(&cfg, 0.0).is_none(), "up-only by default");
        let low = AnomalyConfig {
            watch_low: true,
            ..cfg
        };
        let mut d = EwmaMad::new();
        for _ in 0..20 {
            d.observe(&low, 500.0);
        }
        let a = d.observe(&low, 0.0).expect("watch_low flags drops");
        assert!(!a.high);
    }

    #[test]
    fn constant_series_needs_a_real_excursion() {
        // Spread collapses to 0 on a constant series; the floors must
        // keep small wiggles unflagged while real excursions still fire.
        let cfg = AnomalyConfig::default();
        let mut d = EwmaMad::new();
        for _ in 0..30 {
            d.observe(&cfg, 8.0);
        }
        assert!(d.observe(&cfg, 11.0).is_none(), "within floor × k");
        let mut d2 = d;
        assert!(d2.observe(&cfg, 100.0).is_some(), "real excursion fires");
    }
}
