//! # ncwatch — streaming health for an in-network-computing fabric
//!
//! The stack can *record* (`nctel` metrics + in-band hop telemetry) and
//! *explain after the fact* (`ncscope` flight recorder + diagnosis),
//! but neither watches the running fabric. `ncwatch` closes that loop:
//! a zero-dependency streaming engine that consumes registry snapshots
//! and hop-telemetry streams on a fixed evaluation tick and turns them
//! into operator-grade signals.
//!
//! Three layers, bottom to top:
//!
//! - [`slo`] — declarative per-tenant objectives (goodput floor, p99
//!   window-latency ceiling, retransmit-rate ceiling, unknown-kernel
//!   == 0) compiled from a small spec type and evaluated over rolling
//!   windows with **multi-rate burn-rate alerting**: an alert fires
//!   only when both a fast and a slow window burn the error budget
//!   faster than a threshold — Prometheus-style SLO burn alerts, but
//!   fully deterministic (integer per-mille arithmetic, no wall
//!   clock).
//! - [`anomaly`] — EWMA mean + EWMA absolute-deviation (MAD-style)
//!   baselines over per-link / per-switch / per-tenant series, flagging
//!   deviations without hand-set thresholds.
//! - [`incident`] + [`engine`] — an alert crossing threshold triggers
//!   an automatic `ncscope` capture + [`nctel::scope::analysis::diagnose`]
//!   run and emits a machine-readable [`incident::IncidentReport`]
//!   (JSON: firing SLO, burn rates, suspected component, correlated
//!   metric exemplars, deterministic incident id).
//!
//! Determinism contract: the same simulated run produces byte-identical
//! incident reports — ids are content hashes, timestamps are simulated
//! time, and every evaluation is integer or IEEE-deterministic float
//! arithmetic over the same inputs.

pub mod anomaly;
pub mod engine;
pub mod incident;
pub mod slo;

pub use anomaly::{Anomaly, AnomalyConfig, EwmaMad};
pub use engine::{CaptureSource, SeriesSample, TenantSample, TickInput, Watch, WatchConfig};
pub use incident::{link_name, wire_name, IncidentReport};
pub use slo::{BurnRates, Objective, SloSpec, SloTracker, SloTransition};
