//! Machine-readable incident reports.
//!
//! An [`IncidentReport`] is the unit the incident pipeline emits when
//! an SLO fires, an anomaly detector flags, or admission control
//! rejects a tenant: one self-contained JSON object carrying the firing
//! signal, its burn rates, the suspected component from the automatic
//! `ncscope` diagnosis, correlated metric exemplars, and a
//! deterministic content-hash id. Reports are append-only JSONL on
//! disk, so `ncwatch --incidents` can tail them and CI can diff two
//! runs byte-for-byte.

use nctel::scope::json::{escape, Json};

/// Renders a node wire id the way the rest of the stack prints
/// topology: switches carry bit 15 (`s3`), hosts don't (`h2`).
pub fn wire_name(id: u16) -> String {
    if id & 0x8000 != 0 {
        format!("s{}", id & 0x7fff)
    } else {
        format!("h{}", id)
    }
}

/// Renders an undirected link between two wire ids: `h1<->s1`
/// (lower id first, matching [`nctel::scope::analysis::Diagnosis::primary_loss_locus`]).
pub fn link_name(a: u16, b: u16) -> String {
    let (lo, hi) = (a.min(b), a.max(b));
    format!("{}<->{}", wire_name(lo), wire_name(hi))
}

/// One incident, as captured at fire time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidentReport {
    /// Deterministic id: FNV-1a over the report content (16 hex
    /// digits). Two identical simulated runs mint identical ids.
    pub id: String,
    /// Evaluation tick (0-based) the incident fired on.
    pub tick: u64,
    /// Simulated time at fire, ns.
    pub now_ns: u64,
    /// `"slo"`, `"anomaly"`, or `"admission"`.
    pub kind: String,
    /// The firing signal: SLO spec name, anomaly series name, or the
    /// rejected tenant's admission key.
    pub source: String,
    /// Tenant the signal belongs to (empty for fabric-wide signals).
    pub tenant: String,
    /// Fast-window burn in milli-burns (0 for non-SLO incidents).
    pub burn_fast_milli: u64,
    /// Slow-window burn in milli-burns (0 for non-SLO incidents).
    pub burn_slow_milli: u64,
    /// The component the automatic diagnosis blames (`link h1<->s1`,
    /// `switch s1 (unknown kernel)`, …) or `unknown`.
    pub suspected: String,
    /// Correlated metric exemplars at fire time, `(name, rendered
    /// value)`, sorted by name.
    pub exemplars: Vec<(String, String)>,
    /// Scope events fed into the triggered diagnosis.
    pub events_captured: u64,
    /// Window traces fed into the triggered diagnosis.
    pub hops_captured: u64,
}

impl IncidentReport {
    /// Renders the canonical single-line JSON form (fixed key order,
    /// exemplars sorted — byte-stable across runs). [`escape`] yields
    /// the complete quoted literal.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"kind\":\"ncwatch-incident\",\"version\":1");
        out.push_str(&format!(",\"id\":{}", escape(&self.id)));
        out.push_str(&format!(",\"tick\":{}", self.tick));
        out.push_str(&format!(",\"now_ns\":{}", self.now_ns));
        out.push_str(&format!(",\"class\":{}", escape(&self.kind)));
        out.push_str(&format!(",\"source\":{}", escape(&self.source)));
        out.push_str(&format!(",\"tenant\":{}", escape(&self.tenant)));
        out.push_str(&format!(",\"burn_fast_milli\":{}", self.burn_fast_milli));
        out.push_str(&format!(",\"burn_slow_milli\":{}", self.burn_slow_milli));
        out.push_str(&format!(",\"suspected\":{}", escape(&self.suspected)));
        out.push_str(",\"exemplars\":{");
        for (i, (k, v)) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", escape(k), escape(v)));
        }
        out.push('}');
        out.push_str(&format!(",\"events_captured\":{}", self.events_captured));
        out.push_str(&format!(",\"hops_captured\":{}", self.hops_captured));
        out.push('}');
        out
    }

    /// Computes and installs the content-hash id: FNV-1a 64 over the
    /// canonical JSON rendered with the id field blanked.
    pub fn seal(&mut self) {
        self.id.clear();
        let bytes = self.render_json();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.id = format!("{h:016x}");
    }

    /// Parses a rendered incident back (strict on kind/version).
    pub fn parse(text: &str) -> Result<IncidentReport, String> {
        let doc = nctel::scope::json::parse(text)?;
        let s = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let n = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        if s("kind")? != "ncwatch-incident" || n("version")? != 1 {
            return Err("not an ncwatch incident".into());
        }
        let mut exemplars = Vec::new();
        if let Some(obj) = doc.get("exemplars").and_then(Json::as_obj) {
            for (k, v) in obj {
                exemplars.push((
                    k.clone(),
                    v.as_str().ok_or("non-string exemplar")?.to_string(),
                ));
            }
        }
        Ok(IncidentReport {
            id: s("id")?,
            tick: n("tick")?,
            now_ns: n("now_ns")?,
            kind: s("class")?,
            source: s("source")?,
            tenant: s("tenant")?,
            burn_fast_milli: n("burn_fast_milli")?,
            burn_slow_milli: n("burn_slow_milli")?,
            suspected: s("suspected")?,
            exemplars,
            events_captured: n("events_captured")?,
            hops_captured: n("hops_captured")?,
        })
    }

    /// Renders the operator-facing multi-line form the CLI prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "incident {} [{}] tick {} t={}ns\n",
            self.id, self.kind, self.tick, self.now_ns
        ));
        out.push_str(&format!("  source:    {}", self.source));
        if !self.tenant.is_empty() {
            out.push_str(&format!(" (tenant {})", self.tenant));
        }
        out.push('\n');
        out.push_str(&format!("  suspected: {}\n", self.suspected));
        if self.burn_fast_milli > 0 || self.burn_slow_milli > 0 {
            out.push_str(&format!(
                "  burn:      {}x fast / {}x slow (milli: {}/{})\n",
                self.burn_fast_milli / 1000,
                self.burn_slow_milli / 1000,
                self.burn_fast_milli,
                self.burn_slow_milli
            ));
        }
        for (k, v) in &self.exemplars {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        out.push_str(&format!(
            "  capture:   {} events, {} traces\n",
            self.events_captured, self.hops_captured
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> IncidentReport {
        let mut r = IncidentReport {
            id: String::new(),
            tick: 17,
            now_ns: 1_234_567,
            kind: "slo".into(),
            source: "ar-a.goodput".into(),
            tenant: "ar-a".into(),
            burn_fast_milli: 20000,
            burn_slow_milli: 5000,
            suspected: "link h1<->s1".into(),
            exemplars: vec![
                ("acked_per_tick".into(), "0".into()),
                ("retransmit_per_mille".into(), "412".into()),
            ],
            events_captured: 99,
            hops_captured: 12,
        };
        r.seal();
        r
    }

    #[test]
    fn seal_is_deterministic_and_content_sensitive() {
        let a = report();
        let b = report();
        assert_eq!(a.id, b.id);
        assert_eq!(a.id.len(), 16);
        let mut c = report();
        c.tick += 1;
        c.seal();
        assert_ne!(a.id, c.id, "different content, different id");
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let r = report();
        let line = r.render_json();
        let back = IncidentReport::parse(&line).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.render_json(), line);
    }

    #[test]
    fn wire_names_match_topology_convention() {
        assert_eq!(wire_name(0x8001), "s1");
        assert_eq!(wire_name(2), "h2");
        assert_eq!(link_name(0x8001, 2), "h2<->s1");
        assert_eq!(link_name(2, 0x8001), "h2<->s1");
    }
}
