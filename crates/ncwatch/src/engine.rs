//! The streaming evaluation engine: one [`Watch`] per deployment,
//! ticked on a fixed simulated-time cadence.
//!
//! Each tick the caller hands the watch a [`TickInput`]: per-tenant
//! cumulative transport counters (the watch differentiates them
//! itself), arbitrary per-component series for the anomaly baselines,
//! and the current `ncscope` capture (decoded events + window traces).
//! The watch evaluates every SLO tracker and anomaly detector, and any
//! alert crossing threshold triggers the incident pipeline: an
//! automatic [`diagnose`] run over the capture, a suspected-component
//! verdict, and a sealed [`IncidentReport`] appended to the in-memory
//! log (and, when armed, to a JSONL file).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use nctel::scope::analysis::{diagnose, Diagnosis, DiagnosisConfig};
use nctel::scope::DecodedEvent;
use nctel::WindowTrace;

use crate::anomaly::{AnomalyConfig, EwmaMad};
use crate::incident::{link_name, wire_name, IncidentReport};
use crate::slo::{Objective, SloSpec, SloTracker, SloTransition};

/// Static configuration of one watch.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Evaluation cadence, simulated ns per tick (informational — the
    /// caller owns the clock and decides when to call
    /// [`Watch::observe_tick`]).
    pub tick_ns: u64,
    /// Declared objectives.
    pub slos: Vec<SloSpec>,
    /// Shared anomaly-detector tuning.
    pub anomaly: AnomalyConfig,
    /// Deployment facts for the triggered diagnosis.
    pub diagnosis: DiagnosisConfig,
    /// Minimum ticks between two incidents from the same source (the
    /// scope-capture budget guard).
    pub capture_cooldown_ticks: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            tick_ns: 100_000,
            slos: Vec::new(),
            anomaly: AnomalyConfig::default(),
            diagnosis: DiagnosisConfig::default(),
            capture_cooldown_ticks: 16,
        }
    }
}

/// One tenant's cumulative transport counters at tick time. The watch
/// keeps last-tick values and differentiates internally.
#[derive(Clone, Debug, Default)]
pub struct TenantSample {
    /// Tenant name (matches [`SloSpec::tenant`]).
    pub tenant: String,
    /// Windows acked (cumulative, summed over the tenant's hosts).
    pub acked: u64,
    /// Windows handed to NCP-R (cumulative).
    pub tracked: u64,
    /// Retransmissions sent (cumulative).
    pub retransmits: u64,
    /// Windows abandoned after retry exhaustion (cumulative).
    pub abandoned: u64,
    /// Current p99 of the first-send→ack latency histogram, ns
    /// (0 while the histogram is empty).
    pub p99_ack_latency_ns: u64,
    /// Unknown-kernel windows attributed to this tenant (cumulative;
    /// fabric-wide counts may be attributed to every tenant).
    pub unknown_kernel: u64,
}

/// One anomaly-series observation: a cumulative (or gauge) value for a
/// named series tied to a fabric component.
#[derive(Clone, Debug)]
pub struct SeriesSample {
    /// Stable series name, e.g. `hop.s1.ticks_out` — also the
    /// detector key and incident source.
    pub series: String,
    /// The component an anomaly on this series implicates when the
    /// diagnosis has no stronger evidence, e.g. `switch s1`.
    pub component: String,
    /// Cumulative counter value (the watch differentiates) — pass
    /// rates pre-differenced as deltas-plus-running-sum if needed.
    pub value: f64,
}

/// Everything the watch reads on one evaluation tick.
#[derive(Clone, Copy)]
pub struct TickInput<'a> {
    /// Simulated time, ns.
    pub now_ns: u64,
    /// Per-tenant cumulative transport counters.
    pub tenants: &'a [TenantSample],
    /// Per-component series for the anomaly baselines.
    pub series: &'a [SeriesSample],
    /// Current scope capture (decoded events so far). Eager — callers
    /// on a hot path should pass `&[]` here and use
    /// [`Watch::observe_tick_lazy`] instead.
    pub events: &'a [DecodedEvent],
    /// Receiver-assembled window traces so far (same eager caveat).
    pub traces: &'a [WindowTrace],
}

/// Lazily materializes the scope capture — decoded events plus window
/// traces — when the incident pipeline actually fires. Decoding a
/// large event ring and cloning every assembled trace on *every*
/// evaluation tick would dominate the watch's cost; most ticks fire
/// nothing and never need the capture.
pub trait CaptureSource {
    /// Produces the capture at fire time.
    fn capture(&mut self) -> (Vec<DecodedEvent>, Vec<WindowTrace>);
}

impl<F: FnMut() -> (Vec<DecodedEvent>, Vec<WindowTrace>)> CaptureSource for F {
    fn capture(&mut self) -> (Vec<DecodedEvent>, Vec<WindowTrace>) {
        self()
    }
}

/// Exemplar key/value pairs attached to a minted incident.
type Exemplars = Vec<(String, String)>;
/// A fired SLO pending mint: source, tenant, fast/slow burn, exemplars.
type FiredSlo = (String, String, u64, u64, Exemplars);
/// A flagged anomaly pending mint: series, component, exemplars.
type FlaggedAnomaly = (String, String, Exemplars);

/// The streaming health engine.
pub struct Watch {
    cfg: WatchConfig,
    trackers: Vec<SloTracker>,
    detectors: BTreeMap<String, EwmaMad>,
    last_counter: BTreeMap<String, u64>,
    last_series: BTreeMap<String, f64>,
    last_fire: BTreeMap<String, u64>,
    tick: u64,
    incidents: Vec<IncidentReport>,
    log_path: Option<PathBuf>,
}

impl Watch {
    /// Compiles the config into trackers and detectors.
    pub fn new(cfg: WatchConfig) -> Self {
        let trackers = cfg.slos.iter().cloned().map(SloTracker::new).collect();
        Watch {
            cfg,
            trackers,
            detectors: BTreeMap::new(),
            last_counter: BTreeMap::new(),
            last_series: BTreeMap::new(),
            last_fire: BTreeMap::new(),
            tick: 0,
            incidents: Vec::new(),
            log_path: None,
        }
    }

    /// Arms the JSONL incident log: every sealed report is appended to
    /// `path` as one line (the file the `ncwatch` CLI tails).
    pub fn arm(&mut self, path: impl Into<PathBuf>) {
        self.log_path = Some(path.into());
    }

    /// The evaluation cadence the watch was configured with.
    pub fn tick_ns(&self) -> u64 {
        self.cfg.tick_ns
    }

    /// Ticks evaluated so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Every incident fired so far, in fire order.
    pub fn incidents(&self) -> &[IncidentReport] {
        &self.incidents
    }

    /// The SLO trackers (spec + live burn state), for health rendering.
    pub fn trackers(&self) -> &[SloTracker] {
        &self.trackers
    }

    /// Runs one evaluation tick and returns the incidents it fired.
    ///
    /// Uses the eager capture carried in `input` (`events`/`traces`).
    /// Streaming drivers that would otherwise decode the whole scope
    /// ring every tick should call [`Watch::observe_tick_lazy`].
    pub fn observe_tick(&mut self, input: &TickInput) -> Vec<IncidentReport> {
        let (events, traces) = (input.events, input.traces);
        self.observe_tick_lazy(input, &mut || (events.to_vec(), traces.to_vec()))
    }

    /// Like [`Watch::observe_tick`], but the scope capture is pulled
    /// from `capture` only on ticks where an SLO fires or an anomaly
    /// flags — the common healthy tick never pays for a ring decode or
    /// a trace clone. `input.events`/`input.traces` are ignored.
    pub fn observe_tick_lazy(
        &mut self,
        input: &TickInput,
        capture: &mut dyn CaptureSource,
    ) -> Vec<IncidentReport> {
        let tick = self.tick;
        self.tick += 1;

        // Differentiate the per-tenant counters.
        struct Deltas {
            acked: u64,
            tracked: u64,
            retransmits: u64,
            unknown: u64,
            outstanding: u64,
        }
        let mut deltas: BTreeMap<&str, Deltas> = BTreeMap::new();
        for t in input.tenants {
            let mut d = |metric: &str, v: u64| -> u64 {
                let key = format!("{}\u{0}{metric}", t.tenant);
                let prev = self.last_counter.insert(key, v).unwrap_or(0);
                v.saturating_sub(prev)
            };
            deltas.insert(
                t.tenant.as_str(),
                Deltas {
                    acked: d("acked", t.acked),
                    tracked: d("tracked", t.tracked),
                    retransmits: d("retransmits", t.retransmits),
                    unknown: d("unknown_kernel", t.unknown_kernel),
                    outstanding: t
                        .tracked
                        .saturating_sub(t.acked)
                        .saturating_sub(t.abandoned),
                },
            );
        }

        // Evaluate every SLO tracker.
        let mut fired: Vec<FiredSlo> = Vec::new();
        for tr in &mut self.trackers {
            let sample = input.tenants.iter().find(|t| t.tenant == tr.spec.tenant);
            let d = deltas.get(tr.spec.tenant.as_str());
            let breached = match (&tr.spec.objective, sample, d) {
                (_, None, _) | (_, _, None) => None,
                (Objective::GoodputFloor { min_acked_per_tick }, _, Some(d)) => {
                    // Only a tenant with work in flight owes goodput.
                    let active = d.tracked > 0 || d.outstanding > 0;
                    active.then_some(d.acked < *min_acked_per_tick)
                }
                (Objective::LatencyCeiling { max_p99_ns }, Some(s), _) => {
                    (s.acked > 0).then_some(s.p99_ack_latency_ns > *max_p99_ns)
                }
                (Objective::RetransmitCeiling { max_per_mille }, _, Some(d)) => {
                    let sends = d.tracked + d.retransmits;
                    (sends > 0).then_some(d.retransmits * 1000 > *max_per_mille * sends)
                }
                (Objective::UnknownKernelZero, _, Some(d)) => Some(d.unknown > 0),
            };
            if let SloTransition::Fired(burn) = tr.observe(breached) {
                let mut exemplars = Vec::new();
                if let (Some(s), Some(d)) = (sample, d) {
                    exemplars.push(("acked_delta".into(), d.acked.to_string()));
                    exemplars.push(("tracked_delta".into(), d.tracked.to_string()));
                    exemplars.push(("retransmits_delta".into(), d.retransmits.to_string()));
                    exemplars.push(("outstanding".into(), d.outstanding.to_string()));
                    exemplars.push((
                        "p99_ack_latency_ns".into(),
                        s.p99_ack_latency_ns.to_string(),
                    ));
                    exemplars.push(("unknown_kernel_delta".into(), d.unknown.to_string()));
                }
                exemplars.push(("objective".into(), tr.spec.objective.tag().into()));
                exemplars.sort();
                fired.push((
                    tr.spec.name.clone(),
                    tr.spec.tenant.clone(),
                    burn.fast_milli,
                    burn.slow_milli,
                    exemplars,
                ));
            }
        }

        // Feed the anomaly baselines with per-tick series deltas.
        let mut flagged: Vec<FlaggedAnomaly> = Vec::new();
        for s in input.series {
            let prev = self.last_series.insert(s.series.clone(), s.value);
            let Some(prev) = prev else {
                continue; // first observation: no delta yet
            };
            let delta = s.value - prev;
            let det = self.detectors.entry(s.series.clone()).or_default();
            if let Some(a) = det.observe(&self.cfg.anomaly, delta) {
                let exemplars = vec![
                    ("baseline_mean".into(), format!("{:.4}", a.mean)),
                    ("baseline_spread".into(), format!("{:.4}", a.spread)),
                    ("delta".into(), format!("{:.4}", a.value)),
                    (
                        "direction".into(),
                        if a.high { "high" } else { "low" }.into(),
                    ),
                    ("score".into(), format!("{:.4}", a.score)),
                ];
                flagged.push((s.series.clone(), s.component.clone(), exemplars));
            }
        }

        // Incident pipeline: capture + diagnose once, then mint reports.
        let mut out = Vec::new();
        if !fired.is_empty() || !flagged.is_empty() {
            let (events, traces) = capture.capture();
            let captured = (events.len() as u64, traces.len() as u64);
            let diagnosis = diagnose(&events, &traces, &self.cfg.diagnosis);
            for (source, tenant, fast, slow, exemplars) in fired {
                if !self.cooldown_ok(&source, tick) {
                    continue;
                }
                let suspected = suspect(&diagnosis, None);
                out.push(self.mint(
                    tick,
                    input.now_ns,
                    captured,
                    "slo",
                    &source,
                    &tenant,
                    fast,
                    slow,
                    suspected,
                    exemplars,
                ));
            }
            for (series, component, exemplars) in flagged {
                if !self.cooldown_ok(&series, tick) {
                    continue;
                }
                let suspected = suspect(&diagnosis, Some(&component));
                out.push(self.mint(
                    tick,
                    input.now_ns,
                    captured,
                    "anomaly",
                    &series,
                    "",
                    0,
                    0,
                    suspected,
                    exemplars,
                ));
            }
        }
        out
    }

    /// Records an admission-control rejection as an incident (fired by
    /// the deployment layer at deploy time, tick 0).
    pub fn admission_incident(
        &mut self,
        now_ns: u64,
        tenant: &str,
        detail: &str,
    ) -> IncidentReport {
        let mut r = IncidentReport {
            id: String::new(),
            tick: self.tick,
            now_ns,
            kind: "admission".into(),
            source: format!("{tenant}.admission"),
            tenant: tenant.to_string(),
            burn_fast_milli: 0,
            burn_slow_milli: 0,
            suspected: "admission control (over quota)".into(),
            exemplars: vec![("cost_report".into(), detail.to_string())],
            events_captured: 0,
            hops_captured: 0,
        };
        r.seal();
        self.log(&r);
        self.incidents.push(r.clone());
        r
    }

    /// Renders the one-shot fabric health summary the CLI prints.
    pub fn health_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ncwatch: {} ticks evaluated, {} incidents\n",
            self.tick,
            self.incidents.len()
        ));
        out.push_str("SLOs:\n");
        for tr in &self.trackers {
            let burn = tr.burn();
            let (evaluated, bad) = tr.totals();
            out.push_str(&format!(
                "  [{}] {} ({}): burn {}m/{}m, {}/{} bad ticks\n",
                if tr.firing() { "FIRING" } else { "  ok  " },
                tr.spec.name,
                tr.spec.objective.tag(),
                burn.fast_milli,
                burn.slow_milli,
                bad,
                evaluated,
            ));
        }
        if self.incidents.is_empty() {
            out.push_str("no incidents\n");
        } else {
            out.push_str("incidents:\n");
            for i in &self.incidents {
                out.push_str(&format!(
                    "  {} tick {:>4} [{}] {} → {}\n",
                    i.id, i.tick, i.kind, i.source, i.suspected
                ));
            }
        }
        out
    }

    fn cooldown_ok(&mut self, source: &str, tick: u64) -> bool {
        match self.last_fire.get(source) {
            Some(&last) if tick.saturating_sub(last) < self.cfg.capture_cooldown_ticks => false,
            _ => {
                self.last_fire.insert(source.to_string(), tick);
                true
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mint(
        &mut self,
        tick: u64,
        now_ns: u64,
        captured: (u64, u64),
        kind: &str,
        source: &str,
        tenant: &str,
        burn_fast_milli: u64,
        burn_slow_milli: u64,
        suspected: String,
        exemplars: Vec<(String, String)>,
    ) -> IncidentReport {
        let mut r = IncidentReport {
            id: String::new(),
            tick,
            now_ns,
            kind: kind.to_string(),
            source: source.to_string(),
            tenant: tenant.to_string(),
            burn_fast_milli,
            burn_slow_milli,
            suspected,
            exemplars,
            events_captured: captured.0,
            hops_captured: captured.1,
        };
        r.seal();
        self.log(&r);
        self.incidents.push(r.clone());
        r
    }

    fn log(&self, r: &IncidentReport) {
        if let Some(path) = &self.log_path {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", r.render_json());
            }
        }
    }
}

/// Names the component the diagnosis most incriminates: the primary
/// loss locus if any frames dropped, else the switch with the most
/// unknown-kernel windows, else the anomaly's own component, else
/// `unknown`.
fn suspect(diagnosis: &Diagnosis, component: Option<&str>) -> String {
    if let Some((a, b)) = diagnosis.primary_loss_locus() {
        return format!("link {}", link_name(a, b));
    }
    if let Some((&sw, _)) = diagnosis
        .unknown_kernel
        .iter()
        .max_by_key(|&(&sw, &n)| (n, std::cmp::Reverse(sw)))
    {
        return format!("switch {} (unknown kernel)", wire_name(sw));
    }
    component
        .map(str::to_string)
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nctel::scope::{ScopeEvent, WindowKey};

    fn goodput_watch() -> Watch {
        Watch::new(WatchConfig {
            slos: vec![SloSpec::new(
                "t.goodput",
                "t",
                Objective::GoodputFloor {
                    min_acked_per_tick: 5,
                },
            )],
            ..WatchConfig::default()
        })
    }

    fn tick<'a>(now_ns: u64, tenants: &'a [TenantSample]) -> TickInput<'a> {
        TickInput {
            now_ns,
            tenants,
            series: &[],
            events: &[],
            traces: &[],
        }
    }

    fn tenant(acked: u64, tracked: u64) -> TenantSample {
        TenantSample {
            tenant: "t".into(),
            acked,
            tracked,
            ..TenantSample::default()
        }
    }

    #[test]
    fn goodput_collapse_fires_one_incident() {
        let mut w = goodput_watch();
        // Healthy: 10 acks/tick.
        for i in 1..=12u64 {
            let t = [tenant(i * 10, i * 10)];
            assert!(w.observe_tick(&tick(i * 100, &t)).is_empty());
        }
        // Collapse: traffic still tracked, nothing acked.
        let mut incidents = Vec::new();
        for i in 13..=20u64 {
            let t = [tenant(120, i * 10)];
            incidents.extend(w.observe_tick(&tick(i * 100, &t)));
        }
        assert_eq!(incidents.len(), 1, "hysteresis + cooldown → one incident");
        let inc = &incidents[0];
        assert_eq!((inc.kind.as_str(), inc.tenant.as_str()), ("slo", "t"));
        assert_eq!(inc.source, "t.goodput");
        assert!(inc.burn_fast_milli >= 4000);
        assert!(inc
            .exemplars
            .iter()
            .any(|(k, v)| k == "acked_delta" && v == "0"));
    }

    #[test]
    fn idle_tenant_never_violates_goodput() {
        let mut w = goodput_watch();
        // No traffic at all: tracked == acked == 0 throughout.
        for i in 1..=50u64 {
            let t = [tenant(0, 0)];
            assert!(w.observe_tick(&tick(i * 100, &t)).is_empty());
        }
        // Finished run: counters frozen, nothing outstanding.
        for i in 51..=100u64 {
            let t = [tenant(500, 500)];
            assert!(
                w.observe_tick(&tick(i * 100, &t)).is_empty(),
                "drained tenant flagged at tick {i}"
            );
        }
    }

    #[test]
    fn unknown_kernel_slo_fires_and_diagnosis_names_the_switch() {
        let mut w = Watch::new(WatchConfig {
            slos: vec![SloSpec::new("t.unknown", "t", Objective::UnknownKernelZero)],
            ..WatchConfig::default()
        });
        // Synthetic capture: switch 0x8001 reports unknown-kernel
        // windows (scope event), matching the counter movement.
        let events: Vec<DecodedEvent> = (0..4)
            .map(|i| DecodedEvent {
                t: 100 + i,
                node: 0x8001,
                key: WindowKey::new(1, 7, i as u32),
                event: ScopeEvent::UnknownKernel { switch: 0x8001 },
            })
            .collect();
        let mut incidents = Vec::new();
        for i in 1..=6u64 {
            let t = [TenantSample {
                tenant: "t".into(),
                unknown_kernel: i * 2,
                ..TenantSample::default()
            }];
            let input = TickInput {
                now_ns: i * 100,
                tenants: &t,
                series: &[],
                events: &events,
                traces: &[],
            };
            incidents.extend(w.observe_tick(&input));
        }
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].suspected, "switch s1 (unknown kernel)");
    }

    #[test]
    fn anomaly_series_fires_with_component_attribution() {
        let mut w = Watch::new(WatchConfig::default());
        let mut incidents = Vec::new();
        for i in 0..40u64 {
            // Cumulative counter advancing 10/tick, then 500/tick.
            let v = if i < 30 { i * 10 } else { 300 + (i - 29) * 500 };
            let s = [SeriesSample {
                series: "hop.s2.ticks_out".into(),
                component: "switch s2".into(),
                value: v as f64,
            }];
            let input = TickInput {
                now_ns: i * 100,
                tenants: &[],
                series: &s,
                events: &[],
                traces: &[],
            };
            incidents.extend(w.observe_tick(&input));
        }
        assert!(!incidents.is_empty(), "step change must flag");
        assert_eq!(incidents[0].kind, "anomaly");
        assert_eq!(incidents[0].source, "hop.s2.ticks_out");
        assert_eq!(incidents[0].suspected, "switch s2");
    }

    #[test]
    fn identical_runs_mint_byte_identical_incident_logs() {
        let run = || {
            let mut w = goodput_watch();
            let mut log = String::new();
            for i in 1..=30u64 {
                let acked = if i <= 12 { i * 10 } else { 120 };
                let t = [tenant(acked, i * 10)];
                for inc in w.observe_tick(&tick(i * 100, &t)) {
                    log.push_str(&inc.render_json());
                    log.push('\n');
                }
            }
            log
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "same run ⇒ byte-identical incident log");
    }
}
