//! Unified metrics: lock-free counters/gauges and log-bucketed latency
//! histograms behind a named [`Registry`], with Prometheus-text and JSON
//! exporters.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics: the hot path is a single relaxed atomic op,
//! never a lock. The registry itself only locks on registration and
//! export, both cold paths. Handles can also be created *detached*
//! (unregistered) so library types work standalone and only surface in
//! an exporter when their owner wires them to a registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached (unregistered) counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move both ways. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached (unregistered) gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: value `v` lands in bucket `⌈log2(v+1)⌉`, so
/// bucket 0 holds exactly 0, bucket k holds (2^(k-1), 2^k].
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free histogram over `u64` observations (typically latencies in
/// nanoseconds) with logarithmic buckets. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Point-in-time summary of a [`Histogram`]: totals plus quantile upper
/// bounds (each quantile reports the upper edge of its log2 bucket, so
/// it over-estimates by at most 2×).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Upper bound on the 50th percentile.
    pub p50: u64,
    /// Upper bound on the 99th percentile.
    pub p99: u64,
    /// Upper bound on the 99.9th percentile.
    pub p999: u64,
}

impl Histogram {
    /// Creates a detached (unregistered) histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v==0
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Upper bound of bucket `idx` (its largest representable value).
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            1u64 << idx
        }
    }

    /// Value `v` such that at least `q` of observations are ≤ `v`
    /// (bucket upper bound), given the already-loaded bucket counts.
    fn quantile(counts: &[u64; BUCKETS], total: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// Takes a consistent-enough snapshot (concurrent observers may land
    /// between loads; totals are never behind the buckets by more than
    /// the in-flight increments).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, b) in self.0.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        let total: u64 = counts.iter().sum();
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            p50: Self::quantile(&counts, total, 0.50),
            p99: Self::quantile(&counts, total, 0.99),
            p999: Self::quantile(&counts, total, 0.999),
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration is get-or-create: asking
/// twice for the same name yields handles sharing one cell, so distinct
/// subsystems (e.g. a transport and the runtime wrapping it) can safely
/// converge on one registry.
///
/// Names are dotted paths (`ncpr.sender.retransmits`); the Prometheus
/// exporter rewrites dots to underscores.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates the gauge called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates the histogram called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers an existing (possibly detached) counter under `name`,
    /// replacing whatever was there. Lets library types hand their
    /// internal cells to an owner's registry after construction.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Registers an existing histogram under `name` (see
    /// [`Registry::register_counter`]).
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    /// Value of counter `name`, or `None` if absent / not a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders every metric in Prometheus text exposition format, in
    /// deterministic (sorted-by-name) order. Dots in names become
    /// underscores; histograms expose `_count`, `_sum` and quantile
    /// gauges.
    pub fn render_prometheus(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            let pname = name.replace('.', "_");
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "# TYPE {pname} summary\n\
                         {pname}{{quantile=\"0.5\"}} {}\n\
                         {pname}{{quantile=\"0.99\"}} {}\n\
                         {pname}{{quantile=\"0.999\"}} {}\n\
                         {pname}_sum {}\n\
                         {pname}_count {}\n",
                        s.p50, s.p99, s.p999, s.sum, s.count
                    ));
                }
            }
        }
        out
    }

    /// Renders every metric as a JSON object keyed by metric name, in
    /// deterministic order. Counters/gauges map to numbers, histograms
    /// to `{count, sum, p50, p99, p999}` objects.
    pub fn render_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::from("{");
        for (i, (name, metric)) in m.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("\"{name}\":{}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("\"{name}\":{}", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                        s.count, s.sum, s.p50, s.p99, s.p999
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counter_value("x.hits"), Some(4));
        assert_eq!(r.counter_value("x.misses"), None);
    }

    #[test]
    fn detached_counter_can_be_registered_later() {
        let c = Counter::new();
        c.add(7);
        let r = Registry::new();
        r.register_counter("late", &c);
        c.inc();
        assert_eq!(r.counter_value("late"), Some(8));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(100); // bucket (64,128] → upper 128
        }
        h.observe(1_000_000); // bucket upper 1048576
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 99 * 100 + 1_000_000);
        assert_eq!(s.p50, 128);
        assert_eq!(s.p99, 128);
        assert_eq!(s.p999, 1 << 20);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.observe(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p999), (1, 0, 0, 0));
    }

    #[test]
    fn exporters_are_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.gauge("c.depth").set(-5);
        r.histogram("d.lat").observe(100);
        let prom = r.render_prometheus();
        let a = prom.find("a_one 1").unwrap();
        let b = prom.find("b_two 2").unwrap();
        let c = prom.find("c_depth -5").unwrap();
        assert!(a < b && b < c, "sorted order:\n{prom}");
        assert!(prom.contains("d_lat{quantile=\"0.99\"} 128"));
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.one\":1"));
        assert!(json.contains("\"d.lat\":{\"count\":1,\"sum\":100,"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
