//! Unified metrics: lock-free counters/gauges and log-bucketed latency
//! histograms behind a named [`Registry`], with Prometheus-text and JSON
//! exporters.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics: the hot path is a single relaxed atomic op,
//! never a lock. The registry itself only locks on registration and
//! export, both cold paths. Handles can also be created *detached*
//! (unregistered) so library types work standalone and only surface in
//! an exporter when their owner wires them to a registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached (unregistered) counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move both ways. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached (unregistered) gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: value `v` lands in bucket `⌈log2(v+1)⌉`, so
/// bucket 0 holds exactly 0, bucket k holds (2^(k-1), 2^k].
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free histogram over `u64` observations (typically latencies in
/// nanoseconds) with logarithmic buckets. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Point-in-time summary of a [`Histogram`]: totals plus quantile
/// estimates. Each quantile is linearly interpolated within its log2
/// bucket (assuming observations spread uniformly across the bucket's
/// range), so under a roughly uniform in-bucket distribution the
/// estimate is within one bucket slot of the truth; in the adversarial
/// worst case it still never leaves the bucket (≤2× relative error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Interpolated estimate of the 50th percentile.
    pub p50: u64,
    /// Interpolated estimate of the 99th percentile.
    pub p99: u64,
    /// Interpolated estimate of the 99.9th percentile.
    pub p999: u64,
}

impl Histogram {
    /// Creates a detached (unregistered) histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v==0
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Upper bound of bucket `idx` (its largest representable value).
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            1u64 << idx
        }
    }

    /// Value `v` such that at least `q` of observations are ≤ `v`,
    /// linearly interpolated within the target log2 bucket, given the
    /// already-loaded bucket counts.
    fn quantile(counts: &[u64; BUCKETS], total: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                return Self::interpolate(idx, rank - seen, c);
            }
            seen += c;
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// Linear interpolation within bucket `idx`: the `r`-th (1-based) of
    /// its `c` observations is estimated at `lo + (hi - lo)·r/c`, i.e.
    /// the observations are assumed to spread uniformly across the
    /// bucket's `(lo, hi]` range. A single-observation bucket reports
    /// its upper edge, matching the pre-interpolation behaviour.
    fn interpolate(idx: usize, r: u64, c: u64) -> u64 {
        if idx == 0 || idx >= 64 {
            // Bucket 0 holds exactly {0}; the top bucket's upper edge is
            // not representable, so no interpolation span exists.
            return Self::bucket_upper(idx);
        }
        let lo = 1u64 << (idx - 1);
        let span = lo; // hi - lo == 2^(idx-1)
        lo + ((span as u128 * r as u128) / c as u128) as u64
    }

    /// Takes a consistent-enough snapshot (concurrent observers may land
    /// between loads; totals are never behind the buckets by more than
    /// the in-flight increments).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, b) in self.0.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        let total: u64 = counts.iter().sum();
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            p50: Self::quantile(&counts, total, 0.50),
            p99: Self::quantile(&counts, total, 0.99),
            p999: Self::quantile(&counts, total, 0.999),
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration is get-or-create: asking
/// twice for the same name yields handles sharing one cell, so distinct
/// subsystems (e.g. a transport and the runtime wrapping it) can safely
/// converge on one registry.
///
/// Names are dotted paths (`ncpr.sender.retransmits`); the Prometheus
/// exporter rewrites dots to underscores. A name may carry a trailing
/// label block in canonical Prometheus form — build it with [`labeled`]
/// (`host.windows_sent{tenant="a"}`): the exporter then groups every
/// labelled variant of one base name under a single family declaration,
/// which is how multi-tenant deployments break out goodput and
/// retransmits per tenant on one shared registry.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates the gauge called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates the histogram called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers an existing (possibly detached) counter under `name`,
    /// replacing a previously registered *counter* of the same name.
    /// Lets library types hand their internal cells to an owner's
    /// registry after construction.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type —
    /// silently shadowing a gauge or histogram with a counter would
    /// corrupt every exporter consumer, exactly like the get-or-create
    /// constructors panic on type confusion.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        let mut m = self.metrics.lock().unwrap();
        if let Some(existing) = m.get(name) {
            assert!(
                matches!(existing, Metric::Counter(_)),
                "metric {name:?} already registered with a different type"
            );
        }
        m.insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Registers an existing gauge under `name` (see
    /// [`Registry::register_counter`]).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        let mut m = self.metrics.lock().unwrap();
        if let Some(existing) = m.get(name) {
            assert!(
                matches!(existing, Metric::Gauge(_)),
                "metric {name:?} already registered with a different type"
            );
        }
        m.insert(name.to_string(), Metric::Gauge(g.clone()));
    }

    /// Registers an existing histogram under `name` (see
    /// [`Registry::register_counter`]).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        let mut m = self.metrics.lock().unwrap();
        if let Some(existing) = m.get(name) {
            assert!(
                matches!(existing, Metric::Histogram(_)),
                "metric {name:?} already registered with a different type"
            );
        }
        m.insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    /// Value of counter `name`, or `None` if absent / not a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders every metric in Prometheus text exposition format, in
    /// deterministic (sorted-by-name) order. Registry names are
    /// sanitized to the spec's `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and any
    /// other illegal characters become underscores, a leading digit is
    /// prefixed with `_`); when two registry names collapse onto one
    /// sanitized family, later ones get a deterministic `_2`, `_3`, …
    /// suffix so the output never declares a family twice. Histograms
    /// expose `_count`, `_sum` and quantile samples as a `summary`.
    ///
    /// Names carrying a [`labeled`] block share one family per `(base
    /// name, type)` pair: every `sim.delivered{tenant="…"}` sample lands
    /// under a single `# TYPE sim_delivered counter` declaration, so the
    /// strict parser (and a real Prometheus scrape) accepts the
    /// per-tenant breakdown.
    pub fn render_prometheus(&self) -> String {
        struct Family {
            pname: String,
            kind: &'static str,
            samples: String,
        }
        let m = self.metrics.lock().unwrap();
        let mut families: Vec<Family> = Vec::new();
        // (base registry name, type) → family index: labelled variants
        // of one base join the family their base + type claimed.
        let mut by_key: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
        let mut used: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (name, metric) in m.iter() {
            let (base, labels) = split_labels(name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
            };
            let idx = *by_key.entry((base.to_string(), kind)).or_insert_with(|| {
                let mut pname = sanitize_prometheus_name(base);
                if used.contains(&pname) {
                    let mut i = 2u32;
                    while used.contains(&format!("{pname}_{i}")) {
                        i += 1;
                    }
                    pname = format!("{pname}_{i}");
                }
                used.insert(pname.clone());
                families.push(Family {
                    pname,
                    kind,
                    samples: String::new(),
                });
                families.len() - 1
            });
            let f = &mut families[idx];
            let pname = f.pname.clone();
            match metric {
                Metric::Counter(c) => {
                    f.samples
                        .push_str(&format!("{pname}{labels} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    f.samples
                        .push_str(&format!("{pname}{labels} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    // Quantile samples merge the user labels with the
                    // quantile label; _sum/_count keep the user labels.
                    let inner = labels.trim_start_matches('{').trim_end_matches('}');
                    let sep = if inner.is_empty() { "" } else { "," };
                    f.samples.push_str(&format!(
                        "{pname}{{{inner}{sep}quantile=\"0.5\"}} {}\n\
                         {pname}{{{inner}{sep}quantile=\"0.99\"}} {}\n\
                         {pname}{{{inner}{sep}quantile=\"0.999\"}} {}\n\
                         {pname}_sum{labels} {}\n\
                         {pname}_count{labels} {}\n",
                        s.p50, s.p99, s.p999, s.sum, s.count
                    ));
                }
            }
        }
        let mut out = String::new();
        for f in &families {
            out.push_str(&format!("# TYPE {} {}\n", f.pname, f.kind));
            out.push_str(&f.samples);
        }
        out
    }

    /// Renders every metric as a JSON object keyed by metric name, in
    /// deterministic order. Counters/gauges map to numbers, histograms
    /// to `{count, sum, p50, p99, p999}` objects. Keys are proper JSON
    /// string literals (quotes, backslashes and control characters in
    /// metric names are escaped).
    pub fn render_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::from("{");
        for (i, (name, metric)) in m.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let key = crate::scope::json::escape(name);
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{key}:{}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{key}:{}", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{key}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                        s.count, s.sum, s.p50, s.p99, s.p999
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Builds the canonical labelled registry name `base{k="v",…}`: the
/// form [`Registry::render_prometheus`] groups into one family per base
/// name. Label values are escaped per the exposition format (`\\`,
/// `\"`, `\n`); an empty label set returns the base unchanged.
///
/// ```
/// use nctel::metrics::labeled;
/// assert_eq!(
///     labeled("host.windows_sent", &[("tenant", "a"), ("host", "w1")]),
///     "host.windows_sent{tenant=\"a\",host=\"w1\"}"
/// );
/// ```
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + labels.len() * 16);
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry name into its base and label block: the inverse of
/// [`labeled`]'s concatenation. Names without a well-formed trailing
/// `{…}` block are all base (the braces then sanitize to underscores).
fn split_labels(name: &str) -> (&str, &str) {
    if let Some(open) = name.find('{') {
        if open > 0 && name.ends_with('}') {
            return (&name[..open], &name[open..]);
        }
    }
    (name, "")
}

/// Rewrites a registry name into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit gets an `_` prefix. Empty names become `_`.
pub fn sanitize_prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One sample line from the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Sample name (family name, possibly with `_sum` / `_count`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One metric family parsed from the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct PromFamily {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// Declared type (`counter`, `gauge`, `summary`, …).
    pub kind: String,
    /// The family's samples.
    pub samples: Vec<PromSample>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Byte offset of the first `needle` in `s` that is not inside a quoted
/// string (escape-aware: `\x` inside quotes never ends the quote).
fn find_unquoted(s: &str, needle: char) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            c if c == needle && !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits a label-set body on top-level commas only — commas inside
/// quoted label values stay part of their pair. Empty pairs (trailing
/// comma) are dropped.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        match find_unquoted(rest, ',') {
            Some(i) => {
                if i > 0 {
                    pairs.push(&rest[..i]);
                }
                rest = &rest[i + 1..];
            }
            None => {
                pairs.push(rest);
                break;
            }
        }
    }
    pairs
}

/// A strict parser for the Prometheus text exposition format, used to
/// regression-test [`Registry::render_prometheus`] (and handy for
/// checking any scrape output).
///
/// Enforced rules: every sample must follow a `# TYPE` declaration and
/// belong to that family (exact name, or `_sum`/`_count` for summaries
/// and histograms); metric and label names must match the spec
/// character sets; label values must be properly quoted with only the
/// spec's escapes (`\\`, `\"`, `\n`); values must parse as floats; a
/// family may not be declared twice.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, String> {
    let mut families: Vec<PromFamily> = Vec::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return err("malformed TYPE line");
            };
            if !valid_metric_name(name) {
                return err("illegal family name");
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return err("unknown family type");
            }
            if !seen.insert(name.to_string()) {
                return err("family declared twice");
            }
            families.push(PromFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let Some(family) = families.last_mut() else {
            return err("sample before any TYPE declaration");
        };
        // name[{labels}] value
        let (name_part, rest) = match (line.find('{'), line.find(' ')) {
            (Some(b), Some(s)) if b < s => line.split_at(b),
            (_, Some(s)) => line.split_at(s),
            _ => return err("missing value"),
        };
        if !valid_metric_name(name_part) {
            return err("illegal sample name");
        }
        let member = name_part == family.name
            || ((family.kind == "summary" || family.kind == "histogram")
                && (name_part == format!("{}_sum", family.name)
                    || name_part == format!("{}_count", family.name)
                    || (family.kind == "histogram"
                        && name_part == format!("{}_bucket", family.name))));
        if !member {
            return err("sample does not belong to the current family");
        }
        let mut rest = rest;
        let mut labels = Vec::new();
        if let Some(body) = rest.strip_prefix('{') {
            // The closing brace must be found with quote awareness:
            // label *values* may legally contain `}` (and `,`) inside
            // their quotes, so a plain `find('}')` would truncate them.
            let Some(close) = find_unquoted(body, '}') else {
                return err("unterminated label set");
            };
            let (label_body, after) = body.split_at(close);
            rest = &after[1..];
            for pair in split_label_pairs(label_body) {
                let Some((lname, lval)) = pair.split_once('=') else {
                    return err("label without '='");
                };
                if !valid_label_name(lname) {
                    return err("illegal label name");
                }
                let Some(quoted) = lval.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return err("label value not quoted");
                };
                let mut val = String::new();
                let mut chars = quoted.chars();
                while let Some(c) = chars.next() {
                    if c == '"' {
                        return err("unescaped quote in label value");
                    }
                    if c == '\\' {
                        match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            _ => return err("illegal escape in label value"),
                        }
                    } else {
                        val.push(c);
                    }
                }
                labels.push((lname.to_string(), val));
            }
        }
        let value_text = rest.trim_start_matches(' ');
        if value_text.is_empty() || value_text.contains(' ') {
            // (timestamps are legal Prometheus but our exporter never
            // emits them, so the strict parser rejects extra fields)
            return err("expected exactly one value");
        }
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad float {v:?}", lineno + 1))?,
        };
        family.samples.push(PromSample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    Ok(families)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counter_value("x.hits"), Some(4));
        assert_eq!(r.counter_value("x.misses"), None);
    }

    #[test]
    fn detached_counter_can_be_registered_later() {
        let c = Counter::new();
        c.add(7);
        let r = Registry::new();
        r.register_counter("late", &c);
        c.inc();
        assert_eq!(r.counter_value("late"), Some(8));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(100); // bucket (64,128], 99 observations
        }
        h.observe(1_000_000); // sole observation in (2^19, 2^20]
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 99 * 100 + 1_000_000);
        // p50 → rank 50 of 99 in (64,128]: 64 + 64·50/99 = 96.
        assert_eq!(s.p50, 96);
        // p99 → rank 99 of 99 in the same bucket: the upper edge.
        assert_eq!(s.p99, 128);
        // p999 → the lone top observation: its bucket's upper edge.
        assert_eq!(s.p999, 1 << 20);
    }

    #[test]
    fn histogram_interpolation_bounds_relative_error() {
        // Uniform-ish spread: values 257..=512 fill bucket (256,512]
        // with an arithmetic progression. Interpolated quantiles must
        // land near the true order statistics — well inside the 2×
        // worst case of the old bucket-upper-bound estimate.
        let h = Histogram::new();
        for v in 257..=511u64 {
            h.observe(v); // 255 observations, all in one bucket
        }
        let s = h.snapshot();
        for (q, est) in [(0.50f64, s.p50), (0.99, s.p99), (0.999, s.p999)] {
            let rank = ((255.0 * q).ceil() as u64).clamp(1, 255);
            let truth = 256 + rank; // rank-th smallest of 257..=511
            let rel = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(
                rel <= 0.005,
                "q={q}: est {est} vs truth {truth} (rel err {rel:.4})"
            );
        }

        // Adversarial: every observation piled at the bucket's bottom
        // edge + 1. Interpolation can't know that, but the estimate
        // must never leave the bucket: relative error stays < 2×.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.observe(257);
        }
        let s = h.snapshot();
        for est in [s.p50, s.p99, s.p999] {
            assert!((257..=512).contains(&est), "estimate {est} left bucket");
            assert!((est as f64) / 257.0 < 2.0);
        }
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.observe(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p999), (1, 0, 0, 0));
    }

    #[test]
    fn exporters_are_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.gauge("c.depth").set(-5);
        r.histogram("d.lat").observe(100);
        let prom = r.render_prometheus();
        let a = prom.find("a_one 1").unwrap();
        let b = prom.find("b_two 2").unwrap();
        let c = prom.find("c_depth -5").unwrap();
        assert!(a < b && b < c, "sorted order:\n{prom}");
        assert!(prom.contains("d_lat{quantile=\"0.99\"} 128"));
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.one\":1"));
        assert!(json.contains("\"d.lat\":{\"count\":1,\"sum\":100,"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn register_over_different_type_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.register_counter("x", &Counter::new());
    }

    #[test]
    fn register_same_type_replaces() {
        let r = Registry::new();
        r.counter("x").add(3);
        let fresh = Counter::new();
        fresh.add(10);
        r.register_counter("x", &fresh);
        assert_eq!(r.counter_value("x"), Some(10));
        r.register_gauge("g", &Gauge::new());
        r.register_histogram("h", &Histogram::new());
    }

    #[test]
    fn prometheus_names_are_sanitized_to_spec() {
        assert_eq!(sanitize_prometheus_name("a.b.c"), "a_b_c");
        assert_eq!(
            sanitize_prometheus_name("udp/mal-formed μs"),
            "udp_mal_formed__s"
        );
        assert_eq!(sanitize_prometheus_name("9lives"), "_9lives");
        assert_eq!(sanitize_prometheus_name(""), "_");
        assert_eq!(sanitize_prometheus_name("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn exporter_round_trips_through_strict_parser() {
        let r = Registry::new();
        r.counter("ncpr.sender.retransmits").add(4);
        r.counter("udp/mal-formed").inc(); // illegal chars
        r.counter("9starts.with.digit").add(2); // leading digit
        r.gauge("sim.depth").set(-3);
        r.histogram("e2e.lat").observe(100);
        let text = r.render_prometheus();
        let families = parse_prometheus(&text).expect("strict parse");
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "_9starts_with_digit",
                "e2e_lat",
                "ncpr_sender_retransmits",
                "sim_depth",
                "udp_mal_formed"
            ]
        );
        let summary = families.iter().find(|f| f.name == "e2e_lat").unwrap();
        assert_eq!(summary.kind, "summary");
        let quantiles: Vec<&PromSample> = summary
            .samples
            .iter()
            .filter(|s| s.labels.iter().any(|(k, _)| k == "quantile"))
            .collect();
        assert_eq!(quantiles.len(), 3);
        assert_eq!(quantiles[0].labels[0], ("quantile".into(), "0.5".into()));
        assert!(summary.samples.iter().any(|s| s.name == "e2e_lat_count"));
        let c = families
            .iter()
            .find(|f| f.name == "ncpr_sender_retransmits")
            .unwrap();
        assert_eq!(c.samples[0].value, 4.0);
    }

    #[test]
    fn sanitized_name_collisions_stay_unique_families() {
        let r = Registry::new();
        r.counter("a.b").add(1);
        r.counter("a_b").add(2);
        r.counter("a-b").add(3);
        let text = r.render_prometheus();
        let families = parse_prometheus(&text).expect("no duplicate families");
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        // BTreeMap order: "a-b" < "a.b" < "a_b" — first takes the clean
        // name, later ones get deterministic suffixes.
        assert_eq!(names, vec!["a_b", "a_b_2", "a_b_3"]);
        assert_eq!(families[0].samples[0].value, 3.0);
        assert_eq!(families[1].samples[0].value, 1.0);
        assert_eq!(families[2].samples[0].value, 2.0);
    }

    #[test]
    fn labeled_samples_share_one_family() {
        let r = Registry::new();
        r.counter(&labeled("sim.delivered", &[("tenant", "a")]))
            .add(3);
        r.counter(&labeled("sim.delivered", &[("tenant", "b")]))
            .add(5);
        r.counter("sim.delivered").add(8); // unlabelled total
        r.histogram(&labeled("e2e.lat", &[("tenant", "a")]))
            .observe(100);
        let text = r.render_prometheus();
        let families = parse_prometheus(&text).expect("strict parse:\n{text}");
        let sim = families.iter().find(|f| f.name == "sim_delivered").unwrap();
        assert_eq!(sim.kind, "counter");
        assert_eq!(sim.samples.len(), 3);
        let by_tenant: Vec<(Vec<(String, String)>, f64)> = sim
            .samples
            .iter()
            .map(|s| (s.labels.clone(), s.value))
            .collect();
        assert!(by_tenant.contains(&(vec![], 8.0)));
        assert!(by_tenant.contains(&(vec![("tenant".into(), "a".into())], 3.0)));
        assert!(by_tenant.contains(&(vec![("tenant".into(), "b".into())], 5.0)));
        // Labelled histograms merge user labels with quantile labels.
        let lat = families.iter().find(|f| f.name == "e2e_lat").unwrap();
        let q = lat
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(k, _)| k == "quantile"))
            .unwrap();
        assert!(q.labels.contains(&("tenant".into(), "a".into())));
        assert!(lat
            .samples
            .iter()
            .any(|s| s.name == "e2e_lat_count" && s.labels == vec![("tenant".into(), "a".into())]));
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(labeled("x", &[]), "x");
        let name = labeled("x.y", &[("t", "a\"b\\c\nd")]);
        let r = Registry::new();
        r.counter(&name).inc();
        let families = parse_prometheus(&r.render_prometheus()).expect("parses");
        assert_eq!(families[0].samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn parser_keeps_braces_and_commas_inside_label_values() {
        // `}` and `,` are legal *inside* quoted label values; the
        // quote-aware scan must not end the label set (or split the
        // pair) early.
        let r = Registry::new();
        r.counter(&labeled("x.y", &[("a", "v1,v2}"), ("b", "{q=\"z\"}")]))
            .add(3);
        let text = r.render_prometheus();
        let families = parse_prometheus(&text).expect("strict parse:\n{text}");
        let labels = &families[0].samples[0].labels;
        assert_eq!(labels[0], ("a".to_string(), "v1,v2}".to_string()));
        assert_eq!(labels[1], ("b".to_string(), "{q=\"z\"}".to_string()));
    }

    #[test]
    fn strict_parser_rejects_spec_violations() {
        // Sample without a family.
        assert!(parse_prometheus("orphan 1\n").is_err());
        // Duplicate family declaration.
        assert!(parse_prometheus("# TYPE a counter\na 1\n# TYPE a counter\na 2\n").is_err());
        // Sample outside its family.
        assert!(parse_prometheus("# TYPE a counter\nb 1\n").is_err());
        // Illegal name.
        assert!(parse_prometheus("# TYPE a.b counter\na.b 1\n").is_err());
        // Unquoted label value.
        assert!(parse_prometheus("# TYPE a summary\na{quantile=0.5} 1\n").is_err());
        // Bad float.
        assert!(parse_prometheus("# TYPE a counter\na one\n").is_err());
        // Legal input parses.
        let ok = parse_prometheus("# TYPE a summary\na{quantile=\"0.5\"} 1\na_sum 2\na_count 1\n")
            .unwrap();
        assert_eq!(ok[0].samples.len(), 3);
    }

    #[test]
    fn json_keys_are_escaped() {
        let r = Registry::new();
        r.counter("we\"ird\\name").add(7);
        r.histogram("plain.lat").observe(3);
        let doc = crate::scope::json::parse(&r.render_json()).expect("valid JSON");
        assert_eq!(doc.get("we\"ird\\name").unwrap().as_u64(), Some(7));
        assert_eq!(
            doc.get("plain.lat").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
