#![warn(missing_docs)]

//! # nctel — observability for the NCL stack
//!
//! The rest of the workspace makes the *window* the unit of processing;
//! this crate makes it the unit of *observation*. Three layers, each
//! usable on its own (DESIGN.md §4.9):
//!
//! * [`metrics`] — a unified, lock-free metrics [`Registry`]:
//!   [`Counter`]s, [`Gauge`]s and log-bucketed latency [`Histogram`]s
//!   with p50/p99/p999 snapshots, rendered as Prometheus text or JSON.
//!   The scattered ad-hoc stats structs (`SenderStats`, `ReceiverStats`,
//!   `SimStats`, the UDP malformed counter, fast-path hit/miss counts,
//!   deploy/lint gate outcomes) are all backed by it.
//! * [`hop`] + [`trace`] — **in-band window telemetry**: an optional
//!   postcard section appended after the NCP v1 payload in which each
//!   on-path switch stamps a fixed-size [`HopRecord`] (switch id, kernel
//!   id+version, stage count, micro-ops executed, dup-suppression flag,
//!   sim-time ticks in/out). The receiving host assembles the records
//!   into [`WindowTrace`]s held in a bounded, sampled [`TraceRing`].
//! * [`spans`] — compile-pipeline tracing: a [`Timeline`] of timed spans
//!   around parse→sema→lower→passes→lint→PISA-map→P4-emit, surfaced by
//!   `nclc --emit timing`.
//! * [`scope`] — **ncscope**, the layer that *interprets* the above
//!   (DESIGN.md §4.10): a lock-free ring of typed window events shared
//!   by every layer via a cheap-clone [`Scope`] handle, a flight
//!   recorder that snapshots ring + registry to JSON on failure paths,
//!   a diagnosis engine producing per-window verdicts (loss locus, dup
//!   heatmaps, switch latency), and a Chrome `trace_event` exporter.
//!
//! The crate has **zero dependencies** so every other crate in the
//! workspace (transport, simulator, compiler, benches) can depend on it
//! without cycles.

pub mod clock;
pub mod hop;
pub mod metrics;
pub mod scope;
pub mod spans;
pub mod trace;

pub use clock::MonotonicClock;
pub use hop::{HopRecord, HOP_DUP_SUPPRESSED, HOP_FORWARDED_ONLY, HOP_RECORD_LEN};
pub use metrics::{labeled, Counter, Gauge, Histogram, Registry};
pub use scope::{Scope, ScopeEvent, SnapshotReason, WindowKey};
pub use spans::Timeline;
pub use trace::{TraceRing, WindowTrace};
