//! Per-window traces assembled by the receiving host from in-band
//! telemetry sections, held in a bounded ring with a deterministic
//! sampling knob.

use crate::hop::HopRecord;
use std::collections::VecDeque;

/// The trace of one window's journey: which kernel/seq/sender it was,
/// and the hop records stamped by each on-path switch in path order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowTrace {
    /// Kernel id the window addressed.
    pub kernel: u16,
    /// Window sequence number.
    pub seq: u32,
    /// Originating sender id.
    pub sender: u16,
    /// Hop records in path order (first switch first).
    pub hops: Vec<HopRecord>,
}

/// A bounded ring buffer of [`WindowTrace`]s with a sampling knob.
///
/// Sampling is a deterministic error-accumulator (no RNG, so simulated
/// runs stay reproducible): with `sampling = 0.25` exactly every fourth
/// [`TraceRing::should_sample`] returns `true`. When the ring is full
/// the oldest trace is evicted and counted in
/// [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    ring: VecDeque<WindowTrace>,
    cap: usize,
    sampling: f64,
    acc: f64,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` traces (minimum 1) that
    /// samples the given fraction of windows (`sampling` clamped to
    /// `[0, 1]`).
    pub fn new(sampling: f64, cap: usize) -> Self {
        TraceRing {
            ring: VecDeque::new(),
            cap: cap.max(1),
            sampling: sampling.clamp(0.0, 1.0),
            acc: 0.0,
            dropped: 0,
        }
    }

    /// Advances the sampler: `true` iff the next outgoing window should
    /// carry a telemetry section.
    pub fn should_sample(&mut self) -> bool {
        self.acc += self.sampling;
        if self.acc >= 1.0 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Stores a completed trace, evicting the oldest when full.
    pub fn push(&mut self, trace: WindowTrace) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(trace);
    }

    /// Drains and returns every buffered trace, oldest first.
    pub fn take(&mut self) -> Vec<WindowTrace> {
        self.ring.drain(..).collect()
    }

    /// Number of buffered traces.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Traces evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u32) -> WindowTrace {
        WindowTrace {
            kernel: 1,
            seq,
            sender: 7,
            hops: vec![],
        }
    }

    #[test]
    fn sampler_is_deterministic_and_proportional() {
        let mut r = TraceRing::new(0.25, 8);
        let hits: Vec<bool> = (0..8).map(|_| r.should_sample()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 2);
        // Exactly every 4th window.
        assert_eq!(
            hits,
            vec![false, false, false, true, false, false, false, true]
        );
        let mut all = TraceRing::new(1.0, 8);
        assert!((0..100).all(|_| all.should_sample()));
        let mut none = TraceRing::new(0.0, 8);
        assert!(!(0..100).any(|_| none.should_sample()));
    }

    #[test]
    fn ring_bounds_and_evicts_oldest() {
        let mut r = TraceRing::new(1.0, 2);
        r.push(trace(1));
        r.push(trace(2));
        r.push(trace(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let seqs: Vec<u32> = r.take().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert!(r.is_empty());
    }
}
