//! Per-window traces assembled by the receiving host from in-band
//! telemetry sections, held in a bounded ring with a deterministic
//! sampling knob.

use crate::hop::HopRecord;
use std::collections::{BTreeMap, VecDeque};

/// The trace of one window's journey: which kernel/seq/sender it was,
/// and the hop records stamped by each on-path switch in path order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowTrace {
    /// Kernel id the window addressed.
    pub kernel: u16,
    /// Window sequence number.
    pub seq: u32,
    /// Originating sender id.
    pub sender: u16,
    /// Hop records in path order (first switch first).
    pub hops: Vec<HopRecord>,
}

/// Fixed-point scale for the sampler: Q32, so `1.0` is exactly
/// `1 << 32` and accumulator arithmetic is integer-exact.
const SAMPLING_ONE: u64 = 1 << 32;

/// A bounded ring buffer of [`WindowTrace`]s with a sampling knob.
///
/// Sampling is a deterministic error-accumulator (no RNG, so simulated
/// runs stay reproducible): with `sampling = 0.25` exactly every fourth
/// [`TraceRing::should_sample`] returns `true`. The accumulator is
/// integer fixed-point (Q32), so long runs cannot drift the way a
/// floating-point accumulator does, and [`TraceRing::should_sample_for`]
/// keeps an independent accumulator per sender: with multiple senders
/// interleaving through one ring, each sender's kept set depends only on
/// its own window order, never on how the interleaving happened to land.
/// When the ring is full the oldest trace is evicted and counted in
/// [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    ring: VecDeque<WindowTrace>,
    cap: usize,
    sampling_fp: u64,
    acc: u64,
    per_sender: BTreeMap<u16, u64>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` traces (minimum 1) that
    /// samples the given fraction of windows (`sampling` clamped to
    /// `[0, 1]`).
    pub fn new(sampling: f64, cap: usize) -> Self {
        TraceRing {
            ring: VecDeque::new(),
            cap: cap.max(1),
            sampling_fp: (sampling.clamp(0.0, 1.0) * SAMPLING_ONE as f64).round() as u64,
            acc: 0,
            per_sender: BTreeMap::new(),
            dropped: 0,
        }
    }

    fn advance(acc: &mut u64, fp: u64) -> bool {
        *acc += fp;
        if *acc >= SAMPLING_ONE {
            *acc -= SAMPLING_ONE;
            true
        } else {
            false
        }
    }

    /// Advances the sampler: `true` iff the next outgoing window should
    /// carry a telemetry section. Single shared stream; hosts emitting
    /// windows for several senders should use
    /// [`TraceRing::should_sample_for`] instead.
    pub fn should_sample(&mut self) -> bool {
        let fp = self.sampling_fp;
        Self::advance(&mut self.acc, fp)
    }

    /// Advances `sender`'s private sampler stream. Because each sender
    /// owns its accumulator, the decision for a sender's n-th window is
    /// a pure function of `(sampling, n)` — reordering *between*
    /// senders can never change which windows are kept.
    pub fn should_sample_for(&mut self, sender: u16) -> bool {
        let fp = self.sampling_fp;
        Self::advance(self.per_sender.entry(sender).or_insert(0), fp)
    }

    /// Stores a completed trace, evicting the oldest when full.
    pub fn push(&mut self, trace: WindowTrace) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(trace);
    }

    /// Drains and returns every buffered trace, oldest first.
    pub fn take(&mut self) -> Vec<WindowTrace> {
        self.ring.drain(..).collect()
    }

    /// Clones the buffered traces without draining them (used by the
    /// flight recorder, which must not disturb the running host).
    pub fn snapshot(&self) -> Vec<WindowTrace> {
        self.ring.iter().cloned().collect()
    }

    /// Number of buffered traces.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Traces evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u32) -> WindowTrace {
        WindowTrace {
            kernel: 1,
            seq,
            sender: 7,
            hops: vec![],
        }
    }

    #[test]
    fn sampler_is_deterministic_and_proportional() {
        let mut r = TraceRing::new(0.25, 8);
        let hits: Vec<bool> = (0..8).map(|_| r.should_sample()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 2);
        // Exactly every 4th window.
        assert_eq!(
            hits,
            vec![false, false, false, true, false, false, false, true]
        );
        let mut all = TraceRing::new(1.0, 8);
        assert!((0..100).all(|_| all.should_sample()));
        let mut none = TraceRing::new(0.0, 8);
        assert!(!(0..100).any(|_| none.should_sample()));
    }

    #[test]
    fn sampler_is_drift_free_over_long_runs() {
        // With a float accumulator, 0.1 accumulates representation
        // error; the Q32 accumulator keeps the kept-count exact forever.
        let mut r = TraceRing::new(0.1, 8);
        let kept = (0..1_000_000).filter(|_| r.should_sample()).count();
        assert_eq!(kept, 100_000);
    }

    #[test]
    fn per_sender_sampling_is_interleaving_invariant() {
        // The kept set for each sender must be a pure function of that
        // sender's own window order, whatever the global interleaving.
        let decide = |order: &[u16]| -> Vec<(u16, u32)> {
            let mut r = TraceRing::new(0.25, 64);
            let mut next_seq: BTreeMap<u16, u32> = BTreeMap::new();
            let mut kept = Vec::new();
            for &sender in order {
                let seq = next_seq.entry(sender).or_insert(0);
                if r.should_sample_for(sender) {
                    kept.push((sender, *seq));
                }
                *seq += 1;
            }
            kept.sort_unstable();
            kept
        };
        // 8 windows per sender, three very different interleavings.
        let blocked: Vec<u16> = [vec![1u16; 8], vec![2u16; 8]].concat();
        let alternating: Vec<u16> = (0..16).map(|i| 1 + (i % 2) as u16).collect();
        let lopsided: Vec<u16> =
            [vec![1u16; 6], vec![2u16; 7], vec![1u16; 2], vec![2u16; 1]].concat();
        let want: Vec<(u16, u32)> = vec![(1, 3), (1, 7), (2, 3), (2, 7)];
        assert_eq!(decide(&blocked), want);
        assert_eq!(decide(&alternating), want);
        assert_eq!(decide(&lopsided), want);
    }

    #[test]
    fn concurrent_producers_keep_a_deterministic_set() {
        use std::sync::{Arc, Mutex};
        // Two real threads race through one shared ring; whatever
        // interleaving the scheduler produces, the kept set is the one
        // the single-threaded oracle predicts.
        let per_sender = 64u32;
        let oracle: Vec<(u16, u32)> = {
            let mut r = TraceRing::new(0.25, 1024);
            let mut kept = Vec::new();
            for sender in [1u16, 2] {
                for seq in 0..per_sender {
                    if r.should_sample_for(sender) {
                        kept.push((sender, seq));
                    }
                }
            }
            kept.sort_unstable();
            kept
        };
        for _ in 0..8 {
            let ring = Arc::new(Mutex::new(TraceRing::new(0.25, 1024)));
            let threads: Vec<_> = [1u16, 2]
                .into_iter()
                .map(|sender| {
                    let ring = ring.clone();
                    std::thread::spawn(move || {
                        for seq in 0..per_sender {
                            let mut r = ring.lock().unwrap();
                            if r.should_sample_for(sender) {
                                let mut t = trace(seq);
                                t.sender = sender;
                                r.push(t);
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let mut kept: Vec<(u16, u32)> = ring
                .lock()
                .unwrap()
                .snapshot()
                .iter()
                .map(|t| (t.sender, t.seq))
                .collect();
            kept.sort_unstable();
            assert_eq!(kept, oracle);
        }
    }

    #[test]
    fn ring_bounds_and_evicts_oldest() {
        let mut r = TraceRing::new(1.0, 2);
        r.push(trace(1));
        r.push(trace(2));
        r.push(trace(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let seqs: Vec<u32> = r.take().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert!(r.is_empty());
    }
}
