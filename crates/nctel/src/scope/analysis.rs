//! The diagnosis engine: folds scope events and in-band hop records
//! into per-window verdicts with loss-locus attribution, per-switch
//! latency attribution and replay/dup heatmaps.
//!
//! Two evidence classes feed the verdicts:
//!
//! * **Event-log evidence** — `FragmentDropped{link}` events recorded by
//!   the simulator's link layer are ground truth: they name the exact
//!   directed link that ate a frame. When present they decide the loss
//!   locus outright.
//! * **Telemetry inference** — on real hardware there is no oracle, so
//!   the engine falls back to the paper-style inference: compare the
//!   deepest on-path switch that *witnessed* the window (hop records
//!   seen by the receiver, `SwitchExecuted`/`SwitchForwarded` events)
//!   against the deployed AND path, and blame the first link past that
//!   point. Only the first [`HOP_PATH_CAP`] hops of a path are trusted;
//!   longer paths yield truncated verdicts rather than confident blame.

use super::event::{DecodedEvent, ScopeEvent, WindowKey};
use crate::trace::WindowTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Analysis trust horizon, in hops. Wire-compat tests cover telemetry
/// sections of up to 8 hop records; beyond that the engine refuses to
/// pin blame on a specific link.
pub const HOP_PATH_CAP: usize = 8;

/// Static deployment facts the engine diagnoses against.
#[derive(Clone, Debug, Default)]
pub struct DiagnosisConfig {
    /// The deployed AND path, as switch wire ids in sender→receiver
    /// order. Empty when unknown (e.g. analysing a bare artifact): loss
    /// loci then come from drop events only.
    pub expected_path: Vec<u16>,
    /// Currently deployed kernel versions, `(switch wire, kernel) →
    /// version`. Hop records carrying any other version are flagged as
    /// stale (a window that raced a redeploy). Empty map disables the
    /// check.
    pub deployed_versions: BTreeMap<(u16, u16), u16>,
}

/// Where a lost window (or its ACK) died.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossLocus {
    /// A specific directed link, as `(from, to)` node wire ids.
    Link {
        /// Transmitting node wire id.
        from: u16,
        /// Receiving node wire id.
        to: u16,
    },
    /// Every on-path switch witnessed the window; it died between the
    /// last switch and the receiver (or the ACK died on the way back).
    AfterSwitch {
        /// The last switch that saw the window.
        switch: u16,
    },
    /// Not enough evidence to name a link (e.g. truncated path).
    Unknown,
}

/// Delivery outcome of one window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowOutcome {
    /// The receiver delivered it (and/or the sender retired it).
    Delivered,
    /// The reliable sender gave up after exhausting retries.
    Abandoned,
    /// Still in flight when the snapshot was taken.
    InFlight,
}

/// Per-switch latency attribution derived from hop-record tick deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Hop records aggregated.
    pub count: u64,
    /// Sum of `ticks_out - ticks_in` across them, in ns.
    pub total_ns: u64,
    /// Worst single residence time, in ns.
    pub max_ns: u64,
}

impl LatencyStat {
    /// Mean residence time in ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The verdict for one window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowVerdict {
    /// The window this verdict describes.
    pub key: WindowKey,
    /// Delivery outcome.
    pub outcome: WindowOutcome,
    /// Wire transmissions observed (`WindowSent` events).
    pub sends: u32,
    /// Retransmission timer firings observed.
    pub rto_fired: u32,
    /// Directed links that dropped frames of this window, with counts.
    pub drops: Vec<((u16, u16), u64)>,
    /// Loss locus, for windows that needed retransmission or never
    /// completed. `None` for clean first-try deliveries.
    pub locus: Option<LossLocus>,
    /// Duplicate suppressions of this window (any node).
    pub dup_suppressed: u32,
    /// A hop record carried a kernel version other than the deployed
    /// one (window raced a redeploy).
    pub stale_version: bool,
    /// The expected path exceeds [`HOP_PATH_CAP`]; inference was
    /// confined to the trusted prefix.
    pub truncated_path: bool,
}

/// The full diagnosis: per-window verdicts plus network-wide heatmaps.
#[derive(Clone, Debug, Default)]
pub struct Diagnosis {
    /// One verdict per window, ordered by key.
    pub verdicts: Vec<WindowVerdict>,
    /// Drop heatmap per directed link `(from, to)`.
    pub link_drops: BTreeMap<(u16, u16), u64>,
    /// Duplicate-suppression heatmap per node wire id.
    pub dup_by_node: BTreeMap<u16, u64>,
    /// Unknown-kernel windows per switch wire id: well-formed NCP
    /// windows a switch had no deployed kernel for (forwarded, not
    /// executed) — the signature of a missing tenant deploy or a window
    /// racing an upgrade.
    pub unknown_kernel: BTreeMap<u16, u64>,
    /// Residence-time attribution per switch wire id.
    pub switch_latency: BTreeMap<u16, LatencyStat>,
    /// Events consumed.
    pub events_seen: usize,
    /// Hop records consumed.
    pub hops_seen: usize,
}

impl Diagnosis {
    /// The single most-incriminated link, as an *undirected* `(lo, hi)`
    /// wire-id pair — "the faulty link" an operator would pull. `None`
    /// when no drops were observed.
    pub fn primary_loss_locus(&self) -> Option<(u16, u16)> {
        let mut undirected: BTreeMap<(u16, u16), u64> = BTreeMap::new();
        for (&(from, to), &n) in &self.link_drops {
            let key = (from.min(to), from.max(to));
            *undirected.entry(key).or_insert(0) += n;
        }
        undirected
            .into_iter()
            .max_by_key(|&(link, n)| (n, std::cmp::Reverse(link)))
            .map(|(link, _)| link)
    }

    /// Count of windows with the given outcome.
    pub fn count(&self, outcome: WindowOutcome) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.outcome == outcome)
            .count()
    }

    /// Renders the deterministic text report.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ncscope diagnosis: {} windows, {} events, {} hop records",
            self.verdicts.len(),
            self.events_seen,
            self.hops_seen
        );
        let _ = writeln!(
            out,
            "  delivered {}  abandoned {}  in-flight {}",
            self.count(WindowOutcome::Delivered),
            self.count(WindowOutcome::Abandoned),
            self.count(WindowOutcome::InFlight)
        );
        if !self.link_drops.is_empty() {
            out.push_str("loss by link (directed, wire ids):\n");
            for (&(from, to), &n) in &self.link_drops {
                let _ = writeln!(out, "  {} -> {}  drops {}", wire(from), wire(to), n);
            }
            if let Some((a, b)) = self.primary_loss_locus() {
                let _ = writeln!(
                    out,
                    "  primary loss locus: link {} <-> {}",
                    wire(a),
                    wire(b)
                );
            }
        }
        if !self.dup_by_node.is_empty() {
            out.push_str("duplicate suppression by node:\n");
            for (&node, &n) in &self.dup_by_node {
                let _ = writeln!(out, "  {}  dups {}", wire(node), n);
            }
        }
        if !self.unknown_kernel.is_empty() {
            out.push_str("unknown-kernel windows by switch (forwarded, not executed):\n");
            for (&sw, &n) in &self.unknown_kernel {
                let _ = writeln!(out, "  {}  windows {}", wire(sw), n);
            }
        }
        if !self.switch_latency.is_empty() {
            out.push_str("switch residence (from hop records):\n");
            for (&sw, stat) in &self.switch_latency {
                let _ = writeln!(
                    out,
                    "  {}  hops {}  mean {}ns  max {}ns",
                    wire(sw),
                    stat.count,
                    stat.mean_ns(),
                    stat.max_ns
                );
            }
        }
        let noisy: Vec<&WindowVerdict> = self
            .verdicts
            .iter()
            .filter(|v| {
                v.outcome != WindowOutcome::Delivered
                    || v.rto_fired > 0
                    || !v.drops.is_empty()
                    || v.stale_version
            })
            .collect();
        if !noisy.is_empty() {
            out.push_str("windows needing attention:\n");
            for v in noisy {
                let _ = write!(
                    out,
                    "  sender {} kernel {} seq {}: {:?}, sends {}, rto {}",
                    v.key.sender, v.key.kernel, v.key.seq, v.outcome, v.sends, v.rto_fired
                );
                if let Some(locus) = v.locus {
                    match locus {
                        LossLocus::Link { from, to } => {
                            let _ = write!(out, ", lost on {} -> {}", wire(from), wire(to));
                        }
                        LossLocus::AfterSwitch { switch } => {
                            let _ = write!(out, ", lost after {}", wire(switch));
                        }
                        LossLocus::Unknown => {
                            let _ = write!(out, ", loss locus unknown");
                        }
                    }
                }
                if v.stale_version {
                    out.push_str(", stale kernel version");
                }
                if v.truncated_path {
                    let _ = write!(out, ", path beyond {HOP_PATH_CAP}-hop cap");
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Formats a wire id as `h<n>` / `s<n>` (0x8000 is the switch bit).
fn wire(id: u16) -> String {
    if id & 0x8000 != 0 {
        format!("s{}", id & 0x7fff)
    } else {
        format!("h{id}")
    }
}

#[derive(Default)]
struct PerWindow {
    sends: u32,
    rto_fired: u32,
    completed: bool,
    acked: bool,
    abandoned: bool,
    dup_suppressed: u32,
    drops: BTreeMap<(u16, u16), u64>,
    witnesses: Vec<u16>,
    send_node: u16,
}

/// Runs the diagnosis over an event snapshot, the receiver-assembled
/// window traces, and the deployment facts.
pub fn diagnose(
    events: &[DecodedEvent],
    traces: &[WindowTrace],
    cfg: &DiagnosisConfig,
) -> Diagnosis {
    let mut diag = Diagnosis {
        events_seen: events.len(),
        ..Diagnosis::default()
    };
    let mut windows: BTreeMap<WindowKey, PerWindow> = BTreeMap::new();

    for ev in events {
        let keyed = windows.entry(ev.key).or_default();
        match ev.event {
            ScopeEvent::WindowSent { .. } => {
                keyed.sends += 1;
                if keyed.send_node == 0 {
                    keyed.send_node = ev.node;
                }
            }
            ScopeEvent::FragmentDropped {
                from, to, ctrl: _, ..
            } => {
                *keyed.drops.entry((from, to)).or_insert(0) += 1;
                *diag.link_drops.entry((from, to)).or_insert(0) += 1;
            }
            ScopeEvent::RtoFired { .. } => keyed.rto_fired += 1,
            ScopeEvent::SwitchExecuted { switch, .. } => keyed.witnesses.push(switch),
            ScopeEvent::SwitchForwarded { switch } => keyed.witnesses.push(switch),
            ScopeEvent::DupSuppressed { at } => {
                keyed.dup_suppressed += 1;
                *diag.dup_by_node.entry(at).or_insert(0) += 1;
            }
            ScopeEvent::WindowCompleted => keyed.completed = true,
            ScopeEvent::WindowAcked => keyed.acked = true,
            ScopeEvent::WindowAbandoned { .. } => keyed.abandoned = true,
            ScopeEvent::UnknownKernel { switch } => {
                *diag.unknown_kernel.entry(switch).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    // Fold receiver-side hop records in: latency attribution, dup
    // flags, stale-version detection and path witnesses.
    let mut stale: BTreeMap<WindowKey, bool> = BTreeMap::new();
    for tr in traces {
        let key = WindowKey::new(tr.sender, tr.kernel, tr.seq);
        for hop in &tr.hops {
            diag.hops_seen += 1;
            let stat = diag.switch_latency.entry(hop.switch).or_default();
            stat.count += 1;
            let residence = hop.ticks_out.saturating_sub(hop.ticks_in);
            stat.total_ns += residence;
            stat.max_ns = stat.max_ns.max(residence);
            if hop.flags & crate::hop::HOP_DUP_SUPPRESSED != 0 {
                *diag.dup_by_node.entry(hop.switch).or_insert(0) += 1;
            }
            windows.entry(key).or_default().witnesses.push(hop.switch);
            if !cfg.deployed_versions.is_empty() {
                if let Some(&want) = cfg.deployed_versions.get(&(hop.switch, hop.kernel)) {
                    if hop.version != want {
                        stale.insert(key, true);
                    }
                }
            }
        }
    }

    let trusted_path: &[u16] = &cfg.expected_path[..cfg.expected_path.len().min(HOP_PATH_CAP)];
    let truncated = cfg.expected_path.len() > HOP_PATH_CAP;

    for (key, w) in windows {
        let outcome = if w.abandoned {
            WindowOutcome::Abandoned
        } else if w.completed || w.acked {
            WindowOutcome::Delivered
        } else {
            WindowOutcome::InFlight
        };
        let lossy = w.rto_fired > 0 || !w.drops.is_empty() || outcome == WindowOutcome::Abandoned;
        let locus = if !lossy {
            None
        } else if let Some((&link, _)) = w
            .drops
            .iter()
            .max_by_key(|&(link, &n)| (n, std::cmp::Reverse(*link)))
        {
            // Ground truth from the link layer decides outright.
            Some(LossLocus::Link {
                from: link.0,
                to: link.1,
            })
        } else {
            // Telemetry inference against the deployed AND path.
            Some(infer_locus(trusted_path, truncated, &w))
        };
        diag.verdicts.push(WindowVerdict {
            key,
            outcome,
            sends: w.sends,
            rto_fired: w.rto_fired,
            drops: w.drops.into_iter().collect(),
            locus,
            dup_suppressed: w.dup_suppressed,
            stale_version: stale.get(&key).copied().unwrap_or(false),
            truncated_path: truncated,
        });
    }
    diag
}

/// Last-witness inference: blame the first link past the deepest
/// on-path switch that saw the window.
fn infer_locus(trusted_path: &[u16], truncated: bool, w: &PerWindow) -> LossLocus {
    if trusted_path.is_empty() {
        return LossLocus::Unknown;
    }
    let deepest = trusted_path.iter().rposition(|sw| w.witnesses.contains(sw));
    match deepest {
        None => {
            // Never reached the first switch: the sender-side link.
            if w.send_node != 0 {
                LossLocus::Link {
                    from: w.send_node,
                    to: trusted_path[0],
                }
            } else {
                LossLocus::Unknown
            }
        }
        Some(i) if i + 1 < trusted_path.len() => LossLocus::Link {
            from: trusted_path[i],
            to: trusted_path[i + 1],
        },
        Some(i) => {
            if truncated {
                // The witness sits at the trust horizon; anything past
                // it is outside the 8-hop cap.
                LossLocus::Unknown
            } else {
                LossLocus::AfterSwitch {
                    switch: trusted_path[i],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::HopRecord;

    fn ev(node: u16, key: WindowKey, event: ScopeEvent, t: u64) -> DecodedEvent {
        DecodedEvent {
            t,
            node,
            key,
            event,
        }
    }

    const S1: u16 = 0x8000;
    const S2: u16 = 0x8001;

    #[test]
    fn clean_delivery_has_no_locus() {
        let key = WindowKey::new(1, 7, 0);
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(
                S1,
                key,
                ScopeEvent::SwitchExecuted {
                    switch: S1,
                    version: 1,
                    fwd: 0,
                },
                5,
            ),
            ev(2, key, ScopeEvent::WindowCompleted, 10),
        ];
        let d = diagnose(&events, &[], &DiagnosisConfig::default());
        assert_eq!(d.verdicts.len(), 1);
        assert_eq!(d.verdicts[0].outcome, WindowOutcome::Delivered);
        assert_eq!(d.verdicts[0].locus, None);
        assert!(d.primary_loss_locus().is_none());
    }

    #[test]
    fn drop_events_decide_the_locus() {
        let key = WindowKey::new(1, 7, 3);
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(
                0,
                key,
                ScopeEvent::FragmentDropped {
                    from: 1,
                    to: S1,
                    ctrl: false,
                    burst: false,
                },
                1,
            ),
            ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 9),
            ev(1, key, ScopeEvent::WindowSent { attempt: 1 }, 9),
            ev(2, key, ScopeEvent::WindowCompleted, 15),
        ];
        let d = diagnose(&events, &[], &DiagnosisConfig::default());
        let v = &d.verdicts[0];
        assert_eq!(v.outcome, WindowOutcome::Delivered);
        assert_eq!(v.sends, 2);
        assert_eq!(v.locus, Some(LossLocus::Link { from: 1, to: S1 }));
        assert_eq!(d.primary_loss_locus(), Some((1, S1)));
    }

    #[test]
    fn last_witness_inference_blames_next_link() {
        // Path h1 -> s1 -> s2 -> h2; only s1 witnessed the window.
        let key = WindowKey::new(1, 7, 0);
        let cfg = DiagnosisConfig {
            expected_path: vec![S1, S2],
            ..DiagnosisConfig::default()
        };
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(
                S1,
                key,
                ScopeEvent::SwitchExecuted {
                    switch: S1,
                    version: 1,
                    fwd: 0,
                },
                4,
            ),
            ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 20),
            ev(1, key, ScopeEvent::WindowAbandoned { retries: 1 }, 40),
        ];
        let d = diagnose(&events, &[], &cfg);
        assert_eq!(d.verdicts[0].outcome, WindowOutcome::Abandoned);
        assert_eq!(
            d.verdicts[0].locus,
            Some(LossLocus::Link { from: S1, to: S2 })
        );

        // No witnesses at all: blame the sender's access link.
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 20),
        ];
        let d = diagnose(&events, &[], &cfg);
        assert_eq!(d.verdicts[0].outcome, WindowOutcome::InFlight);
        assert_eq!(
            d.verdicts[0].locus,
            Some(LossLocus::Link { from: 1, to: S1 })
        );

        // Every switch witnessed it: it died after the last hop.
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(S1, key, ScopeEvent::SwitchForwarded { switch: S1 }, 2),
            ev(
                S2,
                key,
                ScopeEvent::SwitchExecuted {
                    switch: S2,
                    version: 1,
                    fwd: 0,
                },
                4,
            ),
            ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 20),
        ];
        let d = diagnose(&events, &[], &cfg);
        assert_eq!(
            d.verdicts[0].locus,
            Some(LossLocus::AfterSwitch { switch: S2 })
        );
    }

    #[test]
    fn zero_hop_traces_are_harmless() {
        // A sampled window whose telemetry section came back empty
        // (e.g. forwarded by a telemetry-unaware switch).
        let traces = vec![WindowTrace {
            kernel: 7,
            seq: 0,
            sender: 1,
            hops: vec![],
        }];
        let d = diagnose(&[], &traces, &DiagnosisConfig::default());
        assert_eq!(d.hops_seen, 0);
        assert!(d.switch_latency.is_empty());
        // The windowless trace contributes no verdict noise either.
        assert!(d.render_report().contains("0 events"));
    }

    #[test]
    fn paths_beyond_the_hop_cap_yield_truncated_verdicts() {
        let long_path: Vec<u16> = (0..12).map(|i| 0x8000 | i).collect();
        let cfg = DiagnosisConfig {
            expected_path: long_path.clone(),
            ..DiagnosisConfig::default()
        };
        let key = WindowKey::new(1, 7, 0);
        // Witnessed all the way to the cap boundary, then lost.
        let mut events = vec![ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0)];
        for (i, &sw) in long_path.iter().take(HOP_PATH_CAP).enumerate() {
            events.push(ev(
                sw,
                key,
                ScopeEvent::SwitchForwarded { switch: sw },
                i as u64 + 1,
            ));
        }
        events.push(ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 99));
        let d = diagnose(&events, &[], &cfg);
        let v = &d.verdicts[0];
        assert!(v.truncated_path);
        // The loss is past the trust horizon: refuse to guess.
        assert_eq!(v.locus, Some(LossLocus::Unknown));
        assert!(d.render_report().contains("8-hop cap"));

        // A loss *inside* the trusted prefix is still attributed.
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(
                long_path[2],
                key,
                ScopeEvent::SwitchForwarded {
                    switch: long_path[2],
                },
                3,
            ),
            ev(1, key, ScopeEvent::RtoFired { attempt: 1 }, 99),
        ];
        let d = diagnose(&events, &[], &cfg);
        assert_eq!(
            d.verdicts[0].locus,
            Some(LossLocus::Link {
                from: long_path[2],
                to: long_path[3]
            })
        );
    }

    #[test]
    fn stale_kernel_versions_are_flagged() {
        let key = WindowKey::new(1, 7, 2);
        let traces = vec![WindowTrace {
            kernel: 7,
            seq: 2,
            sender: 1,
            hops: vec![HopRecord {
                switch: S1,
                kernel: 7,
                version: 1, // pre-redeploy version
                stages: 3,
                uops: 17,
                flags: 0,
                ticks_in: 100,
                ticks_out: 700,
            }],
        }];
        let mut cfg = DiagnosisConfig::default();
        cfg.deployed_versions.insert((S1, 7), 2); // redeployed as v2
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(2, key, ScopeEvent::WindowCompleted, 10),
        ];
        let d = diagnose(&events, &traces, &cfg);
        assert!(d.verdicts[0].stale_version);
        assert_eq!(d.switch_latency[&S1].mean_ns(), 600);
        assert!(d.render_report().contains("stale kernel version"));

        // Matching version: clean.
        cfg.deployed_versions.insert((S1, 7), 1);
        let d = diagnose(&events, &traces, &cfg);
        assert!(!d.verdicts[0].stale_version);
    }

    #[test]
    fn unknown_kernel_windows_surface_in_the_report() {
        let key = WindowKey::new(1, 99, 0);
        let events = vec![
            ev(1, key, ScopeEvent::WindowSent { attempt: 0 }, 0),
            ev(S1, key, ScopeEvent::UnknownKernel { switch: S1 }, 2),
            ev(S1, key, ScopeEvent::UnknownKernel { switch: S1 }, 9),
            ev(2, key, ScopeEvent::WindowCompleted, 12),
        ];
        let d = diagnose(&events, &[], &DiagnosisConfig::default());
        assert_eq!(d.unknown_kernel[&S1], 2);
        let report = d.render_report();
        assert!(
            report.contains("unknown-kernel windows by switch"),
            "{report}"
        );
        assert!(report.contains("s0  windows 2"), "{report}");
        // The window itself still delivered (it was forwarded).
        assert_eq!(d.verdicts[0].outcome, WindowOutcome::Delivered);
    }

    #[test]
    fn dup_heatmap_merges_events_and_hop_flags() {
        let key = WindowKey::new(1, 7, 0);
        let events = vec![
            ev(2, key, ScopeEvent::DupSuppressed { at: 2 }, 5),
            ev(2, key, ScopeEvent::DupSuppressed { at: 2 }, 9),
        ];
        let traces = vec![WindowTrace {
            kernel: 7,
            seq: 0,
            sender: 1,
            hops: vec![HopRecord {
                switch: S1,
                kernel: 7,
                version: 1,
                stages: 1,
                uops: 4,
                flags: crate::hop::HOP_DUP_SUPPRESSED,
                ticks_in: 0,
                ticks_out: 10,
            }],
        }];
        let d = diagnose(&events, &traces, &DiagnosisConfig::default());
        assert_eq!(d.dup_by_node[&2], 2);
        assert_eq!(d.dup_by_node[&S1], 1);
    }
}
