//! A minimal, dependency-free JSON reader/writer used by the flight
//! recorder and the `ncscope` CLI.
//!
//! The stack has to *round-trip* its own artifacts (flight-recorder
//! dumps, `target/e11-metrics.json`, Chrome trace exports) without
//! pulling serde into a zero-dependency crate, so this module implements
//! just enough of RFC 8259: objects, arrays, strings with escapes,
//! numbers as `f64`, booleans and null. Object key order is preserved so
//! exports stay deterministic under a parse→render round trip.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (numbers only; truncates the fraction).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                kv.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are rare in our artifacts; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_nested_documents() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null},"f":"q\"uote"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        // Round trip is byte-identical for documents we emit ourselves.
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(rendered, src);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\n\u{01}"), "\"a\\\"b\\\\c\\n\\u0001\"");
        let round = parse(&escape("a\"b\\c\n\u{01}")).unwrap();
        assert_eq!(round.as_str(), Some("a\"b\\c\n\u{01}"));
    }
}
