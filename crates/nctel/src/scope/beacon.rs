//! A tiny UDP beacon that serves live scope/registry snapshots to the
//! `ncscope` CLI.
//!
//! Protocol: the client sends the 8-byte probe [`BEACON_PROBE`]; the
//! beacon replies with one datagram containing a flight-recorder JSON
//! snapshot (reason `"on_demand"`). Replies are capped below the UDP
//! datagram limit by truncating the event log to the newest entries —
//! the `events_dropped` field accounts for what was cut.

use super::Scope;
use crate::metrics::Registry;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The probe datagram a client sends to request a snapshot.
pub const BEACON_PROBE: &[u8] = b"NCSCOPE?";

/// Largest reply we will send (one safe UDP datagram).
const MAX_REPLY: usize = 60_000;

/// A running beacon thread; dropping it shuts the thread down.
pub struct Beacon {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Beacon {
    /// The address the beacon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the beacon thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Beacon {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Spawns a beacon on `bind` (e.g. `"127.0.0.1:0"`) serving snapshots
/// of the given scope and registry.
pub fn spawn_beacon(bind: &str, registry: Arc<Registry>, scope: Scope) -> io::Result<Beacon> {
    let sock = UdpSocket::bind(bind)?;
    sock.set_read_timeout(Some(Duration::from_millis(50)))?;
    let local = sock.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_t = stop.clone();
    let handle = std::thread::spawn(move || {
        let mut buf = [0u8; 64];
        while !stop_t.load(Ordering::Relaxed) {
            let Ok((n, peer)) = sock.recv_from(&mut buf) else {
                continue; // timeout tick: re-check the stop flag
            };
            if &buf[..n] != BEACON_PROBE {
                continue;
            }
            // Shrink the event window until the reply fits a datagram.
            let mut max_events = 512usize;
            let mut reply;
            loop {
                reply = scope.flight_json_capped("on_demand", 0, Some(&registry), &[], max_events);
                if reply.len() <= MAX_REPLY || max_events <= 8 {
                    break;
                }
                max_events /= 2;
            }
            let _ = sock.send_to(reply.as_bytes(), peer);
        }
    });
    Ok(Beacon {
        local,
        stop,
        handle: Some(handle),
    })
}

/// Queries a beacon: sends the probe and returns the JSON reply.
pub fn query(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<String> {
    let sock = UdpSocket::bind("0.0.0.0:0")?;
    sock.set_read_timeout(Some(timeout))?;
    sock.send_to(BEACON_PROBE, addr)?;
    let mut buf = vec![0u8; 65_536];
    let (n, _) = sock.recv_from(&mut buf)?;
    String::from_utf8(buf[..n].to_vec()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::super::event::{ScopeEvent, WindowKey};
    use super::super::json;
    use super::*;

    #[test]
    fn beacon_serves_live_snapshots() {
        let registry = Arc::new(Registry::new());
        registry.counter("beacon.test").add(41);
        let scope = Scope::new(64);
        scope.emit(
            5,
            1,
            WindowKey::new(1, 7, 0),
            ScopeEvent::WindowSent { attempt: 0 },
        );
        let beacon = spawn_beacon("127.0.0.1:0", registry, scope.clone()).unwrap();
        let reply = query(beacon.addr(), Duration::from_secs(2)).unwrap();
        let doc = json::parse(&reply).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("ncscope-flight"));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("on_demand"));
        assert_eq!(doc.get("events").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            doc.get("metrics")
                .unwrap()
                .get("beacon.test")
                .unwrap()
                .as_u64(),
            Some(41)
        );
        beacon.shutdown();
    }
}
