//! Typed scope events and the bounded, lock-free event ring.
//!
//! Every event is keyed by `(sender, kernel, window seq)` — the same key
//! the NCP header and the in-band hop records carry — so host-side,
//! transport-side and switch-side observations of one window all join
//! the same causal chain. Events are stored flattened (one fixed-size
//! record of five 64-bit words) so the ring can be written from any
//! thread without locks: each slot is a seqlock of plain atomics, and a
//! single `fetch_add` cursor hands out slots.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// The causal key every event carries: the NCP window identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WindowKey {
    /// Originating sender id (NCP header `sender`).
    pub sender: u16,
    /// Kernel id the window addressed.
    pub kernel: u16,
    /// Window sequence number.
    pub seq: u32,
}

impl WindowKey {
    /// Builds a key from its three parts.
    pub fn new(sender: u16, kernel: u16, seq: u32) -> Self {
        WindowKey {
            sender,
            kernel,
            seq,
        }
    }
}

/// A typed observation about one window (or, for transport/control
/// events, about the stream it belongs to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeEvent {
    /// A window frame was put on the wire by a host (first transmission
    /// or retransmission; `attempt` is 0 for the first send).
    WindowSent {
        /// Retransmission count at send time.
        attempt: u32,
    },
    /// The link `from → to` (node wire ids) dropped a frame of this
    /// window.
    FragmentDropped {
        /// Transmitting node, wire id.
        from: u16,
        /// Receiving node, wire id.
        to: u16,
        /// True when the dropped frame was an ACK/NACK control frame.
        ctrl: bool,
        /// True when the drop was part of a burst-loss episode.
        burst: bool,
    },
    /// The reliable sender's retransmission timer fired for this window.
    RtoFired {
        /// Which retry this is (1 = first retransmission).
        attempt: u32,
    },
    /// A NACK for this window reached the sender.
    NackReceived,
    /// A switch executed the window's kernel.
    SwitchExecuted {
        /// Switch wire id.
        switch: u16,
        /// Deployed kernel version that ran.
        version: u16,
        /// Forwarding verdict (0 pass, 1 reflect, 2 bcast, 3 drop,
        /// 4 labelled pass).
        fwd: u8,
    },
    /// A switch forwarded the frame without executing a kernel.
    SwitchForwarded {
        /// Switch wire id.
        switch: u16,
    },
    /// A replay filter (on-switch or host-edge) suppressed a duplicate
    /// of this window.
    DupSuppressed {
        /// Wire id of the node that suppressed it.
        at: u16,
    },
    /// The receiving host delivered the window to the application.
    WindowCompleted,
    /// The reliable sender retired the window after an ACK.
    WindowAcked,
    /// The reliable sender gave up on the window (delivery timeout).
    WindowAbandoned {
        /// Retries spent before abandoning.
        retries: u32,
    },
    /// The reliable sender's congestion window changed.
    CwndChanged {
        /// New congestion window, in windows.
        cwnd: u32,
    },
    /// A frame failed NCP validation at a host edge.
    MalformedFrame,
    /// The reassembler evicted a stale partial window.
    ReassemblyEvicted {
        /// Total evictions so far at this host.
        evictions: u64,
    },
    /// The deploy-time lint gate denied a switch module.
    LintDenied {
        /// Wire id of the denied switch.
        switch: u16,
    },
    /// A switch received a well-formed NCP window addressing a kernel id
    /// it has no deployed kernel for — the failure mode a botched
    /// multi-tenant deploy or a racing upgrade exposes. The window is
    /// plainly forwarded (hitless), not silently dropped; this event and
    /// the `sim.unknown_kernel` counter make the mismatch visible.
    UnknownKernel {
        /// Wire id of the switch that lacked the kernel.
        switch: u16,
    },
}

impl ScopeEvent {
    /// Flattens the event into `(kind, a, b)` words.
    pub fn pack(self) -> (u8, u64, u64) {
        match self {
            ScopeEvent::WindowSent { attempt } => (1, attempt as u64, 0),
            ScopeEvent::FragmentDropped {
                from,
                to,
                ctrl,
                burst,
            } => (
                2,
                ((from as u64) << 16) | to as u64,
                (ctrl as u64) | ((burst as u64) << 1),
            ),
            ScopeEvent::RtoFired { attempt } => (3, attempt as u64, 0),
            ScopeEvent::NackReceived => (4, 0, 0),
            ScopeEvent::SwitchExecuted {
                switch,
                version,
                fwd,
            } => (
                5,
                ((switch as u64) << 24) | ((version as u64) << 8) | fwd as u64,
                0,
            ),
            ScopeEvent::SwitchForwarded { switch } => (6, switch as u64, 0),
            ScopeEvent::DupSuppressed { at } => (7, at as u64, 0),
            ScopeEvent::WindowCompleted => (8, 0, 0),
            ScopeEvent::WindowAcked => (9, 0, 0),
            ScopeEvent::WindowAbandoned { retries } => (10, retries as u64, 0),
            ScopeEvent::CwndChanged { cwnd } => (11, cwnd as u64, 0),
            ScopeEvent::MalformedFrame => (12, 0, 0),
            ScopeEvent::ReassemblyEvicted { evictions } => (13, evictions, 0),
            ScopeEvent::LintDenied { switch } => (14, switch as u64, 0),
            ScopeEvent::UnknownKernel { switch } => (15, switch as u64, 0),
        }
    }

    /// Rebuilds the event from flattened words; `None` for unknown
    /// kinds (e.g. an artifact written by a newer stack).
    pub fn unpack(kind: u8, a: u64, b: u64) -> Option<ScopeEvent> {
        Some(match kind {
            1 => ScopeEvent::WindowSent { attempt: a as u32 },
            2 => ScopeEvent::FragmentDropped {
                from: (a >> 16) as u16,
                to: a as u16,
                ctrl: b & 1 != 0,
                burst: b & 2 != 0,
            },
            3 => ScopeEvent::RtoFired { attempt: a as u32 },
            4 => ScopeEvent::NackReceived,
            5 => ScopeEvent::SwitchExecuted {
                switch: (a >> 24) as u16,
                version: (a >> 8) as u16,
                fwd: a as u8,
            },
            6 => ScopeEvent::SwitchForwarded { switch: a as u16 },
            7 => ScopeEvent::DupSuppressed { at: a as u16 },
            8 => ScopeEvent::WindowCompleted,
            9 => ScopeEvent::WindowAcked,
            10 => ScopeEvent::WindowAbandoned { retries: a as u32 },
            11 => ScopeEvent::CwndChanged { cwnd: a as u32 },
            12 => ScopeEvent::MalformedFrame,
            13 => ScopeEvent::ReassemblyEvicted { evictions: a },
            14 => ScopeEvent::LintDenied { switch: a as u16 },
            15 => ScopeEvent::UnknownKernel { switch: a as u16 },
            _ => return None,
        })
    }

    /// Stable snake_case name for the flattened `kind` code, used in
    /// JSON artifacts.
    pub fn kind_name(kind: u8) -> &'static str {
        match kind {
            1 => "window_sent",
            2 => "fragment_dropped",
            3 => "rto_fired",
            4 => "nack_received",
            5 => "switch_executed",
            6 => "switch_forwarded",
            7 => "dup_suppressed",
            8 => "window_completed",
            9 => "window_acked",
            10 => "window_abandoned",
            11 => "cwnd_changed",
            12 => "malformed_frame",
            13 => "reassembly_evicted",
            14 => "lint_denied",
            15 => "unknown_kernel",
            _ => "unknown",
        }
    }

    /// Inverse of [`ScopeEvent::kind_name`]; 0 for unknown names.
    pub fn kind_code(name: &str) -> u8 {
        match name {
            "window_sent" => 1,
            "fragment_dropped" => 2,
            "rto_fired" => 3,
            "nack_received" => 4,
            "switch_executed" => 5,
            "switch_forwarded" => 6,
            "dup_suppressed" => 7,
            "window_completed" => 8,
            "window_acked" => 9,
            "window_abandoned" => 10,
            "cwnd_changed" => 11,
            "malformed_frame" => 12,
            "reassembly_evicted" => 13,
            "lint_denied" => 14,
            "unknown_kernel" => 15,
            _ => 0,
        }
    }
}

/// One flattened ring entry: timestamp, emitting node, causal key and
/// the packed event words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScopeEventRecord {
    /// Event time in nanoseconds (sim ticks or wall clock).
    pub t: u64,
    /// Wire id of the emitting node (0 when unknown).
    pub node: u16,
    /// Causal key: originating sender id.
    pub sender: u16,
    /// Causal key: kernel id.
    pub kernel: u16,
    /// Causal key: window sequence number.
    pub seq: u32,
    /// Packed event kind code.
    pub kind: u8,
    /// First kind-specific word.
    pub a: u64,
    /// Second kind-specific word.
    pub b: u64,
}

impl ScopeEventRecord {
    /// The causal key of this record.
    pub fn key(&self) -> WindowKey {
        WindowKey::new(self.sender, self.kernel, self.seq)
    }

    /// Decodes the packed words back into the typed event, if the kind
    /// is known.
    pub fn event(&self) -> Option<ScopeEvent> {
        ScopeEvent::unpack(self.kind, self.a, self.b)
    }
}

/// A record paired with its decoded event — the unit the analysis
/// engine consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedEvent {
    /// Event time in nanoseconds.
    pub t: u64,
    /// Wire id of the emitting node.
    pub node: u16,
    /// The window this event belongs to.
    pub key: WindowKey,
    /// The typed event.
    pub event: ScopeEvent,
}

const WORDS: usize = 5;

struct Slot {
    /// Seqlock version: `2 * n + 1` while event `n` is being written
    /// into this slot, `2 * n + 2` once it is complete.
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// A bounded, lock-free multi-producer event ring.
///
/// Writers claim a global sequence number with one `fetch_add` and fill
/// the slot `n % capacity` under a per-slot seqlock; when the ring wraps,
/// old events are overwritten (lossy by design — this is a flight
/// recorder, not a log shipper). [`EventRing::snapshot`] collects every
/// slot whose seqlock is stable, oldest first, without blocking writers.
pub struct EventRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("logged", &self.logged())
            .finish()
    }
}

impl EventRing {
    /// Creates a ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> EventRing {
        let cap = cap.max(1);
        let slots = (0..cap)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed.
    pub fn logged(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.logged().saturating_sub(self.slots.len() as u64)
    }

    /// Appends a record. Lock-free: one atomic `fetch_add` plus six
    /// relaxed stores; never blocks or allocates.
    pub fn push(&self, r: ScopeEventRecord) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let w1 = ((r.node as u64) << 48)
            | ((r.sender as u64) << 32)
            | ((r.kernel as u64) << 16)
            | r.kind as u64;
        slot.version.store(2 * n + 1, Ordering::Release);
        slot.words[0].store(r.t, Ordering::Relaxed);
        slot.words[1].store(w1, Ordering::Relaxed);
        slot.words[2].store(r.seq as u64, Ordering::Relaxed);
        slot.words[3].store(r.a, Ordering::Relaxed);
        slot.words[4].store(r.b, Ordering::Relaxed);
        slot.version.store(2 * n + 2, Ordering::Release);
    }

    /// Collects the currently buffered events, oldest first. Slots being
    /// overwritten concurrently are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<ScopeEventRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for n in start..head {
            let slot = &self.slots[(n % cap) as usize];
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 != 2 * n + 2 {
                continue; // still writing, or already overwritten
            }
            let t = slot.words[0].load(Ordering::Relaxed);
            let w1 = slot.words[1].load(Ordering::Relaxed);
            let seq = slot.words[2].load(Ordering::Relaxed);
            let a = slot.words[3].load(Ordering::Relaxed);
            let b = slot.words[4].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                continue; // overwritten mid-read
            }
            out.push(ScopeEventRecord {
                t,
                node: (w1 >> 48) as u16,
                sender: (w1 >> 32) as u16,
                kernel: (w1 >> 16) as u16,
                seq: seq as u32,
                kind: w1 as u8,
                a,
                b,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(seq: u32, kind: u8) -> ScopeEventRecord {
        ScopeEventRecord {
            t: seq as u64 * 10,
            node: 1,
            sender: 1,
            kernel: 7,
            seq,
            kind,
            a: seq as u64,
            b: 0,
        }
    }

    #[test]
    fn events_round_trip_through_packing() {
        let all = [
            ScopeEvent::WindowSent { attempt: 3 },
            ScopeEvent::FragmentDropped {
                from: 1,
                to: 0x8000,
                ctrl: true,
                burst: false,
            },
            ScopeEvent::RtoFired { attempt: 2 },
            ScopeEvent::NackReceived,
            ScopeEvent::SwitchExecuted {
                switch: 0x8000,
                version: 2,
                fwd: 3,
            },
            ScopeEvent::SwitchForwarded { switch: 0x8001 },
            ScopeEvent::DupSuppressed { at: 2 },
            ScopeEvent::WindowCompleted,
            ScopeEvent::WindowAcked,
            ScopeEvent::WindowAbandoned { retries: 16 },
            ScopeEvent::CwndChanged { cwnd: 32 },
            ScopeEvent::MalformedFrame,
            ScopeEvent::ReassemblyEvicted { evictions: 9 },
            ScopeEvent::LintDenied { switch: 0x8000 },
            ScopeEvent::UnknownKernel { switch: 0x8002 },
        ];
        for ev in all {
            let (k, a, b) = ev.pack();
            assert_eq!(ScopeEvent::unpack(k, a, b), Some(ev));
            assert_eq!(
                ScopeEvent::kind_code(ScopeEvent::kind_name(k)),
                k,
                "name round trip for {ev:?}"
            );
        }
        assert_eq!(ScopeEvent::unpack(99, 0, 0), None);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = EventRing::new(4);
        for seq in 0..10 {
            ring.push(rec(seq, 1));
        }
        assert_eq!(ring.logged(), 10);
        assert_eq!(ring.dropped(), 6);
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn concurrent_pushes_are_never_torn() {
        let ring = Arc::new(EventRing::new(256));
        let writers: Vec<_> = (0..4u16)
            .map(|w| {
                let r = ring.clone();
                std::thread::spawn(move || {
                    for seq in 0..2000u32 {
                        r.push(ScopeEventRecord {
                            t: seq as u64,
                            node: w,
                            sender: w,
                            kernel: w,
                            seq,
                            kind: 1,
                            a: (w as u64) << 32 | seq as u64,
                            b: 0,
                        });
                    }
                })
            })
            .collect();
        // Snapshot concurrently with the writers.
        for _ in 0..50 {
            for r in ring.snapshot() {
                // Consistency invariant: every field derived from the
                // same (writer, seq) pair.
                assert_eq!(r.node, r.sender);
                assert_eq!(r.a, (r.node as u64) << 32 | r.seq as u64);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.logged(), 8000);
        assert_eq!(ring.snapshot().len(), 256);
    }
}
