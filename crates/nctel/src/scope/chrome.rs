//! Chrome `trace_event` JSON export: merges nclc compile spans, runtime
//! window lifecycles and in-band switch hop records into one timeline
//! that Perfetto / `chrome://tracing` can open directly.
//!
//! Layout of the exported trace:
//!
//! * **pid 0 "nclc compile"** — one complete (`ph:"X"`) slice per
//!   compile span, laid end to end from t=0.
//! * **pid 1 "hosts"** — one slice per window lifecycle (first
//!   `WindowSent` to completion/abandonment), on the sending host's
//!   thread row, plus instant (`ph:"i"`) markers for retransmission
//!   timers, NACKs, drops and duplicate suppressions.
//! * **pid 2 "switches"** — one slice per hop record (`ticks_in` to
//!   `ticks_out`) on the stamping switch's thread row.
//!
//! Timestamps are microseconds (the trace_event unit); the stack's
//! nanosecond ticks keep sub-microsecond precision as fractional `ts`.

use super::event::{DecodedEvent, ScopeEvent, WindowKey};
use super::json::escape;
use crate::trace::WindowTrace;
use std::collections::BTreeMap;

const PID_COMPILE: u32 = 0;
const PID_HOSTS: u32 = 1;
const PID_SWITCHES: u32 = 2;

/// Formats nanoseconds as a microsecond `ts` value with ns precision.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    out.push_str(body);
}

/// Builds the complete trace_event JSON document.
///
/// `compile_spans` come from [`crate::Timeline::spans`]; `events` from a
/// scope snapshot; `traces` from the receiver's [`crate::TraceRing`].
/// Any of the three may be empty.
pub fn chrome_trace(
    compile_spans: &[(String, u64)],
    events: &[DecodedEvent],
    traces: &[WindowTrace],
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;

    // Process/thread metadata so Perfetto shows readable row names.
    for (pid, name) in [
        (PID_COMPILE, "nclc compile"),
        (PID_HOSTS, "hosts"),
        (PID_SWITCHES, "switches"),
    ] {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                escape(name)
            ),
        );
    }

    // Compile spans, end to end.
    let mut t = 0u64;
    for (name, ns) in compile_spans {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"compile\",\"pid\":{PID_COMPILE},\
                 \"tid\":0,\"ts\":{},\"dur\":{}}}",
                escape(name),
                us(t),
                us(*ns)
            ),
        );
        t += ns;
    }

    // Window lifecycles: first send → terminal event (or last sighting).
    struct Life {
        start: Option<u64>,
        end: u64,
        outcome: &'static str,
        sends: u32,
    }
    let mut lives: BTreeMap<WindowKey, Life> = BTreeMap::new();
    for ev in events {
        let life = lives.entry(ev.key).or_insert(Life {
            start: None,
            end: 0,
            outcome: "in-flight",
            sends: 0,
        });
        life.end = life.end.max(ev.t);
        match ev.event {
            ScopeEvent::WindowSent { .. } => {
                life.sends += 1;
                if life.start.is_none() {
                    life.start = Some(ev.t);
                }
            }
            ScopeEvent::WindowCompleted => life.outcome = "delivered",
            ScopeEvent::WindowAcked if life.outcome == "in-flight" => {
                life.outcome = "acked";
            }
            ScopeEvent::WindowAbandoned { .. } => life.outcome = "abandoned",
            _ => {}
        }
    }
    for (key, life) in &lives {
        let Some(start) = life.start else { continue };
        let name = format!("k{} w{}", key.kernel, key.seq);
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"window\",\"pid\":{PID_HOSTS},\
                 \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"outcome\":{},\"sends\":{}}}}}",
                escape(&name),
                key.sender,
                us(start),
                us(life.end.saturating_sub(start)),
                escape(life.outcome),
                life.sends
            ),
        );
    }

    // Instant markers for the noisy moments.
    for ev in events {
        let (name, detail) = match ev.event {
            ScopeEvent::RtoFired { attempt } => ("rto", format!("\"attempt\":{attempt}")),
            ScopeEvent::NackReceived => ("nack", String::new()),
            ScopeEvent::FragmentDropped { from, to, .. } => {
                ("drop", format!("\"from\":{from},\"to\":{to}"))
            }
            ScopeEvent::DupSuppressed { at } => ("dup", format!("\"at\":{at}")),
            ScopeEvent::CwndChanged { cwnd } => ("cwnd", format!("\"cwnd\":{cwnd}")),
            _ => continue,
        };
        let args = format!(
            "{{\"kernel\":{},\"seq\":{}{}{}}}",
            ev.key.kernel,
            ev.key.seq,
            if detail.is_empty() { "" } else { "," },
            detail
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{},\"cat\":\"transport\",\
                 \"pid\":{PID_HOSTS},\"tid\":{},\"ts\":{},\"args\":{args}}}",
                escape(name),
                ev.key.sender,
                us(ev.t)
            ),
        );
    }

    // Per-hop switch slices from the in-band records.
    for tr in traces {
        for hop in &tr.hops {
            let name = format!("k{} v{} w{}", hop.kernel, hop.version, tr.seq);
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"switch\",\"pid\":{PID_SWITCHES},\
                     \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"sender\":{},\"stages\":{},\
                     \"uops\":{},\"flags\":{}}}}}",
                    escape(&name),
                    hop.switch & 0x7fff,
                    us(hop.ticks_in),
                    us(hop.ticks_out.saturating_sub(hop.ticks_in)),
                    tr.sender,
                    hop.stages,
                    hop.uops,
                    hop.flags
                ),
            );
        }
    }

    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::json;
    use super::*;
    use crate::hop::HopRecord;

    #[test]
    fn export_is_valid_trace_event_json_with_all_three_layers() {
        let spans = vec![
            ("parse".to_string(), 1_500u64),
            ("lower".to_string(), 2_000),
        ];
        let key = WindowKey::new(1, 7, 0);
        let events = vec![
            DecodedEvent {
                t: 100,
                node: 1,
                key,
                event: ScopeEvent::WindowSent { attempt: 0 },
            },
            DecodedEvent {
                t: 2_100,
                node: 1,
                key,
                event: ScopeEvent::RtoFired { attempt: 1 },
            },
            DecodedEvent {
                t: 3_000,
                node: 2,
                key,
                event: ScopeEvent::WindowCompleted,
            },
        ];
        let traces = vec![WindowTrace {
            kernel: 7,
            seq: 0,
            sender: 1,
            hops: vec![HopRecord {
                switch: 0x8000,
                kernel: 7,
                version: 1,
                stages: 3,
                uops: 17,
                flags: 0,
                ticks_in: 600,
                ticks_out: 1_200,
            }],
        }];
        let doc = chrome_trace(&spans, &events, &traces);
        let parsed = json::parse(&doc).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"parse"), "compile span present");
        assert!(names.contains(&"k7 w0"), "window lifecycle present");
        assert!(names.contains(&"k7 v1 w0"), "switch hop slice present");
        assert!(names.contains(&"rto"), "instant marker present");
        // Every event carries the mandatory trace_event fields.
        for e in evs {
            assert!(e.get("ph").is_some() && e.get("pid").is_some());
        }
        // The window slice spans first send → completion (2.9 us).
        let window = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("k7 w0"))
            .unwrap();
        assert_eq!(window.get("dur").unwrap().as_f64(), Some(2.9));
    }

    #[test]
    fn empty_inputs_still_produce_a_parseable_document() {
        let doc = chrome_trace(&[], &[], &[]);
        let parsed = json::parse(&doc).unwrap();
        // Only the three metadata records.
        assert_eq!(
            parsed.get("traceEvents").unwrap().as_arr().unwrap().len(),
            3
        );
    }
}
