//! The in-band telemetry postcard: a fixed-size, big-endian **hop
//! record** each on-path switch appends to a window, and the section
//! framing that carries a run of them after the NCP v1 payload.
//!
//! Wire layout (DESIGN.md §4.9). A frame whose NCP header has
//! `FLAG_TELEMETRY` (0x40) set carries, *after* the encoded window:
//!
//! ```text
//! [count: u8] [count × 32-byte HopRecord]
//! ```
//!
//! Each `HopRecord` is 32 bytes, all fields big-endian:
//!
//! | offset | field    | meaning                                   |
//! |-------:|----------|-------------------------------------------|
//! | 0      | switch   | u16 wire id of the stamping switch        |
//! | 2      | kernel   | u16 kernel id the window addressed        |
//! | 4      | version  | u16 deployed kernel version at the switch |
//! | 6      | stages   | u16 PISA stages the kernel occupies       |
//! | 8      | uops     | u32 interpreter-equivalent kernel steps   |
//! | 12     | flags    | u16 ([`HOP_DUP_SUPPRESSED`], …)           |
//! | 14     | reserved | u16, must be zero                         |
//! | 16     | ticks_in | u64 sim-time at switch ingress (ns)       |
//! | 24     | ticks_out| u64 sim-time at switch egress (ns)        |
//!
//! Because the NCP length fields (`nchunks`/mask/`ext_len`) fully
//! determine the payload length, decoders that do not understand
//! telemetry simply never look past the payload: the section is
//! backward compatible by construction, and `version`/`stages`/`uops`
//! come from deploy-time metadata so the interpreter, fast-path, and
//! PISA executions of the same window stamp bit-identical records.

/// Size in bytes of one encoded [`HopRecord`].
pub const HOP_RECORD_LEN: usize = 32;

/// Hop-record flag: the switch suppressed this window as an NCP-R
/// replay (its `__nclr_dups_*` registers advanced while processing it).
pub const HOP_DUP_SUPPRESSED: u16 = 0x0001;

/// Hop-record flag: the switch forwarded the frame without executing a
/// kernel on it (no datapath, unknown kernel, or control traffic).
pub const HOP_FORWARDED_ONLY: u16 = 0x0002;

/// One switch's stamp on a window's telemetry section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopRecord {
    /// Wire id of the stamping switch.
    pub switch: u16,
    /// Kernel id the window addressed.
    pub kernel: u16,
    /// Deployed kernel version at this switch (1-based module index).
    pub version: u16,
    /// PISA stages the kernel's pipeline occupies at this switch.
    pub stages: u16,
    /// Fast-path micro-op count for the kernel at this switch.
    pub uops: u32,
    /// Flag bits ([`HOP_DUP_SUPPRESSED`], [`HOP_FORWARDED_ONLY`]).
    pub flags: u16,
    /// Sim-time ticks (ns) when the frame entered the switch.
    pub ticks_in: u64,
    /// Sim-time ticks (ns) when the frame left the switch.
    pub ticks_out: u64,
}

impl HopRecord {
    /// Encodes the record into its 32-byte big-endian wire form.
    pub fn encode(&self) -> [u8; HOP_RECORD_LEN] {
        let mut b = [0u8; HOP_RECORD_LEN];
        b[0..2].copy_from_slice(&self.switch.to_be_bytes());
        b[2..4].copy_from_slice(&self.kernel.to_be_bytes());
        b[4..6].copy_from_slice(&self.version.to_be_bytes());
        b[6..8].copy_from_slice(&self.stages.to_be_bytes());
        b[8..12].copy_from_slice(&self.uops.to_be_bytes());
        b[12..14].copy_from_slice(&self.flags.to_be_bytes());
        // b[14..16] reserved, zero.
        b[16..24].copy_from_slice(&self.ticks_in.to_be_bytes());
        b[24..32].copy_from_slice(&self.ticks_out.to_be_bytes());
        b
    }

    /// Decodes a record from `b`; `None` unless exactly
    /// [`HOP_RECORD_LEN`] bytes with a zero reserved field.
    pub fn decode(b: &[u8]) -> Option<HopRecord> {
        if b.len() != HOP_RECORD_LEN || b[14] != 0 || b[15] != 0 {
            return None;
        }
        let be16 = |o: usize| u16::from_be_bytes([b[o], b[o + 1]]);
        Some(HopRecord {
            switch: be16(0),
            kernel: be16(2),
            version: be16(4),
            stages: be16(6),
            uops: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
            flags: be16(12),
            ticks_in: u64::from_be_bytes(b[16..24].try_into().unwrap()),
            ticks_out: u64::from_be_bytes(b[24..32].try_into().unwrap()),
        })
    }
}

/// An empty telemetry section: count byte of zero, no records. This is
/// what a sending host appends when it arms `FLAG_TELEMETRY`.
pub fn section_init() -> Vec<u8> {
    vec![0]
}

/// Whether `bytes` is a well-formed telemetry section: a count byte
/// followed by exactly `count` records.
pub fn section_valid(bytes: &[u8]) -> bool {
    !bytes.is_empty() && bytes.len() == 1 + HOP_RECORD_LEN * bytes[0] as usize
}

/// Appends `rec` to a well-formed section in place, bumping the count
/// byte. Returns `false` (leaving the section untouched) if the section
/// is malformed or already holds 255 records.
pub fn section_append(section: &mut Vec<u8>, rec: &HopRecord) -> bool {
    if !section_valid(section) || section[0] == u8::MAX {
        return false;
    }
    section[0] += 1;
    section.extend_from_slice(&rec.encode());
    true
}

/// Decodes every record of a well-formed section; `None` if malformed.
pub fn section_records(bytes: &[u8]) -> Option<Vec<HopRecord>> {
    if !section_valid(bytes) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes[0] as usize);
    for i in 0..bytes[0] as usize {
        let at = 1 + i * HOP_RECORD_LEN;
        out.push(HopRecord::decode(&bytes[at..at + HOP_RECORD_LEN])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u16) -> HopRecord {
        HopRecord {
            switch: 10 + i,
            kernel: 1,
            version: 2,
            stages: 3,
            uops: 40 + i as u32,
            flags: HOP_DUP_SUPPRESSED,
            ticks_in: 1_000 + i as u64,
            ticks_out: 1_600 + i as u64,
        }
    }

    #[test]
    fn record_roundtrips_bit_identically() {
        let r = sample(0);
        let b = r.encode();
        assert_eq!(HopRecord::decode(&b), Some(r));
        assert_eq!(HopRecord::decode(&b).unwrap().encode(), b);
    }

    #[test]
    fn decode_rejects_bad_lengths_and_reserved() {
        let b = sample(0).encode();
        assert_eq!(HopRecord::decode(&b[..31]), None);
        let mut bad = b;
        bad[15] = 1;
        assert_eq!(HopRecord::decode(&bad), None);
    }

    #[test]
    fn section_grows_and_decodes() {
        let mut s = section_init();
        assert!(section_valid(&s));
        assert_eq!(section_records(&s), Some(vec![]));
        for i in 0..3 {
            assert!(section_append(&mut s, &sample(i)));
        }
        assert_eq!(s.len(), 1 + 3 * HOP_RECORD_LEN);
        let recs = section_records(&s).unwrap();
        assert_eq!(recs, vec![sample(0), sample(1), sample(2)]);
    }

    #[test]
    fn malformed_sections_are_rejected() {
        assert!(!section_valid(&[]));
        assert!(!section_valid(&[1])); // claims 1 record, has none
        let mut s = section_init();
        s.push(0); // trailing garbage
        assert!(!section_valid(&s));
        assert_eq!(section_records(&s), None);
        let mut t = vec![7]; // count lies
        t.extend_from_slice(&sample(0).encode());
        assert!(!section_append(&mut t, &sample(1)));
        assert_eq!(t.len(), 1 + HOP_RECORD_LEN);
    }
}
