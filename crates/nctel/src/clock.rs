//! A monotonic nanosecond clock for RTO and trace timestamps.
//!
//! `std::time::Instant` is already monotonic, but code that previously
//! mixed wall-clock reads onto the stats path can regress when the
//! system clock steps backwards (NTP adjustment, VM migration). This
//! clock pins an `Instant` origin *and* latches the largest value ever
//! returned, so timestamps are non-decreasing even if the underlying
//! source misbehaves — and the latch is exposed ([`MonotonicClock::clamp`])
//! so tests can feed a backwards-stepping source and watch it hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic, non-decreasing nanosecond clock (thread-safe).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
    last: AtomicU64,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            origin: Instant::now(),
            last: AtomicU64::new(0),
        }
    }
}

impl MonotonicClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds since the clock was created; never decreases across
    /// calls, even from concurrent threads.
    pub fn now(&self) -> u64 {
        self.clamp(self.origin.elapsed().as_nanos() as u64)
    }

    /// Folds an externally read timestamp through the monotonic latch:
    /// returns `max(raw, any value previously returned)` and remembers
    /// it. This is the regression surface: a source that steps
    /// backwards cannot drag the clock with it.
    pub fn clamp(&self, raw: u64) -> u64 {
        let prev = self.last.fetch_max(raw, Ordering::Relaxed);
        prev.max(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_nondecreasing() {
        let c = MonotonicClock::new();
        let mut prev = 0;
        for _ in 0..1000 {
            let t = c.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn backwards_step_is_latched() {
        let c = MonotonicClock::new();
        assert_eq!(c.clamp(100), 100);
        // The source steps backwards; the clock must not.
        assert_eq!(c.clamp(40), 100);
        assert_eq!(c.clamp(100), 100);
        assert_eq!(c.clamp(180), 180);
    }
}
