//! Compile-pipeline tracing: named, accumulated timing spans.
//!
//! `nclc` wraps each compiler stage (parse → sema → lower → passes →
//! lint → PISA-map → P4-emit) in [`Timeline::time`]; repeated spans
//! with the same name (per-location lint/backend loops) accumulate.
//! `nclc --emit timing` renders the result.

use std::time::Instant;

/// An ordered list of named spans with accumulated durations (ns).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    spans: Vec<(String, u64)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to span `name`, creating it (at the end) on first use.
    pub fn record(&mut self, name: &str, ns: u64) {
        if let Some((_, d)) = self.spans.iter_mut().find(|(n, _)| n == name) {
            *d += ns;
        } else {
            self.spans.push((name.to_string(), ns));
        }
    }

    /// Runs `f`, charging its wall time to span `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_nanos() as u64);
        out
    }

    /// The spans in first-recorded order as `(name, ns)` pairs.
    pub fn spans(&self) -> &[(String, u64)] {
        &self.spans
    }

    /// Total time across all spans (ns).
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(|(_, d)| d).sum()
    }

    /// Renders a fixed-width table of spans with µs and share-of-total
    /// columns, suitable for `--emit timing`.
    pub fn render(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::from("stage                      time_us   share\n");
        for (name, ns) in &self.spans {
            out.push_str(&format!(
                "{name:<24} {:>10.1}  {:>5.1}%\n",
                *ns as f64 / 1_000.0,
                *ns as f64 * 100.0 / total as f64
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>10.1}  100.0%\n",
            "total",
            self.total_ns() as f64 / 1_000.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_by_name_in_order() {
        let mut t = Timeline::new();
        t.record("parse", 100);
        t.record("lint", 40);
        t.record("lint", 60);
        assert_eq!(
            t.spans(),
            &[("parse".to_string(), 100), ("lint".to_string(), 100)]
        );
        assert_eq!(t.total_ns(), 200);
    }

    #[test]
    fn time_charges_the_closure_and_returns_its_value() {
        let mut t = Timeline::new();
        let v = t.time("work", || 42);
        assert_eq!(v, 42);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn render_lists_every_span_and_total() {
        let mut t = Timeline::new();
        t.record("parse", 1_500);
        t.record("emit", 500);
        let s = t.render();
        assert!(s.contains("parse"));
        assert!(s.contains("emit"));
        assert!(s.contains("total"));
        assert!(s.contains("100.0%"));
    }
}
