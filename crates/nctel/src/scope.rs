//! # ncscope — window-level flight recorder and network diagnosis
//!
//! PR 4's telemetry gave the stack raw signals (registry metrics,
//! in-band hop records, compile spans); this module is the layer that
//! *interprets* them (DESIGN.md §4.10):
//!
//! * [`event`] — a bounded, lock-free ring of typed [`ScopeEvent`]s,
//!   keyed by `(sender, kernel, window seq)` so host, transport and
//!   switch observations of one window join a single causal chain. The
//!   cheap-clone [`Scope`] handle is attached to `NclHost`, the NCP-R
//!   sender/receiver, the UDP endpoint and the simulator.
//! * the **flight recorder** — [`Scope::flight_record`] snapshots ring +
//!   registry + traces to a JSON artifact on failure paths (delivery
//!   timeout, lint-gate denial, reassembler eviction storm) or on
//!   demand; [`parse_flight`] round-trips the artifact.
//! * [`analysis`] — folds events + hop records into per-window
//!   [`WindowVerdict`]s: loss-locus attribution, per-switch latency,
//!   replay/dup heatmaps, with a deterministic text report.
//! * [`chrome`] — a Chrome `trace_event` exporter merging compile
//!   spans, window lifecycles and hop records into one Perfetto-openable
//!   timeline.
//! * [`beacon`] — a UDP side channel that serves live snapshots to the
//!   `ncscope` CLI.

pub mod analysis;
pub mod beacon;
pub mod chrome;
pub mod event;
pub mod json;

pub use analysis::{
    diagnose, Diagnosis, DiagnosisConfig, LatencyStat, LossLocus, WindowOutcome, WindowVerdict,
    HOP_PATH_CAP,
};
pub use beacon::{query, spawn_beacon, Beacon, BEACON_PROBE};
pub use chrome::chrome_trace;
pub use event::{DecodedEvent, EventRing, ScopeEvent, ScopeEventRecord, WindowKey};
pub use json::Json;

use crate::metrics::Registry;
use crate::trace::WindowTrace;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Default event-ring capacity for [`Scope::default`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Why a flight-recorder snapshot was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotReason {
    /// The reliable sender exhausted retries on a window.
    DeliveryTimeout,
    /// The deploy-time lint gate refused a switch module.
    LintDenied,
    /// The reassembler evicted enough partial windows to call it a storm.
    EvictionStorm,
    /// Operator-requested snapshot.
    OnDemand,
}

impl SnapshotReason {
    /// Stable artifact string for the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotReason::DeliveryTimeout => "delivery_timeout",
            SnapshotReason::LintDenied => "lint_denied",
            SnapshotReason::EvictionStorm => "eviction_storm",
            SnapshotReason::OnDemand => "on_demand",
        }
    }
}

#[derive(Default)]
struct RecorderState {
    path: Option<PathBuf>,
    triggers: u64,
}

/// A cheap-clone handle onto one shared event ring + flight recorder.
///
/// Every layer of the stack (host runtime, reliable transport, UDP
/// endpoint, simulator) holds a clone and emits into the same ring, so
/// a snapshot is a causally ordered record of the whole network.
#[derive(Clone)]
pub struct Scope {
    ring: Arc<EventRing>,
    rec: Arc<Mutex<RecorderState>>,
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("ring", &self.ring)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl Default for Scope {
    fn default() -> Self {
        Scope::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl Scope {
    /// Creates a scope whose ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Scope {
        Scope {
            ring: Arc::new(EventRing::new(capacity)),
            rec: Arc::new(Mutex::new(RecorderState::default())),
        }
    }

    /// Emits one event. Lock-free and allocation-free; safe to call
    /// from any thread and from hot paths.
    pub fn emit(&self, t: u64, node: u16, key: WindowKey, event: ScopeEvent) {
        let (kind, a, b) = event.pack();
        self.ring.push(ScopeEventRecord {
            t,
            node,
            sender: key.sender,
            kernel: key.kernel,
            seq: key.seq,
            kind,
            a,
            b,
        });
    }

    /// Raw snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<ScopeEventRecord> {
        self.ring.snapshot()
    }

    /// Snapshot decoded for the analysis engine (unknown kinds are
    /// skipped).
    pub fn decoded(&self) -> Vec<DecodedEvent> {
        self.ring
            .snapshot()
            .into_iter()
            .filter_map(|r| {
                r.event().map(|event| DecodedEvent {
                    t: r.t,
                    node: r.node,
                    key: r.key(),
                    event,
                })
            })
            .collect()
    }

    /// Total events ever emitted into the ring.
    pub fn logged(&self) -> u64 {
        self.ring.logged()
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Arms the flight recorder: subsequent [`Scope::flight_record`]
    /// calls will (over)write the artifact at `path`.
    pub fn arm_recorder(&self, path: impl Into<PathBuf>) {
        self.rec.lock().unwrap().path = Some(path.into());
    }

    /// The armed artifact path, if any.
    pub fn recorder_path(&self) -> Option<PathBuf> {
        self.rec.lock().unwrap().path.clone()
    }

    /// How many times the flight recorder has triggered.
    pub fn recorded(&self) -> u64 {
        self.rec.lock().unwrap().triggers
    }

    /// Builds a flight snapshot JSON document without side effects.
    pub fn flight_json(
        &self,
        reason: SnapshotReason,
        now: u64,
        registry: Option<&Registry>,
        traces: &[WindowTrace],
    ) -> String {
        self.flight_json_capped(reason.as_str(), now, registry, traces, usize::MAX)
    }

    /// Like [`Scope::flight_json`] but keeps only the newest
    /// `max_events` ring entries (used by the beacon to fit a UDP
    /// datagram); the cut is accounted in `events_dropped`.
    pub fn flight_json_capped(
        &self,
        reason: &str,
        now: u64,
        registry: Option<&Registry>,
        traces: &[WindowTrace],
        max_events: usize,
    ) -> String {
        let all = self.ring.snapshot();
        let cut = all.len().saturating_sub(max_events);
        let events = &all[cut..];
        let mut out = String::with_capacity(events.len() * 96 + 512);
        let _ = write!(
            out,
            "{{\"kind\":\"ncscope-flight\",\"reason\":{},\"now\":{now},\
             \"events_logged\":{},\"events_dropped\":{},\"events\":[",
            json::escape(reason),
            self.ring.logged(),
            self.ring.dropped() + cut as u64,
        );
        for (i, r) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t\":{},\"node\":{},\"sender\":{},\"kernel\":{},\"seq\":{},\
                 \"kind\":{},\"a\":{},\"b\":{}}}",
                r.t,
                r.node,
                r.sender,
                r.kernel,
                r.seq,
                json::escape(ScopeEvent::kind_name(r.kind)),
                r.a,
                r.b
            );
        }
        out.push_str("],\"traces\":[");
        for (i, tr) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kernel\":{},\"seq\":{},\"sender\":{},\"hops\":[",
                tr.kernel, tr.seq, tr.sender
            );
            for (j, h) in tr.hops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"switch\":{},\"kernel\":{},\"version\":{},\"stages\":{},\
                     \"uops\":{},\"flags\":{},\"ticks_in\":{},\"ticks_out\":{}}}",
                    h.switch,
                    h.kernel,
                    h.version,
                    h.stages,
                    h.uops,
                    h.flags,
                    h.ticks_in,
                    h.ticks_out
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"metrics\":");
        match registry {
            Some(reg) => out.push_str(&reg.render_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Triggers the flight recorder: builds the snapshot, bumps the
    /// trigger count, and — if armed — writes the artifact (best
    /// effort; I/O errors are swallowed so a dying run can never be
    /// killed by its own black box). Returns the JSON.
    pub fn flight_record(
        &self,
        reason: SnapshotReason,
        now: u64,
        registry: Option<&Registry>,
        traces: &[WindowTrace],
    ) -> String {
        let doc = self.flight_json(reason, now, registry, traces);
        let path = {
            let mut rec = self.rec.lock().unwrap();
            rec.triggers += 1;
            rec.path.clone()
        };
        if let Some(path) = path {
            let _ = std::fs::write(path, &doc);
        }
        doc
    }
}

/// A parsed flight-recorder artifact.
#[derive(Clone, Debug)]
pub struct FlightArtifact {
    /// Why the snapshot was taken.
    pub reason: String,
    /// Snapshot time in ns.
    pub now: u64,
    /// Total events emitted over the run.
    pub events_logged: u64,
    /// Events missing from the snapshot (wrap-around + beacon cut).
    pub events_dropped: u64,
    /// The surviving events, oldest first (unknown kinds skipped).
    pub events: Vec<DecodedEvent>,
    /// Receiver-assembled window traces included in the snapshot.
    pub traces: Vec<WindowTrace>,
    /// Raw metrics subtree, if a registry was attached.
    pub metrics: Option<Json>,
}

/// Parses a flight-recorder artifact previously produced by
/// [`Scope::flight_record`] / [`Scope::flight_json`].
pub fn parse_flight(text: &str) -> Result<FlightArtifact, String> {
    let doc = json::parse(text)?;
    if doc.get("kind").and_then(Json::as_str) != Some("ncscope-flight") {
        return Err("not an ncscope flight artifact (missing kind)".into());
    }
    let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut events = Vec::new();
    for e in doc.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
        let kind = ScopeEvent::kind_code(e.get("kind").and_then(Json::as_str).unwrap_or(""));
        let field = |key: &str| e.get(key).and_then(Json::as_u64).unwrap_or(0);
        let Some(event) = ScopeEvent::unpack(kind, field("a"), field("b")) else {
            continue;
        };
        events.push(DecodedEvent {
            t: field("t"),
            node: field("node") as u16,
            key: WindowKey::new(
                field("sender") as u16,
                field("kernel") as u16,
                field("seq") as u32,
            ),
            event,
        });
    }
    let mut traces = Vec::new();
    for tr in doc.get("traces").and_then(Json::as_arr).unwrap_or(&[]) {
        let field = |key: &str| tr.get(key).and_then(Json::as_u64).unwrap_or(0);
        let mut hops = Vec::new();
        for h in tr.get("hops").and_then(Json::as_arr).unwrap_or(&[]) {
            let hf = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
            hops.push(crate::hop::HopRecord {
                switch: hf("switch") as u16,
                kernel: hf("kernel") as u16,
                version: hf("version") as u16,
                stages: hf("stages") as u16,
                uops: hf("uops") as u32,
                flags: hf("flags") as u16,
                ticks_in: hf("ticks_in"),
                ticks_out: hf("ticks_out"),
            });
        }
        traces.push(WindowTrace {
            kernel: field("kernel") as u16,
            seq: field("seq") as u32,
            sender: field("sender") as u16,
            hops,
        });
    }
    Ok(FlightArtifact {
        reason: doc
            .get("reason")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        now: num("now"),
        events_logged: num("events_logged"),
        events_dropped: num("events_dropped"),
        events,
        traces,
        metrics: doc.get("metrics").filter(|m| **m != Json::Null).cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::HopRecord;

    #[test]
    fn flight_artifact_round_trips() {
        let scope = Scope::new(8);
        let key = WindowKey::new(1, 7, 3);
        scope.emit(10, 1, key, ScopeEvent::WindowSent { attempt: 0 });
        scope.emit(
            12,
            0,
            key,
            ScopeEvent::FragmentDropped {
                from: 1,
                to: 0x8000,
                ctrl: false,
                burst: true,
            },
        );
        scope.emit(40, 1, key, ScopeEvent::WindowAbandoned { retries: 16 });
        let registry = Registry::new();
        registry.counter("scope.test").add(3);
        let traces = vec![WindowTrace {
            kernel: 7,
            seq: 3,
            sender: 1,
            hops: vec![HopRecord {
                switch: 0x8000,
                kernel: 7,
                version: 1,
                stages: 2,
                uops: 9,
                flags: 0,
                ticks_in: 11,
                ticks_out: 611,
            }],
        }];
        let doc = scope.flight_json(
            SnapshotReason::DeliveryTimeout,
            99,
            Some(&registry),
            &traces,
        );
        let art = parse_flight(&doc).expect("parses");
        assert_eq!(art.reason, "delivery_timeout");
        assert_eq!(art.now, 99);
        assert_eq!(art.events.len(), 3);
        assert_eq!(
            art.events[1].event,
            ScopeEvent::FragmentDropped {
                from: 1,
                to: 0x8000,
                ctrl: false,
                burst: true
            }
        );
        assert_eq!(art.traces, traces);
        assert!(art.metrics.is_some());
        // The parsed events drive the analysis engine directly.
        let d = analysis::diagnose(&art.events, &art.traces, &DiagnosisConfig::default());
        assert_eq!(d.count(WindowOutcome::Abandoned), 1);
        assert_eq!(d.primary_loss_locus(), Some((1, 0x8000)));
    }

    #[test]
    fn recorder_writes_artifact_when_armed() {
        let dir = std::env::temp_dir().join("ncscope-test-artifact.json");
        let scope = Scope::new(8);
        scope.emit(1, 1, WindowKey::new(1, 1, 0), ScopeEvent::WindowCompleted);
        // Unarmed: counts the trigger, writes nothing.
        scope.flight_record(SnapshotReason::OnDemand, 5, None, &[]);
        assert_eq!(scope.recorded(), 1);
        scope.arm_recorder(&dir);
        let doc = scope.flight_record(SnapshotReason::EvictionStorm, 7, None, &[]);
        assert_eq!(scope.recorded(), 2);
        let on_disk = std::fs::read_to_string(&dir).expect("artifact written");
        assert_eq!(on_disk, doc);
        assert_eq!(parse_flight(&on_disk).unwrap().reason, "eviction_storm");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn capped_snapshot_accounts_for_the_cut() {
        let scope = Scope::new(64);
        for seq in 0..10u32 {
            scope.emit(
                seq as u64,
                1,
                WindowKey::new(1, 1, seq),
                ScopeEvent::WindowCompleted,
            );
        }
        let doc = scope.flight_json_capped("on_demand", 0, None, &[], 4);
        let art = parse_flight(&doc).unwrap();
        assert_eq!(art.events.len(), 4);
        assert_eq!(art.events_dropped, 6);
        assert_eq!(art.events[0].key.seq, 6);
    }
}
