//! Source spans and compiler diagnostics.
//!
//! Every frontend error is anchored to a [`Span`] (byte range plus
//! line/column of its start) so the driver can render
//! `file:line:col: error: message` lines the way Clang would.

use std::fmt;

/// A half-open byte range in a source file, with the 1-based line and
/// column of its start for human-readable rendering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering a single point.
    pub fn point(offset: usize, line: u32, col: u32) -> Self {
        Span {
            start: offset,
            end: offset,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if other.line < self.line {
                other.col
            } else {
                self.col
            },
        }
    }
}

/// Severity of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Compilation cannot proceed.
    Error,
    /// Suspicious but accepted.
    Warning,
    /// Informational note attached to a primary diagnostic.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// A compiler diagnostic: severity, message, and source anchor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How severe the problem is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
    /// File the span refers to.
    pub file: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span, file: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            file: file.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span, file: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            file: file.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.span.line, self.span.col, self.severity, self.message
        )
    }
}

impl Diagnostic {
    /// Renders the diagnostic with a source snippet and a caret line
    /// underneath, Clang style:
    ///
    /// ```text
    /// f.ncl:3:5: error: message
    ///     count[i] += 1;
    ///     ^~~~~~~~~~~~~
    /// ```
    ///
    /// Falls back to the single header line when the span does not land
    /// inside `source` (e.g. synthesized spans).
    pub fn render_snippet(&self, source: &str) -> String {
        let mut out = self.to_string();
        let Some(snippet) = snippet_for(source, self.span) else {
            out.push('\n');
            return out;
        };
        out.push('\n');
        out.push_str(&snippet);
        out
    }
}

/// The source line containing `span.start` plus a caret line marking the
/// span (clamped to the line). `None` when the span is out of range or
/// the line cannot be recovered.
fn snippet_for(source: &str, span: Span) -> Option<String> {
    if span.line == 0 || span.start > source.len() {
        return None;
    }
    let line_start = source[..span.start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(source.len());
    let line = &source[line_start..line_end];
    if line.is_empty() && span.start >= line_end {
        return None;
    }
    let col = span.start.saturating_sub(line_start);
    // Tabs render as one column here; NCL sources in the tree use spaces.
    let mut caret = String::new();
    for _ in 0..col {
        caret.push(' ');
    }
    caret.push('^');
    let span_len = span.end.saturating_sub(span.start);
    let avail = line.len().saturating_sub(col + 1);
    for _ in 1..span_len.min(avail + 1) {
        caret.push('~');
    }
    Some(format!("    {line}\n    {caret}\n"))
}

impl std::error::Error for Diagnostic {}

/// Renders a batch of diagnostics, one per line, Clang style.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders a batch with caret snippets, resolving each diagnostic's file
/// through `lookup` (file name → source text). Diagnostics whose file is
/// unknown render header-only.
pub fn render_with_source<'a>(
    diags: &[Diagnostic],
    mut lookup: impl FnMut(&str) -> Option<&'a str>,
) -> String {
    let mut out = String::new();
    for d in diags {
        match lookup(&d.file) {
            Some(src) => out.push_str(&d.render_snippet(src)),
            None => {
                out.push_str(&d.to_string());
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span {
            start: 4,
            end: 8,
            line: 1,
            col: 5,
        };
        let b = Span {
            start: 10,
            end: 12,
            line: 2,
            col: 3,
        };
        let j = a.to(b);
        assert_eq!((j.start, j.end, j.line, j.col), (4, 12, 1, 5));
        // Joining the other way keeps the earlier anchor.
        let j2 = b.to(a);
        assert_eq!((j2.start, j2.end, j2.line, j2.col), (4, 12, 1, 5));
    }

    #[test]
    fn display_format() {
        let d = Diagnostic::error(
            "unknown declaration specifier '_nte_'",
            Span {
                start: 0,
                end: 5,
                line: 3,
                col: 1,
            },
            "allreduce.ncl",
        );
        assert_eq!(
            d.to_string(),
            "allreduce.ncl:3:1: error: unknown declaration specifier '_nte_'"
        );
    }

    #[test]
    fn snippet_has_caret_under_span() {
        let src = "int x;\nint count[4] = {0};\n";
        // Span over `count` (bytes 11..16 on line 2, col 5).
        let d = Diagnostic::error(
            "boom",
            Span {
                start: 11,
                end: 16,
                line: 2,
                col: 5,
            },
            "t.ncl",
        );
        let r = d.render_snippet(src);
        assert!(r.starts_with("t.ncl:2:5: error: boom\n"));
        assert!(r.contains("    int count[4] = {0};\n"));
        assert!(r.contains("\n        ^~~~~\n"), "got: {r:?}");
    }

    #[test]
    fn snippet_out_of_range_falls_back() {
        let d = Diagnostic::error("boom", Span::point(999, 50, 1), "t.ncl");
        let r = d.render_snippet("short");
        assert_eq!(r, "t.ncl:50:1: error: boom\n");
    }

    #[test]
    fn render_with_source_mixes_known_and_unknown_files() {
        let src = "int a;";
        let diags = vec![
            Diagnostic::error(
                "one",
                Span {
                    start: 4,
                    end: 5,
                    line: 1,
                    col: 5,
                },
                "k.ncl",
            ),
            Diagnostic::error("two", Span::point(0, 1, 1), "other.ncl"),
        ];
        let r = render_with_source(&diags, |f| (f == "k.ncl").then_some(src));
        assert!(r.contains("    int a;"));
        assert!(r.contains("other.ncl:1:1: error: two\n"));
    }

    #[test]
    fn render_batch() {
        let diags = vec![
            Diagnostic::error("a", Span::point(0, 1, 1), "f"),
            Diagnostic::warning("b", Span::point(1, 1, 2), "f"),
        ];
        let s = render(&diags);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("warning: b"));
    }
}
