#![warn(missing_docs)]

//! # ncl-lang — the Net Compute Language frontend
//!
//! NCL is the C/C++ extension proposed by *"Don't You Worry 'Bout a
//! Packet"* (HotNets '21) for writing **network kernels**: functions that
//! programmable switches (`_net_ _out_`) and receiving hosts (`_net_
//! _in_`) execute on data [windows](c3::Window). This crate implements the
//! frontend of the `nclc` compiler: a hand-written lexer, a
//! recursive-descent parser producing a typed AST, and a semantic analysis
//! pass that checks the paper's declaration-specifier rules (`_net_`,
//! `_out_`, `_in_`, `_ctrl_`, `_at_("label")`, `_ext_`), kernel pairing,
//! and the C-subset type rules.
//!
//! The supported surface is exactly the subset the paper's examples use
//! (Figs. 4 and 5) plus the obvious closures of it: integer scalars and
//! fixed arrays, `if`/`else` (including C++17 `if (auto *p = Map[k])`),
//! `for` loops with compile-time trip counts, compound assignment,
//! `memcpy`, the forwarding intrinsics, the builtin `window` and
//! `location` structs, `_wnd_ struct` window extensions, `ncl::Map`
//! stdlib types, `#define` object macros and `const` globals.
//!
//! Entry points: [`parse`] (source → [`ast::Program`]) and
//! [`sema::analyze`] (AST → [`sema::CheckedProgram`]).

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::Program;
pub use diag::{Diagnostic, Severity, Span};
pub use sema::{analyze, CheckedProgram};

/// Parses an NCL source file into an AST.
///
/// `file` is only used to label diagnostics.
pub fn parse(source: &str, file: &str) -> Result<ast::Program, Vec<Diagnostic>> {
    let tokens = lexer::lex(source, file)?;
    parser::parse_tokens(&tokens, file)
}

/// Convenience: parse + semantic analysis in one call.
pub fn frontend(source: &str, file: &str) -> Result<sema::CheckedProgram, Vec<Diagnostic>> {
    let program = parse(source, file)?;
    sema::analyze(&program, file)
}
