//! Abstract syntax tree for NCL programs.
//!
//! The AST mirrors the surface syntax closely; name resolution and typing
//! happen in [`crate::sema`]. Every node carries the [`Span`] of its
//! source text so later passes can report precise diagnostics.

use crate::diag::Span;
use c3::ScalarType;
use std::fmt;

/// A parsed NCL translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// A global variable declaration (switch memory, control variable, or
    /// host-side `const`).
    Global(GlobalDecl),
    /// A network kernel definition.
    Kernel(KernelDef),
    /// A `_wnd_ struct { ... };` window extension.
    WindowExt(WindowExtDef),
    /// A plain (host) function; kept for completeness, not compiled to
    /// the switch. The paper's `main()` lives host-side behind libncrt.
    HostFn(HostFnDef),
}

impl Item {
    /// The span of the item's name.
    pub fn span(&self) -> Span {
        match self {
            Item::Global(g) => g.span,
            Item::Kernel(k) => k.span,
            Item::WindowExt(w) => w.span,
            Item::HostFn(f) => f.span,
        }
    }
}

/// Parsed declaration specifiers on globals and kernels.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Specifiers {
    /// `_net_` present.
    pub net: bool,
    /// `_out_` present.
    pub out: bool,
    /// `_in_` present.
    pub inn: bool,
    /// `_ctrl_` present.
    pub ctrl: bool,
    /// `const` present.
    pub konst: bool,
    /// `_at_("label")` argument, if present.
    pub at: Option<String>,
    /// Span of the specifier sequence (for diagnostics).
    pub span: Span,
}

/// A global variable: `_net_ [_at_(l)] [_ctrl_] type name[dims] [= init];`
/// or a stdlib declaration `_net_ _at_(l) ncl::Map<K, V, N> name;`.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDecl {
    /// Declaration specifiers.
    pub spec: Specifiers,
    /// Declared type.
    pub ty: TypeExpr,
    /// Variable name.
    pub name: String,
    /// Initializer, if any.
    pub init: Option<Initializer>,
    /// Source span.
    pub span: Span,
}

/// An initializer: a scalar constant expression or a (possibly nested)
/// brace list. `{0}` and `{{0}}` replicate C's remaining-elements-are-zero
/// rule.
#[derive(Clone, PartialEq, Debug)]
pub enum Initializer {
    /// `= expr`
    Scalar(Expr),
    /// `= { i0, i1, ... }`
    List(Vec<Initializer>),
}

/// A type expression as written, before semantic resolution.
#[derive(Clone, PartialEq, Debug)]
pub enum TypeExpr {
    /// `void`
    Void,
    /// A scalar type (`int`, `uint32_t`, `bool`, …).
    Scalar(ScalarType),
    /// `T*` — only valid for kernel parameters.
    Ptr(ScalarType),
    /// `T name[d0][d1]…` — fixed array; dims are const expressions.
    Array(ScalarType, Vec<Expr>),
    /// `ncl::Map<K, V, N>` — stdlib switch map (implicitly `_ctrl_`).
    Map {
        /// Key scalar type.
        key: ScalarType,
        /// Value scalar type.
        value: ScalarType,
        /// Capacity (const expression).
        capacity: Box<Expr>,
    },
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Void => write!(f, "void"),
            TypeExpr::Scalar(s) => write!(f, "{s}"),
            TypeExpr::Ptr(s) => write!(f, "{s}*"),
            TypeExpr::Array(s, dims) => {
                write!(f, "{s}")?;
                for _ in dims {
                    write!(f, "[]")?;
                }
                Ok(())
            }
            TypeExpr::Map { key, value, .. } => {
                write!(f, "ncl::Map<{key}, {value}, N>")
            }
        }
    }
}

/// A kernel parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    /// `_ext_` present (host-memory parameters of `_in_` kernels).
    pub ext: bool,
    /// Parameter type (`T*` for arrays, scalars for per-window values).
    pub ty: TypeExpr,
    /// Parameter name.
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// Which side executes a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelKind {
    /// `_net_ _out_` — runs on switches while windows travel.
    Outgoing,
    /// `_net_ _in_` — runs on hosts when windows arrive.
    Incoming,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelKind::Outgoing => "_out_",
            KernelKind::Incoming => "_in_",
        })
    }
}

/// A network kernel definition.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelDef {
    /// Declaration specifiers (must include `_net_` and one of
    /// `_out_`/`_in_`).
    pub spec: Specifiers,
    /// Outgoing or incoming.
    pub kind: KernelKind,
    /// Return type (must be `void` or `int` per the examples; the value
    /// of a non-void return is ignored by the transport).
    pub ret: TypeExpr,
    /// Kernel name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source span of the signature.
    pub span: Span,
}

/// A `_wnd_ struct Name { fields };` window-struct extension (paper §4.2).
#[derive(Clone, PartialEq, Debug)]
pub struct WindowExtDef {
    /// Struct name (used by the runtime to attach instances).
    pub name: String,
    /// Fields in declaration order; packed in order into the NCP ext
    /// block.
    pub fields: Vec<(String, ScalarType, Span)>,
    /// Source span.
    pub span: Span,
}

/// A host-side function (not compiled for the switch).
#[derive(Clone, PartialEq, Debug)]
pub struct HostFnDef {
    /// Return type.
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body (parsed for syntax, not semantically checked beyond names).
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// A local declaration: `type name = init;`.
    Decl {
        /// Declared type (`auto` pointers from map lookups use
        /// [`TypeExpr::Ptr`] after sema; parser stores `None` for `auto`).
        ty: Option<TypeExpr>,
        /// Variable name.
        name: String,
        /// Initializer expression (mandatory for `auto`).
        init: Option<Expr>,
        /// Whether declared with `auto *`.
        auto_ptr: bool,
        /// Source span.
        span: Span,
    },
    /// `if (cond) then [else els]`, optionally with a C++17 init
    /// declaration: `if (auto *p = Map[k]) ...`.
    If {
        /// Optional `auto *name =` binding.
        decl: Option<(String, Span)>,
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Option<Box<Stmt>>,
        /// Source span.
        span: Span,
    },
    /// `for (init; cond; step) body` — trip count must be provably
    /// constant (checked by conformance, not the parser).
    For {
        /// Loop variable declaration or expression.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
        /// Source span.
        span: Span,
    },
    /// A `while (cond) body` loop. Parsed so conformance checking can
    /// reject it with a precise message (PISA has no unbounded loops).
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source span.
        span: Span,
    },
    /// A nested block.
    Block(Block),
    /// An expression statement.
    Expr(Expr),
    /// `return [expr];`
    Return(Option<Expr>, Span),
    /// `break;` — only meaningful inside loops; conformance restricts it.
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// The empty statement `;`.
    Empty(Span),
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return(_, span)
            | Stmt::Break(span)
            | Stmt::Continue(span)
            | Stmt::Empty(span) => *span,
            Stmt::Block(b) => b.span,
            Stmt::Expr(e) => e.span(),
        }
    }
}

/// Assignment operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `&=`
    And,
    /// `|=`
    Or,
    /// `^=`
    Xor,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
}

/// Binary operators at the AST level (logical `&&`/`||` keep their
/// short-circuit identity until lowering).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    Not,
    /// `*` — dereference (map-lookup pointers and kernel array params).
    Deref,
    /// `&` — address-of (only as `memcpy` operand).
    AddrOf,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal (value, had unsigned suffix).
    Int(u64, bool, Span),
    /// `true` / `false`.
    Bool(bool, Span),
    /// Character literal.
    Char(u8, Span),
    /// String literal — only valid as `_at_`/`_pass`/`_here` argument.
    Str(String, Span),
    /// A name.
    Ident(String, Span),
    /// `window.field` — builtin window struct access.
    WindowField(String, Span),
    /// `location.field` — builtin location struct access.
    LocationField(String, Span),
    /// `base[index]` — array or map indexing.
    Index {
        /// Array or map expression.
        base: Box<Expr>,
        /// Index/key expression.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Assignment (an expression in C; NCL restricts it to statement
    /// position, enforced by sema).
    Assign {
        /// Operator.
        op: AssignOp,
        /// Target place.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `++x` / `x++` / `--x` / `x--`.
    IncDec {
        /// `+1` or `-1`.
        inc: bool,
        /// Prefix (`++x`) or postfix (`x++`).
        prefix: bool,
        /// Target place.
        target: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A function call: forwarding intrinsics, `memcpy`, `_here`, or a
    /// host-side call (rejected in kernels by sema).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `(type)expr` cast.
    Cast {
        /// Target scalar type.
        ty: ScalarType,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `sizeof(type)`.
    SizeOf(ScalarType, Span),
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, _, s)
            | Expr::Bool(_, s)
            | Expr::Char(_, s)
            | Expr::Str(_, s)
            | Expr::Ident(_, s)
            | Expr::WindowField(_, s)
            | Expr::LocationField(_, s)
            | Expr::SizeOf(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::IncDec { span, .. }
            | Expr::Call { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Ternary { span, .. } => *span,
        }
    }
}

/// The forwarding intrinsics (and other builtin callables) recognized in
/// kernel bodies.
pub const INTRINSICS: &[&str] = &[
    "_pass", "_drop", "_reflect", "_bcast", "_here", "_hash", "memcpy",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_display() {
        assert_eq!(TypeExpr::Scalar(ScalarType::I32).to_string(), "int32_t");
        assert_eq!(TypeExpr::Ptr(ScalarType::U8).to_string(), "uint8_t*");
        assert_eq!(
            TypeExpr::Array(ScalarType::I32, vec![]).to_string(),
            "int32_t"
        );
    }

    #[test]
    fn kernel_kind_display() {
        assert_eq!(KernelKind::Outgoing.to_string(), "_out_");
        assert_eq!(KernelKind::Incoming.to_string(), "_in_");
    }

    #[test]
    fn expr_spans_propagate() {
        let s = Span {
            start: 3,
            end: 9,
            line: 1,
            col: 4,
        };
        assert_eq!(Expr::Int(1, false, s).span(), s);
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::Int(1, false, s)),
            span: s,
        };
        assert_eq!(e.span(), s);
    }
}
