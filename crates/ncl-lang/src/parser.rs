//! Recursive-descent parser for NCL.
//!
//! Produces the [`crate::ast`] types. Expression parsing uses precedence
//! climbing with C's operator table. The parser is deliberately tolerant
//! about *semantic* rules (it accepts `while`, `break`, pointer
//! dereference anywhere, …) so that `sema` and the conformance pass can
//! reject them with better, domain-specific messages — exactly the split
//! the paper's Fig. 6 draws between the frontend and the conformance
//! stage.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};
use c3::ScalarType;

/// Parses a token stream (as produced by [`crate::lexer::lex`]).
pub fn parse_tokens(tokens: &[Token], file: &str) -> Result<Program, Vec<Diagnostic>> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        file,
        diags: Vec::new(),
    };
    let program = p.program();
    if p.diags.is_empty() {
        Ok(program)
    } else {
        Err(p.diags)
    }
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    file: &'t str,
    diags: Vec<Diagnostic>,
}

/// Internal early-exit error; the message already sits in `diags`.
struct Bail;

type PResult<T> = Result<T, Bail>;

impl<'t> Parser<'t> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> &'t Token {
        let t = &self.toks[self.pos.min(self.toks.len() - 1)];
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Span> {
        if self.peek() == &kind {
            Ok(self.bump().span)
        } else {
            self.err_here(format!(
                "expected {} but found {}",
                kind.describe(),
                self.peek().describe()
            ));
            Err(Bail)
        }
    }

    fn err_here(&mut self, msg: impl Into<String>) {
        let span = self.span();
        self.diags.push(Diagnostic::error(msg, span, self.file));
    }

    fn err_at(&mut self, msg: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::error(msg, span, self.file));
    }

    /// Skips to the next likely item boundary after an error.
    fn synchronize_item(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            match self.item() {
                Ok(item) => items.push(item),
                Err(Bail) => self.synchronize_item(),
            }
        }
        Program { items }
    }

    fn item(&mut self) -> PResult<Item> {
        if self.peek() == &TokenKind::KwWnd {
            return self.window_ext().map(Item::WindowExt);
        }
        let spec = self.specifiers()?;
        let ty = self.type_expr()?;
        let name_span = self.span();
        let name = self.ident()?;
        if self.peek() == &TokenKind::LParen {
            self.function(spec, ty, name, name_span)
        } else {
            self.global(spec, ty, name, name_span).map(Item::Global)
        }
    }

    fn specifiers(&mut self) -> PResult<Specifiers> {
        let mut spec = Specifiers {
            span: self.span(),
            ..Specifiers::default()
        };
        loop {
            match self.peek() {
                TokenKind::KwNet => {
                    if spec.net {
                        self.err_here("duplicate '_net_' specifier");
                    }
                    spec.net = true;
                    self.bump();
                }
                TokenKind::KwOut => {
                    if spec.out {
                        self.err_here("duplicate '_out_' specifier");
                    }
                    spec.out = true;
                    self.bump();
                }
                TokenKind::KwIn => {
                    if spec.inn {
                        self.err_here("duplicate '_in_' specifier");
                    }
                    spec.inn = true;
                    self.bump();
                }
                TokenKind::KwCtrl => {
                    if spec.ctrl {
                        self.err_here("duplicate '_ctrl_' specifier");
                    }
                    spec.ctrl = true;
                    self.bump();
                }
                TokenKind::KwConst => {
                    spec.konst = true;
                    self.bump();
                }
                TokenKind::KwAt => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let label = match self.peek().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            s
                        }
                        other => {
                            self.err_here(format!(
                                "_at_ expects a string label, found {}",
                                other.describe()
                            ));
                            return Err(Bail);
                        }
                    };
                    self.expect(TokenKind::RParen)?;
                    if spec.at.replace(label).is_some() {
                        self.err_here("duplicate '_at_' specifier");
                    }
                }
                _ => break,
            }
        }
        Ok(spec)
    }

    fn window_ext(&mut self) -> PResult<WindowExtDef> {
        let start = self.span();
        self.expect(TokenKind::KwWnd)?;
        self.expect(TokenKind::KwStruct)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let fspan = self.span();
            let ty = self.scalar_type()?;
            let fname = self.ident()?;
            self.expect(TokenKind::Semi)?;
            fields.push((fname, ty, fspan));
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Semi)?;
        Ok(WindowExtDef {
            name,
            fields,
            span: start,
        })
    }

    fn global(
        &mut self,
        spec: Specifiers,
        mut ty: TypeExpr,
        name: String,
        span: Span,
    ) -> PResult<GlobalDecl> {
        // Array dimensions follow the name: `int accum[DATA_LEN]`.
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            dims.push(self.expr()?);
            self.expect(TokenKind::RBracket)?;
        }
        if !dims.is_empty() {
            match ty {
                TypeExpr::Scalar(s) => ty = TypeExpr::Array(s, dims),
                _ => {
                    self.err_at("array dimensions on a non-scalar base type", span);
                    return Err(Bail);
                }
            }
        }
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(GlobalDecl {
            spec,
            ty,
            name,
            init,
            span,
        })
    }

    fn initializer(&mut self) -> PResult<Initializer> {
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            if self.peek() != &TokenKind::RBrace {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    // Tolerate a trailing comma.
                    if self.peek() == &TokenKind::RBrace {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RBrace)?;
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Scalar(self.expr()?))
        }
    }

    fn function(
        &mut self,
        spec: Specifiers,
        ret: TypeExpr,
        name: String,
        span: Span,
    ) -> PResult<Item> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        if spec.net || spec.out || spec.inn {
            let kind = match (spec.out, spec.inn) {
                (true, false) => KernelKind::Outgoing,
                (false, true) => KernelKind::Incoming,
                (true, true) => {
                    self.err_at("kernel cannot be both '_out_' and '_in_'", spec.span);
                    return Err(Bail);
                }
                (false, false) => {
                    self.err_at("'_net_' function must also be '_out_' or '_in_'", spec.span);
                    return Err(Bail);
                }
            };
            if !spec.net {
                self.err_at(
                    format!("'{}' kernel is missing the '_net_' specifier", kind),
                    spec.span,
                );
                return Err(Bail);
            }
            Ok(Item::Kernel(KernelDef {
                spec,
                kind,
                ret,
                name,
                params,
                body,
                span,
            }))
        } else {
            Ok(Item::HostFn(HostFnDef {
                ret,
                name,
                params,
                body,
                span,
            }))
        }
    }

    fn param(&mut self) -> PResult<Param> {
        let span = self.span();
        let ext = self.eat(&TokenKind::KwExt);
        let base = self.scalar_type()?;
        let ty = if self.eat(&TokenKind::Star) {
            TypeExpr::Ptr(base)
        } else {
            TypeExpr::Scalar(base)
        };
        let name = self.ident()?;
        Ok(Param {
            ext,
            ty,
            name,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn is_type_start(&self) -> bool {
        match self.peek() {
            TokenKind::KwVoid
            | TokenKind::KwBool
            | TokenKind::KwChar
            | TokenKind::KwInt
            | TokenKind::KwUnsigned
            | TokenKind::KwSigned
            | TokenKind::KwShort
            | TokenKind::KwLong => true,
            TokenKind::Ident(name) => {
                scalar_by_name(name).is_some()
                    || (name == "ncl"
                        && self.peek_at(1) == &TokenKind::ColonColon
                        && matches!(self.peek_at(2), TokenKind::Ident(t) if t == "Map"))
            }
            _ => false,
        }
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        if self.peek() == &TokenKind::KwVoid {
            self.bump();
            // `void*` is not a thing in NCL.
            return Ok(TypeExpr::Void);
        }
        if let TokenKind::Ident(name) = self.peek() {
            if name == "ncl" && self.peek_at(1) == &TokenKind::ColonColon {
                return self.map_type();
            }
        }
        let base = self.scalar_type()?;
        if self.eat(&TokenKind::Star) {
            Ok(TypeExpr::Ptr(base))
        } else {
            Ok(TypeExpr::Scalar(base))
        }
    }

    /// Parses `ncl::Map<K, V, N>`.
    fn map_type(&mut self) -> PResult<TypeExpr> {
        self.bump(); // `ncl`
        self.expect(TokenKind::ColonColon)?;
        let which = self.ident()?;
        if which != "Map" {
            self.err_here(format!("unknown ncl:: stdlib type 'ncl::{which}'"));
            return Err(Bail);
        }
        self.expect(TokenKind::Lt)?;
        let key = self.scalar_type()?;
        self.expect(TokenKind::Comma)?;
        let value = self.scalar_type()?;
        self.expect(TokenKind::Comma)?;
        // Template arguments sit before `>` so only simple const
        // expressions (literals, named constants, parenthesized exprs)
        // are accepted here.
        let capacity = self.template_arg_expr()?;
        self.expect(TokenKind::Gt)?;
        Ok(TypeExpr::Map {
            key,
            value,
            capacity: Box::new(capacity),
        })
    }

    fn template_arg_expr(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v, u) => {
                let span = self.bump().span;
                Ok(Expr::Int(v, u, span))
            }
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok(Expr::Ident(name, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.err_here(format!(
                    "expected a constant template argument, found {}",
                    other.describe()
                ));
                Err(Bail)
            }
        }
    }

    fn scalar_type(&mut self) -> PResult<ScalarType> {
        use TokenKind::*;
        let ty = match self.peek().clone() {
            KwBool => {
                self.bump();
                ScalarType::Bool
            }
            KwChar => {
                self.bump();
                ScalarType::I8
            }
            KwInt => {
                self.bump();
                ScalarType::I32
            }
            KwShort => {
                self.bump();
                self.eat(&KwInt);
                ScalarType::I16
            }
            KwLong => {
                self.bump();
                self.eat(&KwLong);
                self.eat(&KwInt);
                ScalarType::I64
            }
            KwSigned => {
                self.bump();
                match self.peek() {
                    KwChar => {
                        self.bump();
                        ScalarType::I8
                    }
                    KwShort => {
                        self.bump();
                        self.eat(&KwInt);
                        ScalarType::I16
                    }
                    KwLong => {
                        self.bump();
                        self.eat(&KwLong);
                        self.eat(&KwInt);
                        ScalarType::I64
                    }
                    _ => {
                        self.eat(&KwInt);
                        ScalarType::I32
                    }
                }
            }
            KwUnsigned => {
                self.bump();
                match self.peek() {
                    KwChar => {
                        self.bump();
                        ScalarType::U8
                    }
                    KwShort => {
                        self.bump();
                        self.eat(&KwInt);
                        ScalarType::U16
                    }
                    KwLong => {
                        self.bump();
                        self.eat(&KwLong);
                        self.eat(&KwInt);
                        ScalarType::U64
                    }
                    _ => {
                        self.eat(&KwInt);
                        ScalarType::U32
                    }
                }
            }
            Ident(name) => {
                if let Some(s) = scalar_by_name(&name) {
                    self.bump();
                    s
                } else {
                    self.err_here(format!("expected a type, found identifier '{name}'"));
                    return Err(Bail);
                }
            }
            other => {
                self.err_here(format!("expected a type, found {}", other.describe()));
                return Err(Bail);
            }
        };
        Ok(ty)
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                self.err_here(format!(
                    "expected an identifier, found {}",
                    other.describe()
                ));
                Err(Bail)
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        let start = self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace && self.peek() != &TokenKind::Eof {
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(Bail) => self.synchronize_stmt(),
            }
        }
        let end = self.expect(TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn synchronize_stmt(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof | TokenKind::RBrace => return,
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        match self.peek() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty(span))
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return(value, span))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Continue(span))
            }
            TokenKind::KwSwitch | TokenKind::KwGoto | TokenKind::KwDo => {
                let what = self.peek().glyph();
                self.err_here(format!("'{what}' is not part of the NCL kernel subset"));
                Err(Bail)
            }
            TokenKind::KwAuto => self.auto_decl(),
            _ if self.is_type_start() => self.local_decl(),
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn auto_decl(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(TokenKind::KwAuto)?;
        let auto_ptr = self.eat(&TokenKind::Star);
        let name = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let init = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::Decl {
            ty: None,
            name,
            init: Some(init),
            auto_ptr,
            span,
        })
    }

    fn local_decl(&mut self) -> PResult<Stmt> {
        let span = self.span();
        let base = self.scalar_type()?;
        let ty = if self.eat(&TokenKind::Star) {
            TypeExpr::Ptr(base)
        } else {
            TypeExpr::Scalar(base)
        };
        let name = self.ident()?;
        if self.peek() == &TokenKind::LBracket {
            self.err_here(
                "local arrays are not supported in kernels; use switch memory (`_net_` globals)",
            );
            return Err(Bail);
        }
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::Decl {
            ty: Some(ty),
            name,
            init,
            auto_ptr: false,
            span,
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        // C++17 init-condition: `if (auto *idx = Idx[key]) ...`
        let (decl, cond) = if self.peek() == &TokenKind::KwAuto {
            self.bump();
            self.expect(TokenKind::Star)?;
            let dspan = self.span();
            let name = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let value = self.expr()?;
            (Some((name, dspan)), value)
        } else {
            (None, self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let then = Box::new(self.stmt()?);
        let els = if self.eat(&TokenKind::KwElse) {
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            decl,
            cond,
            then,
            els,
            span,
        })
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.is_type_start() {
            Some(Box::new(self.local_decl()?))
        } else {
            let e = self.expr()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => AssignOp::Assign,
            TokenKind::PlusAssign => AssignOp::Add,
            TokenKind::MinusAssign => AssignOp::Sub,
            TokenKind::StarAssign => AssignOp::Mul,
            TokenKind::SlashAssign => AssignOp::Div,
            TokenKind::PercentAssign => AssignOp::Rem,
            TokenKind::AmpAssign => AssignOp::And,
            TokenKind::PipeAssign => AssignOp::Or,
            TokenKind::CaretAssign => AssignOp::Xor,
            TokenKind::ShlAssign => AssignOp::Shl,
            TokenKind::ShrAssign => AssignOp::Shr,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?; // right-associative
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let els = self.ternary()?;
        let span = cond.span().to(els.span());
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
            span,
        })
    }

    /// Binary operators by (binding) precedence level, lowest first.
    fn binary(&mut self, min_level: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::LOr, 1),
                TokenKind::AndAnd => (BinaryOp::LAnd, 2),
                TokenKind::Pipe => (BinaryOp::Or, 3),
                TokenKind::Caret => (BinaryOp::Xor, 4),
                TokenKind::Amp => (BinaryOp::And, 5),
                TokenKind::EqEq => (BinaryOp::Eq, 6),
                TokenKind::NotEq => (BinaryOp::Ne, 6),
                TokenKind::Lt => (BinaryOp::Lt, 7),
                TokenKind::Le => (BinaryOp::Le, 7),
                TokenKind::Gt => (BinaryOp::Gt, 7),
                TokenKind::Ge => (BinaryOp::Ge, 7),
                TokenKind::Shl => (BinaryOp::Shl, 8),
                TokenKind::Shr => (BinaryOp::Shr, 8),
                TokenKind::Plus => (BinaryOp::Add, 9),
                TokenKind::Minus => (BinaryOp::Sub, 9),
                TokenKind::Star => (BinaryOp::Mul, 10),
                TokenKind::Slash => (BinaryOp::Div, 10),
                TokenKind::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::Star => Some(UnaryOp::Deref),
            TokenKind::Amp => Some(UnaryOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            let span = span.to(expr.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let inc = self.peek() == &TokenKind::PlusPlus;
            self.bump();
            let target = self.unary()?;
            let span = span.to(target.span());
            return Ok(Expr::IncDec {
                inc,
                prefix: true,
                target: Box::new(target),
                span,
            });
        }
        if self.peek() == &TokenKind::KwSizeof {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let ty = self.scalar_type()?;
            let end = self.expect(TokenKind::RParen)?;
            return Ok(Expr::SizeOf(ty, span.to(end)));
        }
        // Cast: `(type) expr`. Distinguish from a parenthesized
        // expression by peeking for a type start after '('.
        if self.peek() == &TokenKind::LParen && self.type_starts_at(1) {
            self.bump();
            let ty = self.scalar_type()?;
            self.expect(TokenKind::RParen)?;
            let expr = self.unary()?;
            let span = span.to(expr.span());
            return Ok(Expr::Cast {
                ty,
                expr: Box::new(expr),
                span,
            });
        }
        self.postfix()
    }

    fn type_starts_at(&self, n: usize) -> bool {
        match self.peek_at(n) {
            TokenKind::KwBool
            | TokenKind::KwChar
            | TokenKind::KwInt
            | TokenKind::KwUnsigned
            | TokenKind::KwSigned
            | TokenKind::KwShort
            | TokenKind::KwLong => true,
            TokenKind::Ident(name) => scalar_by_name(name).is_some(),
            _ => false,
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?;
                    let span = expr.span().to(end);
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                        span,
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let fspan = self.span();
                    let field = self.ident()?;
                    let span = expr.span().to(fspan);
                    expr = match &expr {
                        Expr::Ident(name, _) if name == "window" => Expr::WindowField(field, span),
                        Expr::Ident(name, _) if name == "location" => {
                            Expr::LocationField(field, span)
                        }
                        _ => {
                            self.err_at(
                                "member access is only defined on the builtin \
                                 'window' and 'location' structs",
                                span,
                            );
                            return Err(Bail);
                        }
                    };
                }
                TokenKind::Arrow => {
                    let span = self.span();
                    self.err_at(
                        "'->' is not part of the NCL kernel subset; \
                         dereference with '*' instead",
                        span,
                    );
                    return Err(Bail);
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let inc = self.peek() == &TokenKind::PlusPlus;
                    let end = self.bump().span;
                    let span = expr.span().to(end);
                    expr = Expr::IncDec {
                        inc,
                        prefix: false,
                        target: Box::new(expr),
                        span,
                    };
                }
                TokenKind::LParen => {
                    let callee = match &expr {
                        Expr::Ident(name, _) => name.clone(),
                        _ => {
                            self.err_here("only named functions can be called");
                            return Err(Bail);
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?;
                    let span = expr.span().to(end);
                    expr = Expr::Call { callee, args, span };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v, u) => {
                self.bump();
                Ok(Expr::Int(v, u, span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::Char(c, span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Qualified host-API names like `ncl::ctrl_wr`.
                if self.peek() == &TokenKind::ColonColon {
                    self.bump();
                    let rest = self.ident()?;
                    Ok(Expr::Ident(format!("{name}::{rest}"), span))
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.err_here(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                Err(Bail)
            }
        }
    }
}

/// Resolves `uint32_t`-style typedef names.
fn scalar_by_name(name: &str) -> Option<ScalarType> {
    Some(match name {
        "uint8_t" => ScalarType::U8,
        "uint16_t" => ScalarType::U16,
        "uint32_t" => ScalarType::U32,
        "uint64_t" => ScalarType::U64,
        "int8_t" => ScalarType::I8,
        "int16_t" => ScalarType::I16,
        "int32_t" => ScalarType::I32,
        "int64_t" => ScalarType::I64,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn parse_ok(src: &str) -> Program {
        parse(src, "t.ncl").unwrap_or_else(|d| {
            panic!("parse failed: {}", crate::diag::render(&d));
        })
    }

    fn parse_err(src: &str) -> Vec<Diagnostic> {
        parse(src, "t.ncl").unwrap_err()
    }

    #[test]
    fn global_array_with_at() {
        let p = parse_ok(r#"_net_ _at_("s1") int accum[1024] = {0};"#);
        assert_eq!(p.items.len(), 1);
        let Item::Global(g) = &p.items[0] else {
            panic!("expected global")
        };
        assert!(g.spec.net);
        assert_eq!(g.spec.at.as_deref(), Some("s1"));
        assert!(matches!(&g.ty, TypeExpr::Array(ScalarType::I32, dims) if dims.len() == 1));
        assert!(matches!(g.init, Some(Initializer::List(_))));
    }

    #[test]
    fn two_dim_array() {
        let p = parse_ok(r#"_net_ _at_("s1") char Cache[256][128] = {{0}};"#);
        let Item::Global(g) = &p.items[0] else {
            panic!()
        };
        assert!(matches!(&g.ty, TypeExpr::Array(ScalarType::I8, dims) if dims.len() == 2));
    }

    #[test]
    fn ctrl_variable() {
        let p = parse_ok(r#"_net_ _at_("s1") _ctrl_ unsigned nworkers;"#);
        let Item::Global(g) = &p.items[0] else {
            panic!()
        };
        assert!(g.spec.ctrl);
        assert_eq!(g.ty, TypeExpr::Scalar(ScalarType::U32));
    }

    #[test]
    fn map_global() {
        let p = parse_ok(r#"_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;"#);
        let Item::Global(g) = &p.items[0] else {
            panic!()
        };
        assert!(matches!(
            &g.ty,
            TypeExpr::Map {
                key: ScalarType::U64,
                value: ScalarType::U8,
                ..
            }
        ));
    }

    #[test]
    fn outgoing_kernel() {
        let p = parse_ok("_net_ _out_ void k(int *data) { _drop(); }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        assert_eq!(k.kind, KernelKind::Outgoing);
        assert_eq!(k.params.len(), 1);
        assert_eq!(k.params[0].ty, TypeExpr::Ptr(ScalarType::I32));
    }

    #[test]
    fn incoming_kernel_with_ext_params() {
        let p =
            parse_ok("_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {}");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        assert_eq!(k.kind, KernelKind::Incoming);
        assert!(!k.params[0].ext);
        assert!(k.params[1].ext);
        assert!(k.params[2].ext);
    }

    #[test]
    fn kernel_without_net_is_error() {
        let d = parse_err("_out_ void k(int *data) {}");
        assert!(d[0].message.contains("_net_"));
    }

    #[test]
    fn kernel_both_in_and_out_is_error() {
        let d = parse_err("_net_ _out_ _in_ void k(int *d) {}");
        assert!(d[0].message.contains("both"));
    }

    #[test]
    fn window_fields() {
        let p = parse_ok("_net_ _out_ void k(int *d) { unsigned b = window.seq * window.len; }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        let Stmt::Decl { init: Some(e), .. } = &k.body.stmts[0] else {
            panic!()
        };
        let Expr::Binary { lhs, rhs, .. } = e else {
            panic!()
        };
        assert!(matches!(&**lhs, Expr::WindowField(f, _) if f == "seq"));
        assert!(matches!(&**rhs, Expr::WindowField(f, _) if f == "len"));
    }

    #[test]
    fn if_with_auto_decl() {
        let p = parse_ok(
            "_net_ _out_ void k(uint64_t key) { if (auto *idx = Idx[key]) { _reflect(); } }",
        );
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        let Stmt::If {
            decl: Some((n, _)), ..
        } = &k.body.stmts[0]
        else {
            panic!("expected if-with-decl")
        };
        assert_eq!(n, "idx");
    }

    #[test]
    fn for_loop_and_compound_assign() {
        let p = parse_ok(
            "_net_ _out_ void k(int *data) {\
               for (unsigned i = 0; i < 8; ++i) accum[i] += data[i];\
             }",
        );
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        assert!(matches!(&k.body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse_ok("_net_ _out_ void k(int *d) { int x = 1 + 2 * 3 == 7 && 1 < 2; }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        let Stmt::Decl { init: Some(e), .. } = &k.body.stmts[0] else {
            panic!()
        };
        // Top must be `&&`.
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::LAnd,
                ..
            }
        ));
    }

    #[test]
    fn casts_vs_parens() {
        let p = parse_ok("_net_ _out_ void k(int *d) { int x = (int)d[0]; int y = (x + 1); }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        assert!(matches!(
            &k.body.stmts[0],
            Stmt::Decl {
                init: Some(Expr::Cast { .. }),
                ..
            }
        ));
        assert!(matches!(
            &k.body.stmts[1],
            Stmt::Decl {
                init: Some(Expr::Binary { .. }),
                ..
            }
        ));
    }

    #[test]
    fn memcpy_with_addr_of() {
        let p = parse_ok("_net_ _out_ void k(int *data) { memcpy(data, &accum[4], 16); }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Call { callee, args, .. }) = &k.body.stmts[0] else {
            panic!()
        };
        assert_eq!(callee, "memcpy");
        assert_eq!(args.len(), 3);
        assert!(matches!(
            &args[1],
            Expr::Unary {
                op: UnaryOp::AddrOf,
                ..
            }
        ));
    }

    #[test]
    fn wnd_struct() {
        let p = parse_ok("_wnd_ struct WExt { uint16_t len; uint32_t stride; };");
        let Item::WindowExt(w) = &p.items[0] else {
            panic!()
        };
        assert_eq!(w.name, "WExt");
        assert_eq!(w.fields.len(), 2);
        assert_eq!(w.fields[0].0, "len");
        assert_eq!(w.fields[0].1, ScalarType::U16);
    }

    #[test]
    fn host_function() {
        let p = parse_ok("int main() { ncl::ctrl_wr(nworkers, 16); return 0; }");
        let Item::HostFn(f) = &p.items[0] else {
            panic!()
        };
        assert_eq!(f.name, "main");
        let Stmt::Expr(Expr::Call { callee, .. }) = &f.body.stmts[0] else {
            panic!()
        };
        assert_eq!(callee, "ncl::ctrl_wr");
    }

    #[test]
    fn arrow_rejected_with_hint() {
        let d = parse_err("_net_ _out_ void k(int *d) { d->x = 1; }");
        assert!(d[0].message.contains("'->'"));
    }

    #[test]
    fn goto_rejected() {
        let d = parse_err("_net_ _out_ void k(int *d) { goto l; }");
        assert!(d[0].message.contains("not part of the NCL kernel subset"));
    }

    #[test]
    fn local_array_rejected() {
        let d = parse_err("_net_ _out_ void k(int *d) { int tmp[4]; }");
        assert!(d[0].message.contains("switch memory"));
    }

    #[test]
    fn ternary_expression() {
        let p = parse_ok("_net_ _out_ void k(int *d) { d[0] = d[0] > 0 ? d[0] : 0 - d[0]; }");
        let Item::Kernel(k) = &p.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Assign { rhs, .. }) = &k.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(&**rhs, Expr::Ternary { .. }));
    }

    #[test]
    fn error_recovery_collects_multiple() {
        let d = parse_err(
            "_net_ _out_ void a(int *d) { goto x; }\n\
             _net_ _out_ void b(int *d) { d->y = 1; }",
        );
        assert!(d.len() >= 2, "expected 2+ diagnostics, got {d:?}");
    }

    #[test]
    fn fig4_parses() {
        let src = r#"
#define DATA_LEN 1024
#define WIN_LEN 32
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.seq == DATA_LEN / WIN_LEN - 1) *done = true;
}
"#;
        let p = parse_ok(src);
        assert_eq!(p.items.len(), 5);
    }

    #[test]
    fn fig5_parses() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _at_("s1") char Cache[256][128] = {{0}};
_net_ _at_("s1") bool Valid[256] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != 2 && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != 2) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 128); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 128);
        Valid[*idx] = true; _drop();
    } else { }
}
"#;
        let p = parse_ok(src);
        assert_eq!(p.items.len(), 4);
    }
}
