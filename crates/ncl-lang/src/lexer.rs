//! Hand-written lexer for NCL.
//!
//! Handles C-style line and block comments, decimal/hex/octal/binary
//! integer literals with optional `u`/`U`/`l`/`L` suffixes, character and
//! string literals with the usual escapes, all operators of the supported
//! subset, and `#define NAME <integer>` object-like macros (the only
//! preprocessor feature the paper's examples need — `DATA_LEN`,
//! `WIN_LEN`). Macro definitions are expanded during lexing, so the parser
//! never sees them.

use crate::diag::{Diagnostic, Span};
use crate::token::{keyword, Token, TokenKind};
use std::collections::HashMap;

struct Lexer<'s> {
    src: &'s [u8],
    file: &'s str,
    pos: usize,
    line: u32,
    col: u32,
    /// `#define` object macros, expanded as they are referenced.
    defines: HashMap<String, (u64, bool)>,
}

/// Lexes `source` into tokens (terminated by [`TokenKind::Eof`]).
pub fn lex(source: &str, file: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        file,
        pos: 0,
        line: 1,
        col: 1,
        defines: HashMap::new(),
    };
    let mut tokens = Vec::new();
    let mut errors = Vec::new();
    loop {
        match lx.next_token() {
            Ok(tok) => {
                let eof = tok.kind == TokenKind::Eof;
                tokens.push(tok);
                if eof {
                    break;
                }
            }
            Err(d) => {
                errors.push(d);
                // Skip the offending byte and continue, collecting more errors.
                lx.bump();
            }
        }
    }
    if errors.is_empty() {
        Ok(tokens)
    } else {
        Err(errors)
    }
}

impl<'s> Lexer<'s> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        if c != 0 {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn here(&self) -> Span {
        Span::point(self.pos, self.line, self.col)
    }

    fn span_from(&self, start: Span) -> Span {
        Span {
            start: start.start,
            end: self.pos,
            line: start.line,
            col: start.col,
        }
    }

    fn error(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::error(msg, span, self.file)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(self.error("unterminated block comment", start));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'#' => self.directive()?,
                _ => return Ok(()),
            }
        }
    }

    /// Handles `#define NAME <int>` and `#include` (ignored with a note in
    /// spirit — headers are meaningless for kernels).
    fn directive(&mut self) -> Result<(), Diagnostic> {
        let start = self.here();
        self.bump(); // '#'
        let word = self.read_word();
        match word.as_str() {
            "define" => {
                self.skip_inline_ws();
                let name = self.read_word();
                if name.is_empty() {
                    return Err(self.error("#define requires a name", self.span_from(start)));
                }
                self.skip_inline_ws();
                let digits = self.read_number_text();
                if digits.is_empty() {
                    return Err(self.error(
                        format!("#define {name} must expand to an integer literal"),
                        self.span_from(start),
                    ));
                }
                let (value, unsigned) = parse_int(&digits).ok_or_else(|| {
                    self.error("malformed integer literal", self.span_from(start))
                })?;
                self.defines.insert(name, (value, unsigned));
            }
            "include" => {
                // Consume to end of line; kernel sources are self-contained.
                while self.peek() != b'\n' && self.peek() != 0 {
                    self.bump();
                }
            }
            other => {
                return Err(self.error(
                    format!("unsupported preprocessor directive '#{other}'"),
                    self.span_from(start),
                ))
            }
        }
        Ok(())
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t') {
            self.bump();
        }
    }

    fn read_word(&mut self) -> String {
        let mut s = String::new();
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            s.push(self.bump() as char);
        }
        s
    }

    fn read_number_text(&mut self) -> String {
        let mut s = String::new();
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            s.push(self.bump() as char);
        }
        s
    }

    fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let start = self.here();
        let c = self.peek();
        if c == 0 {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: start,
            });
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let word = self.read_word();
            let span = self.span_from(start);
            let kind = if let Some(kw) = keyword(&word) {
                kw
            } else if let Some(&(v, u)) = self.defines.get(&word) {
                TokenKind::Int(v, u)
            } else {
                TokenKind::Ident(word)
            };
            return Ok(Token { kind, span });
        }
        if c.is_ascii_digit() {
            let text = self.read_number_text();
            let span = self.span_from(start);
            let (value, unsigned) = parse_int(&text)
                .ok_or_else(|| self.error(format!("malformed integer literal '{text}'"), span))?;
            return Ok(Token {
                kind: TokenKind::Int(value, unsigned),
                span,
            });
        }
        if c == b'\'' {
            return self.char_literal(start);
        }
        if c == b'"' {
            return self.string_literal(start);
        }
        self.operator(start)
    }

    fn char_literal(&mut self, start: Span) -> Result<Token, Diagnostic> {
        self.bump(); // opening quote
        let c = match self.bump() {
            b'\\' => self.escape(start)?,
            0 | b'\n' => return Err(self.error("unterminated character literal", start)),
            c => c,
        };
        if self.bump() != b'\'' {
            return Err(self.error("character literal must contain one character", start));
        }
        Ok(Token {
            kind: TokenKind::Char(c),
            span: self.span_from(start),
        })
    }

    fn string_literal(&mut self, start: Span) -> Result<Token, Diagnostic> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                b'"' => break,
                b'\\' => s.push(self.escape(start)? as char),
                0 | b'\n' => return Err(self.error("unterminated string literal", start)),
                c => s.push(c as char),
            }
        }
        Ok(Token {
            kind: TokenKind::Str(s),
            span: self.span_from(start),
        })
    }

    fn escape(&mut self, start: Span) -> Result<u8, Diagnostic> {
        Ok(match self.bump() {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            other => {
                return Err(self.error(
                    format!("unsupported escape '\\{}'", other as char),
                    self.span_from(start),
                ))
            }
        })
    }

    fn operator(&mut self, start: Span) -> Result<Token, Diagnostic> {
        use TokenKind::*;
        let (kind, len) = match (self.peek(), self.peek2(), self.peek3()) {
            (b'<', b'<', b'=') => (ShlAssign, 3),
            (b'>', b'>', b'=') => (ShrAssign, 3),
            (b':', b':', _) => (ColonColon, 2),
            (b'-', b'>', _) => (Arrow, 2),
            (b'+', b'+', _) => (PlusPlus, 2),
            (b'-', b'-', _) => (MinusMinus, 2),
            (b'+', b'=', _) => (PlusAssign, 2),
            (b'-', b'=', _) => (MinusAssign, 2),
            (b'*', b'=', _) => (StarAssign, 2),
            (b'/', b'=', _) => (SlashAssign, 2),
            (b'%', b'=', _) => (PercentAssign, 2),
            (b'&', b'=', _) => (AmpAssign, 2),
            (b'|', b'=', _) => (PipeAssign, 2),
            (b'^', b'=', _) => (CaretAssign, 2),
            (b'=', b'=', _) => (EqEq, 2),
            (b'!', b'=', _) => (NotEq, 2),
            (b'<', b'=', _) => (Le, 2),
            (b'>', b'=', _) => (Ge, 2),
            (b'<', b'<', _) => (Shl, 2),
            (b'>', b'>', _) => (Shr, 2),
            (b'&', b'&', _) => (AndAnd, 2),
            (b'|', b'|', _) => (OrOr, 2),
            (b'(', ..) => (LParen, 1),
            (b')', ..) => (RParen, 1),
            (b'{', ..) => (LBrace, 1),
            (b'}', ..) => (RBrace, 1),
            (b'[', ..) => (LBracket, 1),
            (b']', ..) => (RBracket, 1),
            (b';', ..) => (Semi, 1),
            (b',', ..) => (Comma, 1),
            (b'.', ..) => (Dot, 1),
            (b'?', ..) => (Question, 1),
            (b':', ..) => (Colon, 1),
            (b'=', ..) => (Assign, 1),
            (b'+', ..) => (Plus, 1),
            (b'-', ..) => (Minus, 1),
            (b'*', ..) => (Star, 1),
            (b'/', ..) => (Slash, 1),
            (b'%', ..) => (Percent, 1),
            (b'&', ..) => (Amp, 1),
            (b'|', ..) => (Pipe, 1),
            (b'^', ..) => (Caret, 1),
            (b'~', ..) => (Tilde, 1),
            (b'!', ..) => (Bang, 1),
            (b'<', ..) => (Lt, 1),
            (b'>', ..) => (Gt, 1),
            (other, ..) => {
                return Err(self.error(format!("unexpected character '{}'", other as char), start))
            }
        };
        for _ in 0..len {
            self.bump();
        }
        Ok(Token {
            kind,
            span: self.span_from(start),
        })
    }
}

/// Parses a C integer literal (decimal, `0x`, `0b`, or octal `0…`),
/// returning the value and whether a `u`/`U` suffix was present. `l`/`L`
/// suffixes are accepted and ignored (everything is at most 64 bits).
fn parse_int(text: &str) -> Option<(u64, bool)> {
    let lower = text.to_ascii_lowercase();
    let mut body = lower.as_str();
    let mut unsigned = false;
    while let Some(stripped) = body.strip_suffix(['u', 'l']) {
        if body.ends_with('u') {
            unsigned = true;
        }
        body = stripped;
    }
    if body.is_empty() {
        return None;
    }
    let (radix, digits) = if let Some(hex) = body.strip_prefix("0x") {
        (16, hex)
    } else if let Some(bin) = body.strip_prefix("0b") {
        (2, bin)
    } else if body.len() > 1 && body.starts_with('0') {
        (8, &body[1..])
    } else {
        (10, body)
    };
    if digits.is_empty() {
        return None;
    }
    let clean: String = digits.chars().filter(|&c| c != '_').collect();
    u64::from_str_radix(&clean, radix)
        .ok()
        .map(|v| (v, unsigned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src, "t.ncl")
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("_net_ _out_ void allreduce"),
            vec![KwNet, KwOut, KwVoid, Ident("allreduce".into()), Eof]
        );
    }

    #[test]
    fn integer_radices_and_suffixes() {
        assert_eq!(
            kinds("10 0x1F 0b101 017 42u 7UL"),
            vec![
                Int(10, false),
                Int(0x1F, false),
                Int(5, false),
                Int(15, false),
                Int(42, true),
                Int(7, true),
                Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c << d <= e < f :: g"),
            vec![
                Ident("a".into()),
                ShlAssign,
                Ident("b".into()),
                Shr,
                Ident("c".into()),
                Shl,
                Ident("d".into()),
                Le,
                Ident("e".into()),
                Lt,
                Ident("f".into()),
                ColonColon,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn increments_and_compound_assign() {
        assert_eq!(
            kinds("++count[i] += 1;"),
            vec![
                PlusPlus,
                Ident("count".into()),
                LBracket,
                Ident("i".into()),
                RBracket,
                PlusAssign,
                Int(1, false),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("a // line\n b /* block\n over lines */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* nope", "t.ncl").is_err());
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            kinds(r#" "s1" 'a' '\n' "#),
            vec![Str("s1".into()), Char(b'a'), Char(b'\n'), Eof]
        );
    }

    #[test]
    fn defines_expand() {
        let src = "#define WIN_LEN 32\n#define DATA_LEN 0x100\nWIN_LEN DATA_LEN";
        assert_eq!(kinds(src), vec![Int(32, false), Int(256, false), Eof]);
    }

    #[test]
    fn includes_are_skipped() {
        assert_eq!(kinds("#include <ncl.h>\nx"), vec![Ident("x".into()), Eof]);
    }

    #[test]
    fn unknown_directive_errors() {
        assert!(lex("#pragma once", "t.ncl").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b", "t.ncl").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("a @ b", "t.ncl").unwrap_err();
        assert!(err[0].message.contains("unexpected character"));
    }

    #[test]
    fn fig4_snippet_lexes() {
        let src = r#"
            _net_ _at_("s1") int accum[DATA_LEN] = {0};
            _net_ _out_ void allreduce(int *data) {
                unsigned base = window.seq * window.len;
                for (unsigned i = 0; i < window.len; ++i)
                    accum[base + i] += data[i];
            }
        "#;
        let src = format!("#define DATA_LEN 1024\n{src}");
        let toks = lex(&src, "fig4.ncl").unwrap();
        assert!(toks.len() > 40);
        assert_eq!(toks.last().unwrap().kind, Eof);
    }
}
