//! Semantic analysis for NCL programs.
//!
//! Performs name resolution, constant evaluation, type checking of kernel
//! bodies, and the paper's declaration-specifier rules:
//!
//! * `_ctrl_` variables require a location and are read-only in kernels
//!   (paper §4.1);
//! * `ncl::Map` is implicitly `_ctrl_` — kernels look up, the control
//!   plane inserts (paper §4.3, the NetCache-style design);
//! * `_ext_` parameters are only valid on `_in_` kernels, which "must
//!   match" their paired `_out_` kernel's parameter list;
//! * forwarding intrinsics are only valid in `_out_` kernels;
//! * `_at_` labels partition kernels and switch memory per location.
//!
//! The output, [`CheckedProgram`], is the frontend's interface to the IR
//! lowering in `ncl-ir`: resolved globals with evaluated dimensions and
//! initializers, kernels with parameter layouts, the window-extension
//! layout, and a [`TypeCtx`] that lowering reuses so the two phases can
//! never disagree about a type.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use c3::{Label, ScalarType, Value};
use std::collections::HashMap;

/// A semantic type (after resolution).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// An integer/bool scalar.
    Scalar(ScalarType),
    /// A pointer to scalars: kernel array parameters, `&expr`, and
    /// successfully-tested map lookups.
    Ptr(ScalarType),
    /// A map lookup result before its null test (`Idx[key]`).
    OptPtr(ScalarType),
    /// Switch-memory array with evaluated dimensions.
    Array(ScalarType, Vec<usize>),
    /// A row of a 2-D switch array (e.g. `Cache[*idx]`): pointer-like,
    /// usable only with `memcpy`.
    Row(ScalarType, usize),
    /// An `ncl::Map<K, V, N>`.
    Map(ScalarType, ScalarType, usize),
    /// Statement-like expressions (intrinsic calls).
    Void,
}

impl Ty {
    /// The scalar type, if this is a plain scalar.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            Ty::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether the type can appear in a boolean condition.
    pub fn is_condition(&self) -> bool {
        matches!(self, Ty::Scalar(_) | Ty::Ptr(_) | Ty::OptPtr(_))
    }

    /// Whether this is pointer-like (a valid `memcpy` operand).
    pub fn is_pointerish(&self) -> bool {
        matches!(self, Ty::Ptr(_) | Ty::OptPtr(_) | Ty::Row(..))
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Scalar(s) => write!(f, "{s}"),
            Ty::Ptr(s) => write!(f, "{s}*"),
            Ty::OptPtr(s) => write!(f, "{s}* (maybe null)"),
            Ty::Array(s, dims) => {
                write!(f, "{s}")?;
                for d in dims {
                    write!(f, "[{d}]")?;
                }
                Ok(())
            }
            Ty::Row(s, n) => write!(f, "{s}[{n}] row"),
            Ty::Map(k, v, n) => write!(f, "ncl::Map<{k}, {v}, {n}>"),
            Ty::Void => write!(f, "void"),
        }
    }
}

/// How a checked global is realized on the switch.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalKind {
    /// Switch memory (paper: statically allocated, kernel-private):
    /// a register array. Scalars are 1-element arrays.
    Register {
        /// Element scalar type.
        elem: ScalarType,
        /// Evaluated dimensions (empty = scalar).
        dims: Vec<usize>,
        /// Flattened initial values (padded with zeros).
        init: Vec<Value>,
    },
    /// A `_ctrl_` variable: written by host code, read-only in kernels.
    Ctrl {
        /// Scalar type.
        ty: ScalarType,
        /// Initial value.
        init: Value,
    },
    /// An `ncl::Map` (a MAT managed by the control plane).
    Map {
        /// Key type.
        key: ScalarType,
        /// Value type.
        value: ScalarType,
        /// Capacity.
        capacity: usize,
    },
}

/// A checked global declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalInfo {
    /// Variable name.
    pub name: String,
    /// Placement label, if `_at_` was given.
    pub at: Option<Label>,
    /// Realization.
    pub kind: GlobalKind,
    /// Declaration site.
    pub span: Span,
}

impl GlobalInfo {
    /// The semantic type of this global in expressions.
    pub fn ty(&self) -> Ty {
        match &self.kind {
            GlobalKind::Register { elem, dims, .. } => {
                if dims.is_empty() {
                    Ty::Scalar(*elem)
                } else {
                    Ty::Array(*elem, dims.clone())
                }
            }
            GlobalKind::Ctrl { ty, .. } => Ty::Scalar(*ty),
            GlobalKind::Map {
                key,
                value,
                capacity,
            } => Ty::Map(*key, *value, *capacity),
        }
    }

    /// Total element count for register globals (1 for scalars).
    pub fn register_len(&self) -> Option<usize> {
        match &self.kind {
            GlobalKind::Register { dims, .. } => Some(dims.iter().product::<usize>().max(1)),
            _ => None,
        }
    }
}

/// A checked kernel parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParamInfo {
    /// Name.
    pub name: String,
    /// Element scalar type.
    pub elem: ScalarType,
    /// Whether the parameter is a pointer (array) or per-window scalar.
    pub is_ptr: bool,
    /// `_ext_` (host memory, `_in_` kernels only).
    pub ext: bool,
}

/// A checked kernel.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Outgoing or incoming.
    pub kind: KernelKind,
    /// Placement label, if restricted with `_at_`.
    pub at: Option<Label>,
    /// Parameters in order.
    pub params: Vec<ParamInfo>,
    /// The kernel body (still AST; lowering consumes it together with
    /// the [`TypeCtx`]).
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

impl KernelInfo {
    /// The window-data (non-`_ext_`) parameters.
    pub fn window_params(&self) -> impl Iterator<Item = &ParamInfo> {
        self.params.iter().filter(|p| !p.ext)
    }

    /// Number of window-data parameters (the required mask arity).
    pub fn window_arity(&self) -> usize {
        self.window_params().count()
    }
}

/// Layout of the programmer's window-struct extension: name, and fields
/// with byte offsets into the NCP ext block.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WindowExtLayout {
    /// Struct name.
    pub name: String,
    /// `(field, type, byte offset)` in declaration order.
    pub fields: Vec<(String, ScalarType, usize)>,
}

impl WindowExtLayout {
    /// Total bytes of the ext block.
    pub fn size(&self) -> usize {
        self.fields
            .iter()
            .map(|(_, ty, off)| off + ty.size())
            .max()
            .unwrap_or(0)
    }

    /// Looks up a field.
    pub fn field(&self, name: &str) -> Option<(ScalarType, usize)> {
        self.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, ty, off)| (*ty, *off))
    }
}

/// The builtin fields of the `window` struct (paper §4.2).
pub const WINDOW_BUILTINS: &[(&str, ScalarType)] = &[
    ("seq", ScalarType::U32),
    ("sender", ScalarType::U16),
    ("from", ScalarType::U16),
    ("len", ScalarType::U16),
    ("nchunks", ScalarType::U8),
    ("last", ScalarType::Bool),
    // NCP-R: true when the switch replay filter has already seen this
    // (sender, seq) — i.e. the window is a retransmission. Always false
    // on hosts and on kernels compiled without a replay filter.
    ("replay", ScalarType::Bool),
];

/// The builtin fields of the `location` struct (paper §4.1).
pub const LOCATION_BUILTINS: &[(&str, ScalarType)] = &[("id", ScalarType::U16)];

/// The result of semantic analysis.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CheckedProgram {
    /// Source file name (diagnostic anchor for later passes).
    pub file: String,
    /// Switch globals (registers, ctrl variables, maps).
    pub globals: Vec<GlobalInfo>,
    /// Host-side named constants (`const`/`#define`), pre-evaluated.
    pub consts: HashMap<String, Value>,
    /// Window-struct extension layout (empty when not declared).
    pub window_ext: WindowExtLayout,
    /// Kernels in declaration order.
    pub kernels: Vec<KernelInfo>,
    /// Host function names (not compiled to the switch).
    pub host_fns: Vec<String>,
    /// Warnings produced during analysis (errors abort instead).
    pub warnings: Vec<Diagnostic>,
}

impl CheckedProgram {
    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalInfo> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelInfo> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Builds the type context lowering uses to re-derive types.
    pub fn type_ctx(&self) -> TypeCtx<'_> {
        TypeCtx { program: self }
    }
}

/// Runs semantic analysis over a parsed program. `file` labels the
/// diagnostics.
pub fn analyze(program: &Program, file: &str) -> Result<CheckedProgram, Vec<Diagnostic>> {
    let mut cx = Checker {
        out: CheckedProgram {
            file: file.to_string(),
            ..CheckedProgram::default()
        },
        diags: Vec::new(),
        file: file.to_string(),
    };
    cx.run(program);
    if cx.diags.is_empty() {
        Ok(cx.out)
    } else {
        Err(cx.diags)
    }
}

struct Checker {
    out: CheckedProgram,
    diags: Vec<Diagnostic>,
    file: String,
}

impl Checker {
    fn error(&mut self, msg: impl Into<String>, span: Span) {
        self.diags
            .push(Diagnostic::error(msg, span, self.file.clone()));
    }

    fn warn(&mut self, msg: impl Into<String>, span: Span) {
        self.out
            .warnings
            .push(Diagnostic::warning(msg, span, self.file.clone()));
    }

    fn run(&mut self, program: &Program) {
        // Pass 1: window extension + constants first (dims may use them).
        for item in &program.items {
            match item {
                Item::WindowExt(w) => self.window_ext(w),
                Item::Global(g) if !g.spec.net => self.host_const(g),
                _ => {}
            }
        }
        // Pass 2: switch globals.
        for item in &program.items {
            if let Item::Global(g) = item {
                if g.spec.net {
                    self.switch_global(g);
                }
            }
        }
        // Pass 3: kernels and host functions.
        for item in &program.items {
            match item {
                Item::Kernel(k) => self.kernel(k),
                Item::HostFn(f) => self.out.host_fns.push(f.name.clone()),
                _ => {}
            }
        }
        self.check_pairing(program);
    }

    fn window_ext(&mut self, w: &WindowExtDef) {
        if !self.out.window_ext.fields.is_empty() {
            self.error(
                "multiple '_wnd_ struct' extensions; only one is allowed per program",
                w.span,
            );
            return;
        }
        let mut offset = 0usize;
        let mut fields = Vec::new();
        for (name, ty, fspan) in &w.fields {
            if WINDOW_BUILTINS.iter().any(|(b, _)| b == name) {
                self.error(
                    format!("window extension field '{name}' shadows a builtin window field"),
                    *fspan,
                );
            }
            if fields.iter().any(|(n, _, _): &(String, _, _)| n == name) {
                self.error(format!("duplicate window extension field '{name}'"), *fspan);
            }
            fields.push((name.clone(), *ty, offset));
            offset += ty.size();
        }
        self.out.window_ext = WindowExtLayout {
            name: w.name.clone(),
            fields,
        };
    }

    fn host_const(&mut self, g: &GlobalDecl) {
        if !g.spec.konst {
            self.error(
                format!(
                    "global '{}' is neither '_net_' (switch memory) nor 'const' \
                     (host constant); plain host globals are not visible to kernels",
                    g.name
                ),
                g.span,
            );
            return;
        }
        let TypeExpr::Scalar(ty) = g.ty else {
            self.error(
                format!("host constant '{}' must have scalar type", g.name),
                g.span,
            );
            return;
        };
        let Some(Initializer::Scalar(e)) = &g.init else {
            self.error(
                format!("host constant '{}' requires a scalar initializer", g.name),
                g.span,
            );
            return;
        };
        match self.const_eval(e) {
            Some(v) => {
                self.out.consts.insert(g.name.clone(), v.cast(ty));
            }
            None => self.error(
                format!("initializer of '{}' is not a constant expression", g.name),
                e.span(),
            ),
        }
    }

    fn switch_global(&mut self, g: &GlobalDecl) {
        if self.out.global(&g.name).is_some() {
            self.error(format!("duplicate global '{}'", g.name), g.span);
            return;
        }
        let at = g.spec.at.as_deref().map(Label::new);
        let kind = match &g.ty {
            TypeExpr::Map {
                key,
                value,
                capacity,
            } => {
                if g.spec.ctrl {
                    self.warn(
                        "'_ctrl_' on an ncl::Map is redundant; maps are implicitly control-plane managed",
                        g.span,
                    );
                }
                if at.is_none() {
                    self.error(
                        format!(
                            "map '{}' requires a location: it is control-plane state \
                             (declare it '_at_(\"label\")')",
                            g.name
                        ),
                        g.span,
                    );
                }
                if g.init.is_some() {
                    self.error(
                        format!(
                            "map '{}' cannot have an initializer; the control plane populates it",
                            g.name
                        ),
                        g.span,
                    );
                }
                let capacity = match self.const_eval(capacity) {
                    Some(v) if v.bits() > 0 => v.bits() as usize,
                    _ => {
                        self.error(
                            format!("map '{}' capacity must be a positive constant", g.name),
                            g.span,
                        );
                        return;
                    }
                };
                GlobalKind::Map {
                    key: *key,
                    value: *value,
                    capacity,
                }
            }
            TypeExpr::Scalar(ty) if g.spec.ctrl => {
                // Paper §4.1: "_net_ _ctrl_ _at_(label) ... i.e. location
                // is required".
                if at.is_none() {
                    self.error(
                        format!(
                            "control variable '{}' requires an '_at_(\"label\")' location",
                            g.name
                        ),
                        g.span,
                    );
                }
                let init = match &g.init {
                    None => Value::zero(*ty),
                    Some(Initializer::Scalar(e)) => match self.const_eval(e) {
                        Some(v) => v.cast(*ty),
                        None => {
                            self.error("control variable initializer must be constant", e.span());
                            Value::zero(*ty)
                        }
                    },
                    Some(Initializer::List(_)) => {
                        self.error(
                            "control variables are scalars; list initializer invalid",
                            g.span,
                        );
                        Value::zero(*ty)
                    }
                };
                GlobalKind::Ctrl { ty: *ty, init }
            }
            TypeExpr::Scalar(ty) => {
                let init = match &g.init {
                    None => Value::zero(*ty),
                    Some(Initializer::Scalar(e)) => match self.const_eval(e) {
                        Some(v) => v.cast(*ty),
                        None => {
                            self.error("switch memory initializer must be constant", e.span());
                            Value::zero(*ty)
                        }
                    },
                    Some(Initializer::List(items)) if items.len() <= 1 => match items.first() {
                        Some(Initializer::Scalar(e)) => {
                            self.const_eval(e).map(|v| v.cast(*ty)).unwrap_or_else(|| {
                                self.error("switch memory initializer must be constant", e.span());
                                Value::zero(*ty)
                            })
                        }
                        _ => Value::zero(*ty),
                    },
                    Some(Initializer::List(_)) => {
                        self.error(
                            format!(
                                "scalar '{}' cannot take a multi-element initializer",
                                g.name
                            ),
                            g.span,
                        );
                        Value::zero(*ty)
                    }
                };
                GlobalKind::Register {
                    elem: *ty,
                    dims: vec![],
                    init: vec![init],
                }
            }
            TypeExpr::Array(elem, dim_exprs) => {
                if g.spec.ctrl {
                    self.error(
                        format!("control variable '{}' must be a scalar", g.name),
                        g.span,
                    );
                }
                let mut dims = Vec::new();
                for d in dim_exprs {
                    match self.const_eval(d) {
                        Some(v) if v.bits() > 0 => dims.push(v.bits() as usize),
                        _ => {
                            self.error(
                                format!(
                                    "array dimension of '{}' must be a positive constant",
                                    g.name
                                ),
                                d.span(),
                            );
                            dims.push(1);
                        }
                    }
                }
                let total: usize = dims.iter().product();
                let mut init = vec![Value::zero(*elem); total];
                if let Some(i) = &g.init {
                    self.fill_array_init(i, *elem, &dims, &mut init, 0, g.span);
                }
                GlobalKind::Register {
                    elem: *elem,
                    dims,
                    init,
                }
            }
            TypeExpr::Ptr(_) => {
                self.error(
                    format!("switch memory '{}' cannot be a pointer", g.name),
                    g.span,
                );
                return;
            }
            TypeExpr::Void => {
                self.error(format!("global '{}' cannot be void", g.name), g.span);
                return;
            }
        };
        self.out.globals.push(GlobalInfo {
            name: g.name.clone(),
            at,
            kind,
            span: g.span,
        });
    }

    /// Fills a flattened array initializer following C's brace rules
    /// (`{0}` zero-fills; `{{0}}` zero-fills rows).
    fn fill_array_init(
        &mut self,
        init: &Initializer,
        elem: ScalarType,
        dims: &[usize],
        out: &mut [Value],
        base: usize,
        span: Span,
    ) {
        match init {
            Initializer::Scalar(e) => {
                if let Some(v) = self.const_eval(e) {
                    if base < out.len() {
                        out[base] = v.cast(elem);
                    }
                } else {
                    self.error("array initializer element must be constant", e.span());
                }
            }
            Initializer::List(items) => {
                if dims.len() <= 1 {
                    for (i, item) in items.iter().enumerate() {
                        match item {
                            Initializer::Scalar(e) => {
                                if let Some(v) = self.const_eval(e) {
                                    if base + i < out.len() {
                                        out[base + i] = v.cast(elem);
                                    } else {
                                        self.error("too many initializer elements", e.span());
                                        return;
                                    }
                                }
                            }
                            Initializer::List(_) => {
                                self.error("unexpected nested initializer", span)
                            }
                        }
                    }
                } else {
                    let row: usize = dims[1..].iter().product();
                    for (i, item) in items.iter().enumerate() {
                        if i >= dims[0] {
                            self.error("too many initializer rows", span);
                            return;
                        }
                        self.fill_array_init(item, elem, &dims[1..], out, base + i * row, span);
                    }
                }
            }
        }
    }

    /// Evaluates a constant expression (literals, named constants,
    /// arithmetic, sizeof, casts).
    fn const_eval(&self, e: &Expr) -> Option<Value> {
        const_eval_with(e, &self.out.consts)
    }

    fn kernel(&mut self, k: &KernelDef) {
        if self.out.kernel(&k.name).is_some() && k.spec.at.is_none() {
            self.error(
                format!(
                    "duplicate kernel '{}' without a location; use '_at_' to \
                     place different versions on different switches",
                    k.name
                ),
                k.span,
            );
        }
        match &k.ret {
            TypeExpr::Void | TypeExpr::Scalar(ScalarType::I32) => {}
            other => self.error(
                format!("kernel return type must be void or int, found {other}"),
                k.span,
            ),
        }
        if k.kind == KernelKind::Incoming {
            if let Some(at) = &k.spec.at {
                // Paper: "a location is meaningless for incoming kernels".
                self.warn(
                    format!("'_at_(\"{at}\")' on incoming kernel '{}' is ignored: incoming kernels exist on all hosts", k.name),
                    k.spec.span,
                );
            }
        }
        let mut params = Vec::new();
        for p in &k.params {
            if p.ext && k.kind == KernelKind::Outgoing {
                self.error(
                    format!(
                        "'_ext_' parameter '{}' is only valid on '_in_' kernels",
                        p.name
                    ),
                    p.span,
                );
            }
            let (elem, is_ptr) = match &p.ty {
                TypeExpr::Ptr(s) => (*s, true),
                TypeExpr::Scalar(s) => (*s, false),
                other => {
                    self.error(
                        format!("parameter '{}' has unsupported type {other}", p.name),
                        p.span,
                    );
                    (ScalarType::I32, false)
                }
            };
            if params.iter().any(|q: &ParamInfo| q.name == p.name) {
                self.error(format!("duplicate parameter '{}'", p.name), p.span);
            }
            params.push(ParamInfo {
                name: p.name.clone(),
                elem,
                is_ptr,
                ext: p.ext,
            });
        }
        // `_ext_` params must trail the window-data params so the pairing
        // rule ("must match its parameter list") is positional.
        let mut seen_ext = false;
        for p in &params {
            if p.ext {
                seen_ext = true;
            } else if seen_ext {
                self.error(
                    format!(
                        "window parameter '{}' follows an '_ext_' parameter; \
                         '_ext_' parameters extend the list at the end",
                        p.name
                    ),
                    k.span,
                );
                break;
            }
        }
        let info = KernelInfo {
            name: k.name.clone(),
            kind: k.kind,
            at: k.spec.at.as_deref().map(Label::new),
            params,
            body: k.body.clone(),
            span: k.span,
        };
        self.check_body(&info);
        self.out.kernels.push(info);
    }

    /// Pairing check: each `_in_` kernel's window parameters must match
    /// some `_out_` kernel's window parameters positionally (paper §4.1).
    fn check_pairing(&mut self, _program: &Program) {
        let outs: Vec<Vec<(ScalarType, bool)>> = self
            .out
            .kernels
            .iter()
            .filter(|k| k.kind == KernelKind::Outgoing)
            .map(|k| k.window_params().map(|p| (p.elem, p.is_ptr)).collect())
            .collect();
        let unpaired: Vec<(String, Span)> = self
            .out
            .kernels
            .iter()
            .filter(|k| k.kind == KernelKind::Incoming)
            .filter(|k| {
                let sig: Vec<(ScalarType, bool)> =
                    k.window_params().map(|p| (p.elem, p.is_ptr)).collect();
                !outs.is_empty() && !outs.iter().any(|o| o == &sig)
            })
            .map(|k| (k.name.clone(), k.span))
            .collect();
        for (name, span) in unpaired {
            self.error(
                format!(
                    "incoming kernel '{name}' does not match any outgoing kernel's \
                     parameter list; window data must be accessed in the same manner"
                ),
                span,
            );
        }
    }

    // ------------------------------------------------------------------
    // Body type checking
    // ------------------------------------------------------------------

    fn check_body(&mut self, k: &KernelInfo) {
        let mut scope = Scope::new();
        for p in &k.params {
            let ty = if p.is_ptr {
                Ty::Ptr(p.elem)
            } else {
                Ty::Scalar(p.elem)
            };
            scope.declare(&p.name, ty);
        }
        let mut body_cx = BodyCx {
            checker: self,
            kernel: k,
            scope,
            loop_depth: 0,
        };
        body_cx.block(&k.body);
    }
}

struct Scope {
    frames: Vec<HashMap<String, Ty>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty) {
        self.frames
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), ty);
    }

    fn lookup(&self, name: &str) -> Option<&Ty> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    fn shadows(&self, name: &str) -> bool {
        self.frames
            .last()
            .map(|f| f.contains_key(name))
            .unwrap_or(false)
    }
}

struct BodyCx<'a> {
    checker: &'a mut Checker,
    kernel: &'a KernelInfo,
    scope: Scope,
    loop_depth: u32,
}

impl BodyCx<'_> {
    fn error(&mut self, msg: impl Into<String>, span: Span) {
        self.checker.error(msg, span);
    }

    fn block(&mut self, b: &Block) {
        self.scope.push();
        for s in &b.stmts {
            self.stmt(s);
        }
        self.scope.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(b) => self.block(b),
            Stmt::Empty(_) => {}
            Stmt::Expr(e) => {
                // Assignments, calls, and inc/dec are the only
                // expressions with effects; anything else is dead.
                match e {
                    Expr::Assign { .. } | Expr::Call { .. } | Expr::IncDec { .. } => {
                        self.expr(e);
                    }
                    other => {
                        self.expr(other);
                        self.checker
                            .warn("expression statement has no effect", other.span());
                    }
                }
            }
            Stmt::Decl {
                ty,
                name,
                init,
                auto_ptr,
                span,
            } => self.decl(ty, name, init, *auto_ptr, *span),
            Stmt::If {
                decl,
                cond,
                then,
                els,
                ..
            } => {
                self.scope.push();
                let cond_ty = self.expr(cond);
                if let Some((name, dspan)) = decl {
                    match cond_ty {
                        Some(Ty::OptPtr(v)) => self.scope.declare(name, Ty::Ptr(v)),
                        Some(other) => {
                            self.error(
                                format!(
                                    "'if (auto *{name} = ...)' requires a map lookup, found {other}"
                                ),
                                *dspan,
                            );
                            self.scope.declare(name, Ty::Ptr(ScalarType::U8));
                        }
                        None => self.scope.declare(name, Ty::Ptr(ScalarType::U8)),
                    }
                } else if let Some(t) = &cond_ty {
                    if !t.is_condition() {
                        self.error(format!("condition has non-scalar type {t}"), cond.span());
                    }
                }
                self.stmt(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
                self.scope.pop();
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scope.push();
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    if let Some(t) = self.expr(c) {
                        if !t.is_condition() {
                            self.error(format!("loop condition has non-scalar type {t}"), c.span());
                        }
                    }
                }
                if let Some(s) = step {
                    self.expr(s);
                }
                self.loop_depth += 1;
                self.stmt(body);
                self.loop_depth -= 1;
                self.scope.pop();
            }
            Stmt::While { cond, body, .. } => {
                if let Some(t) = self.expr(cond) {
                    if !t.is_condition() {
                        self.error(
                            format!("loop condition has non-scalar type {t}"),
                            cond.span(),
                        );
                    }
                }
                self.loop_depth += 1;
                self.stmt(body);
                self.loop_depth -= 1;
            }
            Stmt::Return(value, span) => {
                if let Some(v) = value {
                    if let Some(t) = self.expr(v) {
                        if t.as_scalar().is_none() {
                            self.error(format!("cannot return value of type {t}"), *span);
                        }
                    }
                }
            }
            Stmt::Break(span) => {
                if self.loop_depth == 0 {
                    self.error("'break' outside of a loop", *span);
                }
            }
            Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    self.error("'continue' outside of a loop", *span);
                }
            }
        }
    }

    fn decl(
        &mut self,
        ty: &Option<TypeExpr>,
        name: &str,
        init: &Option<Expr>,
        auto_ptr: bool,
        span: Span,
    ) {
        if self.scope.shadows(name) {
            self.error(format!("redeclaration of '{name}' in the same scope"), span);
        }
        if self.checker.out.global(name).is_some() {
            self.error(
                format!("local '{name}' shadows a switch global of the same name"),
                span,
            );
        }
        let declared = match ty {
            Some(TypeExpr::Scalar(s)) => Some(Ty::Scalar(*s)),
            Some(TypeExpr::Ptr(_)) => {
                self.error(
                    "pointer locals are only created by 'auto *x = Map[key]'",
                    span,
                );
                None
            }
            Some(other) => {
                self.error(format!("unsupported local type {other}"), span);
                None
            }
            None => None, // auto
        };
        let init_ty = init.as_ref().and_then(|e| self.expr(e));
        let final_ty = match (declared, ty.is_none(), init_ty) {
            // `auto *x = Idx[key];` — unchecked lookup (paper Fig. 5
            // line 12); deref of a miss reads index 0.
            (None, true, Some(Ty::OptPtr(v))) if auto_ptr => Ty::Ptr(v),
            (None, true, Some(other)) => {
                if auto_ptr {
                    self.error(
                        format!("'auto *{name}' requires a map lookup initializer, found {other}"),
                        span,
                    );
                    Ty::Ptr(ScalarType::U8)
                } else if let Some(s) = other.as_scalar() {
                    Ty::Scalar(s)
                } else {
                    self.error(format!("cannot infer scalar type from {other}"), span);
                    Ty::Scalar(ScalarType::I32)
                }
            }
            (None, true, None) => {
                self.error(format!("'auto {name}' requires an initializer"), span);
                Ty::Scalar(ScalarType::I32)
            }
            (Some(d), _, Some(i)) => {
                if let (Ty::Scalar(_), Some(_)) = (&d, i.as_scalar()) {
                    // Implicit conversion on init, C-style.
                } else if d != i {
                    self.error(
                        format!("cannot initialize '{name}' of type {d} from {i}"),
                        span,
                    );
                }
                d
            }
            (Some(d), _, None) => d,
            (None, false, _) => Ty::Scalar(ScalarType::I32),
        };
        self.scope.declare(name, final_ty);
    }

    /// Type-checks an expression; `None` means an error was already
    /// reported for a sub-expression.
    fn expr(&mut self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(v, unsigned, _) => {
                let ty = if *unsigned || *v > i64::MAX as u64 {
                    if *v > u32::MAX as u64 {
                        ScalarType::U64
                    } else {
                        ScalarType::U32
                    }
                } else if *v > i32::MAX as u64 {
                    ScalarType::I64
                } else {
                    ScalarType::I32
                };
                Some(Ty::Scalar(ty))
            }
            Expr::Bool(..) => Some(Ty::Scalar(ScalarType::Bool)),
            Expr::Char(..) => Some(Ty::Scalar(ScalarType::I8)),
            Expr::Str(_, span) => {
                self.error(
                    "string literals are only valid as '_at_'/'_pass'/'_here' arguments",
                    *span,
                );
                None
            }
            Expr::Ident(name, span) => self.ident(name, *span),
            Expr::WindowField(field, span) => self.window_field(field, *span),
            Expr::LocationField(field, span) => {
                match LOCATION_BUILTINS.iter().find(|(n, _)| n == field) {
                    Some((_, ty)) => Some(Ty::Scalar(*ty)),
                    None => {
                        self.error(
                            format!("'location' has no field '{field}' (available: id)"),
                            *span,
                        );
                        None
                    }
                }
            }
            Expr::Index { base, index, span } => self.index(base, index, *span),
            Expr::Unary { op, expr, span } => self.unary(*op, expr, *span),
            Expr::Binary { op, lhs, rhs, span } => self.binary(*op, lhs, rhs, *span),
            Expr::Assign { op, lhs, rhs, span } => self.assign(*op, lhs, rhs, *span),
            Expr::IncDec { target, span, .. } => {
                let t = self.expr(target)?;
                self.require_place(target, *span);
                match t.as_scalar() {
                    Some(s) => Some(Ty::Scalar(s)),
                    None => {
                        self.error(format!("cannot increment value of type {t}"), *span);
                        None
                    }
                }
            }
            Expr::Call { callee, args, span } => self.call(callee, args, *span),
            Expr::Cast { ty, expr, span } => {
                let t = self.expr(expr)?;
                if t.as_scalar().is_none() {
                    self.error(format!("cannot cast {t} to {ty}"), *span);
                    return None;
                }
                Some(Ty::Scalar(*ty))
            }
            Expr::Ternary {
                cond,
                then,
                els,
                span,
            } => {
                let c = self.expr(cond)?;
                if !c.is_condition() {
                    self.error(format!("condition has non-scalar type {c}"), cond.span());
                }
                let a = self.expr(then)?;
                let b = self.expr(els)?;
                match (a.as_scalar(), b.as_scalar()) {
                    (Some(x), Some(y)) => Some(Ty::Scalar(usual_conversion(x, y))),
                    _ => {
                        self.error(
                            format!("ternary arms must be scalars, found {a} and {b}"),
                            *span,
                        );
                        None
                    }
                }
            }
            Expr::SizeOf(..) => Some(Ty::Scalar(ScalarType::U32)),
        }
    }

    fn ident(&mut self, name: &str, span: Span) -> Option<Ty> {
        if let Some(t) = self.scope.lookup(name) {
            return Some(t.clone());
        }
        if let Some(v) = self.checker.out.consts.get(name) {
            return Some(Ty::Scalar(v.ty()));
        }
        if let Some(g) = self.checker.out.global(name).cloned() {
            // Location-conflict pre-check (the IR versioning pass redoes
            // this per module; catching it here gives a source span).
            let kernel_at = self.kernel.at.clone();
            if let (Some(gat), Some(kat)) = (&g.at, &kernel_at) {
                if gat != kat && self.kernel.kind == KernelKind::Outgoing {
                    self.error(
                        format!(
                            "kernel '{}' at \"{}\" uses switch memory '{}' placed at \"{}\"",
                            self.kernel.name, kat, name, gat
                        ),
                        span,
                    );
                }
            }
            if self.kernel.kind == KernelKind::Incoming {
                self.error(
                    format!(
                        "incoming kernel '{}' cannot access switch memory '{}'; \
                         incoming kernels run on hosts",
                        self.kernel.name, name
                    ),
                    span,
                );
            }
            return Some(g.ty());
        }
        self.error(format!("unknown identifier '{name}'"), span);
        None
    }

    fn window_field(&mut self, field: &str, span: Span) -> Option<Ty> {
        if let Some((_, ty)) = WINDOW_BUILTINS.iter().find(|(n, _)| *n == field) {
            return Some(Ty::Scalar(*ty));
        }
        if let Some((ty, _)) = self.checker.out.window_ext.field(field) {
            return Some(Ty::Scalar(ty));
        }
        let mut available: Vec<&str> = WINDOW_BUILTINS.iter().map(|(n, _)| *n).collect();
        let ext_names: Vec<String> = self
            .checker
            .out
            .window_ext
            .fields
            .iter()
            .map(|(n, _, _)| n.clone())
            .collect();
        available.extend(ext_names.iter().map(|s| s.as_str()));
        self.error(
            format!(
                "'window' has no field '{field}' (available: {})",
                available.join(", ")
            ),
            span,
        );
        None
    }

    fn index(&mut self, base: &Expr, index: &Expr, span: Span) -> Option<Ty> {
        let bt = self.expr(base)?;
        let it = self.expr(index)?;
        match &bt {
            Ty::Map(k, v, _) => {
                match it.as_scalar() {
                    Some(s) if s.unsigned() == k.unsigned() || s.size() <= k.size() => {}
                    Some(s) => self.checker.warn(
                        format!("map key of type {s} narrows/widens to {k}"),
                        index.span(),
                    ),
                    None => {
                        self.error(
                            format!("map key must be a scalar, found {it}"),
                            index.span(),
                        );
                    }
                }
                Some(Ty::OptPtr(*v))
            }
            _ => {
                if it.as_scalar().is_none() {
                    self.error(format!("index must be a scalar, found {it}"), index.span());
                }
                match bt {
                    Ty::Array(elem, dims) => match dims.len() {
                        0 | 1 => Some(Ty::Scalar(elem)),
                        2 => Some(Ty::Row(elem, dims[1])),
                        _ => {
                            self.error(
                                "arrays of more than two dimensions are not supported",
                                span,
                            );
                            None
                        }
                    },
                    Ty::Ptr(elem) => Some(Ty::Scalar(elem)),
                    Ty::Row(elem, _) => Some(Ty::Scalar(elem)),
                    other => {
                        self.error(format!("cannot index into {other}"), span);
                        None
                    }
                }
            }
        }
    }

    fn unary(&mut self, op: UnaryOp, expr: &Expr, span: Span) -> Option<Ty> {
        let t = self.expr(expr)?;
        match op {
            UnaryOp::Neg | UnaryOp::BitNot => match t.as_scalar() {
                Some(s) => Some(Ty::Scalar(promote(s))),
                None => {
                    self.error(format!("cannot apply unary operator to {t}"), span);
                    None
                }
            },
            UnaryOp::Not => {
                if t.is_condition() {
                    Some(Ty::Scalar(ScalarType::Bool))
                } else {
                    self.error(format!("cannot apply '!' to {t}"), span);
                    None
                }
            }
            UnaryOp::Deref => match t {
                Ty::Ptr(v) | Ty::OptPtr(v) => Some(Ty::Scalar(v)),
                other => {
                    self.error(format!("cannot dereference {other}"), span);
                    None
                }
            },
            UnaryOp::AddrOf => match (&t, expr) {
                (Ty::Scalar(s), Expr::Index { .. }) => Some(Ty::Ptr(*s)),
                (Ty::Scalar(s), Expr::Ident(..)) => Some(Ty::Ptr(*s)),
                _ => {
                    self.error(
                        "'&' is only supported on array elements and variables \
                         (as a memcpy operand)",
                        span,
                    );
                    None
                }
            },
        }
    }

    fn binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr, span: Span) -> Option<Ty> {
        let lt = self.expr(lhs)?;
        let rt = self.expr(rhs)?;
        use BinaryOp::*;
        match op {
            LAnd | LOr => {
                if !lt.is_condition() || !rt.is_condition() {
                    self.error(
                        format!("logical operator on non-scalar operands ({lt}, {rt})"),
                        span,
                    );
                    return None;
                }
                Some(Ty::Scalar(ScalarType::Bool))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                // Pointer null tests (`Idx[k] != 0`) are not in the
                // paper's examples; comparisons require scalars.
                match (lt.as_scalar(), rt.as_scalar()) {
                    (Some(_), Some(_)) => Some(Ty::Scalar(ScalarType::Bool)),
                    _ => {
                        self.error(format!("cannot compare {lt} with {rt}"), span);
                        None
                    }
                }
            }
            _ => match (lt.as_scalar(), rt.as_scalar()) {
                (Some(a), Some(b)) => Some(Ty::Scalar(usual_conversion(a, b))),
                _ => {
                    self.error(
                        format!("arithmetic on non-scalar operands ({lt}, {rt})"),
                        span,
                    );
                    None
                }
            },
        }
    }

    fn assign(&mut self, _op: AssignOp, lhs: &Expr, rhs: &Expr, span: Span) -> Option<Ty> {
        let lt = self.expr(lhs)?;
        self.require_place(lhs, span);
        let rt = self.expr(rhs)?;
        match (lt.as_scalar(), rt.as_scalar()) {
            (Some(l), Some(_)) => Some(Ty::Scalar(l)),
            _ => {
                self.error(format!("cannot assign {rt} to place of type {lt}"), span);
                None
            }
        }
    }

    /// Verifies that `e` denotes an assignable place and that the place
    /// is writable from this kernel (control variables and maps are not).
    fn require_place(&mut self, e: &Expr, span: Span) {
        match e {
            Expr::Ident(name, _) => {
                if self.scope.lookup(name).is_some() {
                    return; // locals and params are writable
                }
                if self.checker.out.consts.contains_key(name) {
                    self.error(format!("cannot assign to constant '{name}'"), span);
                    return;
                }
                if let Some(g) = self.checker.out.global(name) {
                    match g.kind {
                        GlobalKind::Ctrl { .. } => self.error(
                            format!(
                                "control variable '{name}' is read-only in kernel code; \
                                 host code writes it via ncl::ctrl_wr"
                            ),
                            span,
                        ),
                        GlobalKind::Map { .. } => self.error(
                            format!("map '{name}' is managed by the control plane"),
                            span,
                        ),
                        GlobalKind::Register { .. } => {}
                    }
                    return;
                }
                self.error(format!("unknown identifier '{name}'"), span);
            }
            Expr::Index { base, .. } => match &**base {
                Expr::Ident(name, _) => {
                    if let Some(g) = self.checker.out.global(name) {
                        if matches!(g.kind, GlobalKind::Map { .. }) {
                            self.error(
                                format!(
                                    "cannot insert into map '{name}' from kernel code; \
                                     the control plane manages map entries"
                                ),
                                span,
                            );
                        }
                    }
                }
                Expr::Index { .. } => {} // 2-D element write
                _ => {}
            },
            Expr::Unary {
                op: UnaryOp::Deref,
                expr,
                ..
            } => {
                // `*done = true` writes through an _ext_ pointer (hosts)
                // or a map-value pointer (switch: disallowed).
                if let Expr::Ident(name, _) = &**expr {
                    if let Some(Ty::Ptr(_)) = self.scope.lookup(name) {
                        return;
                    }
                }
                self.error("cannot assign through this pointer", span);
            }
            Expr::WindowField(field, _) => {
                // Builtin fields are read-only; extension fields may be
                // rewritten by kernels (they travel with the window).
                if self.checker.out.window_ext.field(field).is_none() {
                    self.error(format!("builtin window field '{field}' is read-only"), span);
                }
            }
            other => {
                self.error("expression is not an assignable place", other.span());
            }
        }
    }

    fn call(&mut self, callee: &str, args: &[Expr], span: Span) -> Option<Ty> {
        match callee {
            "_pass" => {
                self.require_outgoing(callee, span);
                match args {
                    [] => {}
                    [Expr::Str(..)] => {}
                    _ => self.error("_pass() takes no argument or one label string", span),
                }
                Some(Ty::Void)
            }
            "_drop" | "_reflect" | "_bcast" => {
                self.require_outgoing(callee, span);
                if !args.is_empty() {
                    self.error(format!("{callee}() takes no arguments"), span);
                }
                Some(Ty::Void)
            }
            "_here" => {
                if !matches!(args, [Expr::Str(..)]) {
                    self.error("_here() takes exactly one label string", span);
                }
                Some(Ty::Scalar(ScalarType::Bool))
            }
            "_hash" => {
                // Stdlib hash (paper §3.2: "Maps or bloom-filters"):
                // `_hash(value, salt)` → uint32_t, computed by the
                // stage's hash unit (lowered to a fixed ALU sequence).
                if args.len() != 2 {
                    self.error("_hash() takes (value, salt)", span);
                    return Some(Ty::Scalar(ScalarType::U32));
                }
                if let Some(t) = self.expr(&args[0]) {
                    if t.as_scalar().is_none() {
                        self.error(
                            format!("_hash value must be a scalar, found {t}"),
                            args[0].span(),
                        );
                    }
                }
                if let Some(t) = self.expr(&args[1]) {
                    if t.as_scalar().is_none() {
                        self.error("_hash salt must be a scalar constant", args[1].span());
                    }
                }
                Some(Ty::Scalar(ScalarType::U32))
            }
            "memcpy" => {
                if args.len() != 3 {
                    self.error("memcpy takes (dst, src, nbytes)", span);
                    return Some(Ty::Void);
                }
                let dst = self.expr(&args[0])?;
                let src = self.expr(&args[1])?;
                if !dst.is_pointerish() {
                    self.error(
                        format!("memcpy destination must be pointer-like, found {dst}"),
                        args[0].span(),
                    );
                }
                if !src.is_pointerish() {
                    self.error(
                        format!("memcpy source must be pointer-like, found {src}"),
                        args[1].span(),
                    );
                }
                if let Some(t) = self.expr(&args[2]) {
                    if t.as_scalar().is_none() {
                        self.error("memcpy length must be a scalar", args[2].span());
                    }
                }
                Some(Ty::Void)
            }
            other if other.starts_with("ncl::") => {
                self.error(
                    format!(
                        "host API '{other}' cannot be called from kernel code; \
                         it belongs to libncrt"
                    ),
                    span,
                );
                None
            }
            other => {
                self.error(
                    format!(
                        "call to '{other}': kernels cannot call functions \
                         (PISA provides no call stack)"
                    ),
                    span,
                );
                None
            }
        }
    }

    fn require_outgoing(&mut self, what: &str, span: Span) {
        if self.kernel.kind != KernelKind::Outgoing {
            self.error(
                format!("{what}() is a forwarding decision; only '_out_' kernels forward windows"),
                span,
            );
        }
    }
}

/// C integer promotion: anything narrower than `int` promotes to `int`.
pub fn promote(s: ScalarType) -> ScalarType {
    match s {
        ScalarType::Bool | ScalarType::I8 | ScalarType::I16 | ScalarType::U8 | ScalarType::U16 => {
            ScalarType::I32
        }
        other => other,
    }
}

/// C's usual arithmetic conversions, restricted to our integer types.
pub fn usual_conversion(a: ScalarType, b: ScalarType) -> ScalarType {
    let a = promote(a);
    let b = promote(b);
    if a == b {
        return a;
    }
    let (wider, narrower) = if a.size() >= b.size() { (a, b) } else { (b, a) };
    if wider.size() > narrower.size() {
        // The wider type wins; if the narrower is unsigned it still fits.
        return wider;
    }
    // Same width, different signedness: unsigned wins (C).
    wider.unsigned()
}

/// Evaluates a constant expression against a table of named constants.
pub fn const_eval_with(e: &Expr, consts: &HashMap<String, Value>) -> Option<Value> {
    use c3::BinOp as VB;
    match e {
        Expr::Int(v, unsigned, _) => Some(if *unsigned {
            if *v > u32::MAX as u64 {
                Value::u64(*v)
            } else {
                Value::u32(*v as u32)
            }
        } else if *v <= i32::MAX as u64 {
            Value::i32(*v as i32)
        } else {
            Value::i64(*v as i64)
        }),
        Expr::Bool(b, _) => Some(Value::bool(*b)),
        Expr::Char(c, _) => Some(Value::new(ScalarType::I8, *c as u64)),
        Expr::Ident(name, _) => consts.get(name).copied(),
        Expr::SizeOf(ty, _) => Some(Value::u32(ty.size() as u32)),
        Expr::Cast { ty, expr, .. } => Some(const_eval_with(expr, consts)?.cast(*ty)),
        Expr::Unary { op, expr, .. } => {
            let v = const_eval_with(expr, consts)?;
            let op = match op {
                UnaryOp::Neg => c3::UnOp::Neg,
                UnaryOp::BitNot => c3::UnOp::BitNot,
                UnaryOp::Not => c3::UnOp::Not,
                _ => return None,
            };
            Some(Value::unop(op, v))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_eval_with(lhs, consts)?;
            let b = const_eval_with(rhs, consts)?;
            let vb = match op {
                BinaryOp::Add => VB::Add,
                BinaryOp::Sub => VB::Sub,
                BinaryOp::Mul => VB::Mul,
                BinaryOp::Div => VB::Div,
                BinaryOp::Rem => VB::Rem,
                BinaryOp::And => VB::And,
                BinaryOp::Or => VB::Or,
                BinaryOp::Xor => VB::Xor,
                BinaryOp::Shl => VB::Shl,
                BinaryOp::Shr => VB::Shr,
                BinaryOp::Eq => VB::Eq,
                BinaryOp::Ne => VB::Ne,
                BinaryOp::Lt => VB::Lt,
                BinaryOp::Le => VB::Le,
                BinaryOp::Gt => VB::Gt,
                BinaryOp::Ge => VB::Ge,
                BinaryOp::LAnd => {
                    return Some(Value::bool(a.is_truthy() && b.is_truthy()));
                }
                BinaryOp::LOr => {
                    return Some(Value::bool(a.is_truthy() || b.is_truthy()));
                }
            };
            let common = usual_conversion(a.ty(), b.ty());
            Some(Value::binop(vb, a.cast(common), b.cast(common)))
        }
        Expr::Ternary {
            cond, then, els, ..
        } => {
            let c = const_eval_with(cond, consts)?;
            if c.is_truthy() {
                const_eval_with(then, consts)
            } else {
                const_eval_with(els, consts)
            }
        }
        _ => None,
    }
}

/// A façade over [`CheckedProgram`] that IR lowering uses to re-derive
/// expression types consistently with sema's rules.
pub struct TypeCtx<'a> {
    /// The analyzed program.
    pub program: &'a CheckedProgram,
}

impl TypeCtx<'_> {
    /// Resolves the builtin or extension `window.<field>` type/offset.
    /// Builtins return `(ty, None)`; extension fields `(ty, Some(offset))`.
    pub fn window_field(&self, field: &str) -> Option<(ScalarType, Option<usize>)> {
        if let Some((_, ty)) = WINDOW_BUILTINS.iter().find(|(n, _)| *n == field) {
            return Some((*ty, None));
        }
        self.program
            .window_ext
            .field(field)
            .map(|(ty, off)| (ty, Some(off)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check(src: &str) -> Result<CheckedProgram, Vec<Diagnostic>> {
        analyze(&parse(src, "t.ncl").expect("parse should succeed"), "t.ncl")
    }

    fn check_ok(src: &str) -> CheckedProgram {
        check(src).unwrap_or_else(|d| panic!("sema failed: {}", crate::diag::render(&d)))
    }

    fn first_error(src: &str) -> String {
        check(src).unwrap_err()[0].message.clone()
    }

    // ------------------------------------------------------------------
    // Globals
    // ------------------------------------------------------------------

    #[test]
    fn register_global_with_dims_and_init() {
        let p = check_ok(r#"_net_ _at_("s1") int accum[4] = {1, 2};"#);
        let g = p.global("accum").unwrap();
        let GlobalKind::Register { elem, dims, init } = &g.kind else {
            panic!()
        };
        assert_eq!(*elem, ScalarType::I32);
        assert_eq!(dims, &[4]);
        assert_eq!(init[0], Value::i32(1));
        assert_eq!(init[1], Value::i32(2));
        assert_eq!(init[2], Value::i32(0));
    }

    #[test]
    fn two_dim_zero_init() {
        let p = check_ok(r#"_net_ _at_("s1") char Cache[4][8] = {{0}};"#);
        let g = p.global("Cache").unwrap();
        assert_eq!(g.register_len(), Some(32));
    }

    #[test]
    fn dims_from_defines_and_consts() {
        let p = check_ok(
            "#define DATA_LEN 64\nconst int WIN = 8;\n_net_ _at_(\"s1\") unsigned count[DATA_LEN/WIN];",
        );
        let g = p.global("count").unwrap();
        let GlobalKind::Register { dims, .. } = &g.kind else {
            panic!()
        };
        assert_eq!(dims, &[8]);
    }

    #[test]
    fn ctrl_requires_location() {
        let msg = first_error("_net_ _ctrl_ unsigned nworkers;");
        assert!(msg.contains("requires an '_at_"), "{msg}");
    }

    #[test]
    fn ctrl_ok_with_location() {
        let p = check_ok(r#"_net_ _ctrl_ _at_("s1") unsigned nworkers = 4;"#);
        let g = p.global("nworkers").unwrap();
        assert!(matches!(
            g.kind,
            GlobalKind::Ctrl {
                ty: ScalarType::U32,
                ..
            }
        ));
    }

    #[test]
    fn map_global() {
        let p = check_ok(r#"_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;"#);
        let g = p.global("Idx").unwrap();
        assert!(matches!(g.kind, GlobalKind::Map { capacity: 256, .. }));
    }

    #[test]
    fn map_requires_location() {
        let msg = first_error("_net_ ncl::Map<uint64_t, uint8_t, 16> Idx;");
        assert!(msg.contains("requires a location"), "{msg}");
    }

    #[test]
    fn plain_host_global_rejected() {
        let msg = first_error("int leftovers;");
        assert!(msg.contains("not visible to kernels"), "{msg}");
    }

    #[test]
    fn host_const_folds() {
        let p = check_ok("const unsigned N = 4 * 8;");
        assert_eq!(p.consts["N"], Value::u32(32));
    }

    // ------------------------------------------------------------------
    // Kernels: specifier rules
    // ------------------------------------------------------------------

    #[test]
    fn ext_param_on_out_kernel_rejected() {
        let msg = first_error("_net_ _out_ void k(int *d, _ext_ int *h) {}");
        assert!(msg.contains("only valid on '_in_'"), "{msg}");
    }

    #[test]
    fn forwarding_in_incoming_kernel_rejected() {
        let src = "_net_ _out_ void k(int *d) {}\n\
                   _net_ _in_ void r(int *d) { _drop(); }";
        let diags = check(src).unwrap_err();
        assert!(diags
            .iter()
            .any(|d| d.message.contains("only '_out_' kernels forward")));
    }

    #[test]
    fn incoming_pairing_enforced() {
        let src = "_net_ _out_ void k(int *d) {}\n\
                   _net_ _in_ void r(uint64_t *d) {}";
        let msg = check(src).unwrap_err()[0].message.clone();
        assert!(msg.contains("does not match any outgoing kernel"), "{msg}");
    }

    #[test]
    fn incoming_pairing_ignores_ext_params() {
        check_ok(
            "_net_ _out_ void k(int *d) { _drop(); }\n\
             _net_ _in_ void r(int *d, _ext_ int *h, _ext_ bool *done) { *done = true; }",
        );
    }

    #[test]
    fn ctrl_read_only_in_kernels() {
        let src = r#"
            _net_ _ctrl_ _at_("s1") unsigned n;
            _net_ _out_ void k(int *d) { n = 3; }
        "#;
        let diags = check(src).unwrap_err();
        assert!(diags.iter().any(|d| d.message.contains("read-only")));
    }

    #[test]
    fn map_insert_rejected() {
        let src = r#"
            _net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
            _net_ _out_ void k(uint64_t key) { Idx[key] = 1; }
        "#;
        let diags = check(src).unwrap_err();
        assert!(
            diags.iter().any(|d| d.message.contains("control plane")),
            "{diags:?}"
        );
    }

    #[test]
    fn location_conflict_detected() {
        let src = r#"
            _net_ _at_("s2") int mem[4];
            _net_ _out_ _at_("s1") void k(int *d) { mem[0] = 1; }
        "#;
        let diags = check(src).unwrap_err();
        assert!(
            diags.iter().any(|d| d.message.contains("placed at \"s2\"")),
            "{diags:?}"
        );
    }

    #[test]
    fn incoming_cannot_touch_switch_memory() {
        let src = r#"
            _net_ _at_("s1") int mem[4];
            _net_ _out_ void k(int *d) { mem[0] += d[0]; }
            _net_ _in_ void r(int *d) { d[0] = mem[0]; }
        "#;
        let diags = check(src).unwrap_err();
        assert!(diags
            .iter()
            .any(|d| d.message.contains("cannot access switch memory")));
    }

    #[test]
    fn at_on_incoming_kernel_warns() {
        let p = check_ok(
            "_net_ _out_ void k(int *d) { _drop(); }\n\
             _net_ _in_ _at_(\"s1\") void r(int *d) {}",
        );
        assert!(p.warnings.iter().any(|w| w.message.contains("ignored")));
    }

    // ------------------------------------------------------------------
    // Bodies: types, places, builtins
    // ------------------------------------------------------------------

    #[test]
    fn window_builtin_fields_typed() {
        check_ok(
            "_net_ _out_ void k(int *d) { unsigned b = window.seq * 4u; \
             if (window.last) { _drop(); } }",
        );
    }

    #[test]
    fn unknown_window_field_lists_available() {
        let msg = first_error("_net_ _out_ void k(int *d) { unsigned x = window.wat; }");
        assert!(
            msg.contains("no field 'wat'") && msg.contains("seq"),
            "{msg}"
        );
    }

    #[test]
    fn wnd_ext_field_usable_and_writable() {
        check_ok(
            "_wnd_ struct W { uint16_t stride; };\n\
             _net_ _out_ void k(int *d) { unsigned s = window.stride; window.stride = 3; }",
        );
    }

    #[test]
    fn builtin_window_field_not_writable() {
        let msg = first_error("_net_ _out_ void k(int *d) { window.seq = 0; }");
        assert!(msg.contains("read-only"), "{msg}");
    }

    #[test]
    fn map_lookup_in_if_decl() {
        check_ok(
            r#"
            _net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
            _net_ _at_("s1") bool Valid[16] = {false};
            _net_ _out_ void k(uint64_t key) {
                if (auto *idx = Idx[key]) { Valid[*idx] = false; }
            }
            "#,
        );
    }

    #[test]
    fn auto_ptr_requires_map_lookup() {
        let msg = first_error("_net_ _out_ void k(int *d) { auto *p = d[0]; }");
        assert!(msg.contains("map lookup"), "{msg}");
    }

    #[test]
    fn deref_of_scalar_rejected() {
        let msg = first_error("_net_ _out_ void k(int *d) { int x = *window.seq; }");
        assert!(msg.contains("dereference"), "{msg}");
    }

    #[test]
    fn memcpy_rows_and_pointers() {
        check_ok(
            r#"
            _net_ _at_("s1") char Cache[16][32] = {{0}};
            _net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
            _net_ _out_ void k(uint64_t key, char *val) {
                if (auto *i = Idx[key]) { memcpy(val, Cache[*i], 32); _reflect(); }
            }
            "#,
        );
    }

    #[test]
    fn memcpy_scalar_dst_rejected() {
        let msg = first_error("_net_ _out_ void k(int *d) { memcpy(d[0], d, 4); }");
        assert!(msg.contains("destination must be pointer-like"), "{msg}");
    }

    #[test]
    fn call_to_unknown_function_rejected() {
        let msg = first_error("_net_ _out_ void k(int *d) { helper(d); }");
        assert!(msg.contains("no call stack"), "{msg}");
    }

    #[test]
    fn host_api_in_kernel_rejected() {
        let msg = first_error("_net_ _out_ void k(int *d) { ncl::ctrl_wr(d, 1); }");
        assert!(msg.contains("libncrt"), "{msg}");
    }

    #[test]
    fn break_outside_loop() {
        let msg = first_error("_net_ _out_ void k(int *d) { break; }");
        assert!(msg.contains("outside of a loop"), "{msg}");
    }

    #[test]
    fn assign_to_constant_rejected() {
        let msg = first_error("const int N = 3;\n_net_ _out_ void k(int *d) { N = 4; }");
        assert!(msg.contains("constant"), "{msg}");
    }

    #[test]
    fn here_builtin_returns_bool() {
        check_ok(r#"_net_ _out_ void k(int *d) { if (_here("s1")) { _drop(); } }"#);
    }

    #[test]
    fn location_id_field() {
        check_ok("_net_ _out_ void k(int *d) { if (location.id == 1) { _drop(); } }");
    }

    #[test]
    fn usual_conversions() {
        assert_eq!(
            usual_conversion(ScalarType::U8, ScalarType::I32),
            ScalarType::I32
        );
        assert_eq!(
            usual_conversion(ScalarType::U32, ScalarType::I32),
            ScalarType::U32
        );
        assert_eq!(
            usual_conversion(ScalarType::I64, ScalarType::U32),
            ScalarType::I64
        );
        assert_eq!(
            usual_conversion(ScalarType::Bool, ScalarType::Bool),
            ScalarType::I32
        );
    }

    // ------------------------------------------------------------------
    // The paper's figures pass sema end-to-end
    // ------------------------------------------------------------------

    const FIG4: &str = r#"
#define DATA_LEN 1024
#define WIN_LEN 32
_wnd_ struct W { uint16_t wlen; };
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}
"#;

    #[test]
    fn fig4_allreduce_checks() {
        let p = check_ok(FIG4);
        assert_eq!(p.kernels.len(), 2);
        let out = p.kernel("allreduce").unwrap();
        assert_eq!(out.window_arity(), 1);
        let inn = p.kernel("result").unwrap();
        assert_eq!(inn.window_arity(), 1);
        assert_eq!(inn.params.len(), 3);
    }

    const FIG5: &str = r#"
const uint16_t SERVER = 2;
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _at_("s1") char Cache[256][128] = {{0}};
_net_ _at_("s1") bool Valid[256] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 128); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 128);
        Valid[*idx] = true; _drop();
    } else { }
}
"#;

    #[test]
    fn fig5_kvs_checks() {
        let p = check_ok(FIG5);
        let k = p.kernel("query").unwrap();
        assert_eq!(k.window_arity(), 3);
        assert!(!k.params[0].is_ptr);
        assert!(k.params[1].is_ptr);
    }
}
