//! Token definitions for the NCL lexer.

use crate::diag::Span;
use std::fmt;

/// A lexed token: kind plus source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

/// The kinds of NCL tokens.
///
/// The NCL declaration specifiers (`_net_`, `_out_`, …) lex as dedicated
/// keywords — they are reserved in kernel code, exactly like CUDA's
/// `__global__` is in CUDA C.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier (including type names resolved later).
    Ident(String),
    /// Integer literal (value, plus whether a `u`/`U` suffix was present).
    Int(u64, bool),
    /// Character literal, already decoded.
    Char(u8),
    /// String literal, already unescaped.
    Str(String),

    // --- C keywords of the supported subset ---
    /// `void`
    KwVoid,
    /// `bool`
    KwBool,
    /// `char`
    KwChar,
    /// `int`
    KwInt,
    /// `unsigned`
    KwUnsigned,
    /// `signed`
    KwSigned,
    /// `short`
    KwShort,
    /// `long`
    KwLong,
    /// `const`
    KwConst,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `for`
    KwFor,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `struct`
    KwStruct,
    /// `auto`
    KwAuto,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `sizeof`
    KwSizeof,
    /// `switch` — recognized so we can reject it with a clear message.
    KwSwitch,
    /// `goto` — recognized so we can reject it with a clear message.
    KwGoto,

    // --- NCL declaration specifiers (paper §4.1) ---
    /// `_net_`
    KwNet,
    /// `_out_`
    KwOut,
    /// `_in_`
    KwIn,
    /// `_ctrl_`
    KwCtrl,
    /// `_at_`
    KwAt,
    /// `_ext_`
    KwExt,
    /// `_wnd_` — declares a window-struct extension.
    KwWnd,

    // --- punctuation / operators ---
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `::`
    ColonColon,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `->` — recognized to produce a targeted error (no heap objects).
    Arrow,

    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short printable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(v, _) => format!("integer '{v}'"),
            TokenKind::Char(c) => format!("character literal '{}'", *c as char),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of file".into(),
            other => format!("'{}'", other.glyph()),
        }
    }

    /// The literal spelling of fixed tokens.
    pub fn glyph(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwVoid => "void",
            KwBool => "bool",
            KwChar => "char",
            KwInt => "int",
            KwUnsigned => "unsigned",
            KwSigned => "signed",
            KwShort => "short",
            KwLong => "long",
            KwConst => "const",
            KwIf => "if",
            KwElse => "else",
            KwFor => "for",
            KwWhile => "while",
            KwDo => "do",
            KwReturn => "return",
            KwBreak => "break",
            KwContinue => "continue",
            KwStruct => "struct",
            KwAuto => "auto",
            KwTrue => "true",
            KwFalse => "false",
            KwSizeof => "sizeof",
            KwSwitch => "switch",
            KwGoto => "goto",
            KwNet => "_net_",
            KwOut => "_out_",
            KwIn => "_in_",
            KwCtrl => "_ctrl_",
            KwAt => "_at_",
            KwExt => "_ext_",
            KwWnd => "_wnd_",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            ColonColon => "::",
            Question => "?",
            Colon => ":",
            Arrow => "->",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            PlusPlus => "++",
            MinusMinus => "--",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Ident(_) | Int(..) | Char(_) | Str(_) | Eof => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Maps an identifier spelling to its keyword, if reserved.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match ident {
        "void" => KwVoid,
        "bool" => KwBool,
        "char" => KwChar,
        "int" => KwInt,
        "unsigned" => KwUnsigned,
        "signed" => KwSigned,
        "short" => KwShort,
        "long" => KwLong,
        "const" => KwConst,
        "if" => KwIf,
        "else" => KwElse,
        "for" => KwFor,
        "while" => KwWhile,
        "do" => KwDo,
        "return" => KwReturn,
        "break" => KwBreak,
        "continue" => KwContinue,
        "struct" => KwStruct,
        "auto" => KwAuto,
        "true" => KwTrue,
        "false" => KwFalse,
        "sizeof" => KwSizeof,
        "switch" => KwSwitch,
        "goto" => KwGoto,
        "_net_" => KwNet,
        "_out_" => KwOut,
        "_in_" => KwIn,
        "_ctrl_" => KwCtrl,
        "_at_" => KwAt,
        "_ext_" => KwExt,
        "_wnd_" => KwWnd,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword("_net_"), Some(TokenKind::KwNet));
        assert_eq!(keyword("unsigned"), Some(TokenKind::KwUnsigned));
        assert_eq!(keyword("window"), None);
    }

    #[test]
    fn describe_forms() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier 'x'");
        assert_eq!(TokenKind::Shl.describe(), "'<<'");
        assert_eq!(TokenKind::Eof.describe(), "end of file");
    }
}
