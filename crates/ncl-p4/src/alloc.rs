//! Stage allocation: predicated linear ops → match-action stages.
//!
//! Constraints honored (matching both real RMT and our [`pisa`] resource
//! model):
//!
//! * **RAW**: an op reading a register written by another op executes in
//!   a strictly later stage (stage ALUs read the PHV at stage input and
//!   write at stage output) — *except* within a fused register action
//!   (below);
//! * **WAR** (anti): a write may share the reader's stage — stage-input
//!   reads see the old value — but never precede it;
//! * **WAW**: ordered into distinct stages (same-group excepted);
//! * **register banks**: all accesses to one register bank fuse into a
//!   single stage, together with the ALU ops on def-use paths between
//!   the bank's reads and its writes. This models the **stateful ALU /
//!   RegisterAction** of RMT chips: "increment, compare against the
//!   threshold, conditionally reset, and hand back the value" is one
//!   atomic register access — exactly what SwitchML-style aggregation
//!   (and the paper's Fig. 4 `++count[seq] == nworkers` pattern)
//!   requires;
//! * **budgets**: stages overflowing the per-stage op/table budget are
//!   split, preserving op order and keeping fused groups intact.
//!
//! Map lookups are table applications: the key (and guard) must be
//! ready before the stage, and the outputs (`found`, `val`) become
//! available to later stages.

use crate::flatten::{LinearKernel, PredInst};
use ncl_ir::ir::{Inst, Operand, RegId};
use std::collections::HashMap;

/// Per-stage budgets the allocator packs against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocBudget {
    /// VLIW ops per stage.
    pub ops_per_stage: usize,
    /// Tables per stage. Each map lookup is one table; each run of
    /// plain ops adds one.
    pub tables_per_stage: usize,
    /// Maximum predicate-chain depth the stage gateway evaluates
    /// (0 disables gateway chaining — the ablation knob).
    pub gateway_depth: usize,
}

impl AllocBudget {
    /// Budgets from a resource model (default gateway depth).
    pub fn from_model(m: &pisa::ResourceModel) -> Self {
        AllocBudget {
            ops_per_stage: m.ops_per_stage,
            tables_per_stage: m.tables_per_stage,
            gateway_depth: GATEWAY_DEPTH,
        }
    }
}

/// The staged program: `stages[s]` lists the ops executing in stage `s`,
/// in order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StagedKernel {
    /// Ops per stage.
    pub stages: Vec<Vec<PredInst>>,
}

impl StagedKernel {
    /// Total op count.
    pub fn op_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }
}

/// Reads of an instruction including its guard.
fn reads(p: &PredInst) -> Vec<RegId> {
    let mut r: Vec<RegId> = p
        .inst
        .operands()
        .into_iter()
        .filter_map(|o| match o {
            Operand::Reg(x) => Some(x),
            Operand::Const(_) => None,
        })
        .collect();
    if let Some(g) = p.guard {
        r.push(g);
    }
    r
}

fn writes(p: &PredInst) -> Vec<RegId> {
    p.inst.dsts()
}

/// A dependency location beyond virtual registers: PHV-resident window
/// state and the forwarding decision. Two accesses of the same location
/// are ordered by the same RAW/WAR/WAW rules as register accesses —
/// without this, two stores to `data[0]` could land in swapped stages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Loc {
    /// A window payload element; `None` index = dynamic (conflicts with
    /// every element of that parameter).
    Win(u16, Option<u64>),
    /// An extended window-struct field.
    Ext(u16),
    /// The forwarding-decision intrinsic.
    Fwd,
}

fn loc_index(o: &Operand) -> Option<u64> {
    o.as_const().map(|v| v.bits())
}

/// Locations an op reads.
fn loc_reads(p: &PredInst) -> Vec<Loc> {
    match &p.inst {
        Inst::LdWin { param, index, .. } => vec![Loc::Win(*param, loc_index(index))],
        Inst::LdMeta {
            field: ncl_ir::ir::MetaField::Ext(off, _),
            ..
        } => vec![Loc::Ext(*off)],
        _ => vec![],
    }
}

/// Locations an op writes.
fn loc_writes(p: &PredInst) -> Vec<Loc> {
    match &p.inst {
        Inst::StWin { param, index, .. } => vec![Loc::Win(*param, loc_index(index))],
        Inst::StExt { offset, .. } => vec![Loc::Ext(*offset)],
        Inst::Fwd { .. } => vec![Loc::Fwd],
        _ => vec![],
    }
}

/// Whether two locations may alias.
fn loc_conflict(a: Loc, b: Loc) -> bool {
    match (a, b) {
        (Loc::Win(pa, ia), Loc::Win(pb, ib)) => {
            pa == pb && (ia.is_none() || ib.is_none() || ia == ib)
        }
        _ => a == b,
    }
}

/// The register bank an op touches, if any.
fn bank(p: &PredInst) -> Option<u32> {
    match &p.inst {
        Inst::LdReg { arr, .. } | Inst::StReg { arr, .. } => Some(arr.0),
        _ => None,
    }
}

/// Whether an op is a table application (map lookup).
fn is_table(p: &PredInst) -> bool {
    matches!(p.inst, Inst::MapGet { .. })
}

/// Whether an op belongs to the predicate class: cheap boolean logic an
/// RMT stage's *gateway* evaluates at stage input (comparisons,
/// and/or/not over predicate bits). Bounded chains of these may share a
/// stage with the actions they gate.
fn is_pred_class(p: &PredInst, reg_tys: &[c3::ScalarType]) -> bool {
    let bool_dst = p
        .inst
        .dst()
        .map(|d| reg_tys[d.0 as usize] == c3::ScalarType::Bool)
        .unwrap_or(false);
    if !bool_dst {
        return false;
    }
    matches!(
        p.inst,
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Copy { .. } | Inst::Cast { .. }
    )
}

/// Default predicate-chain depth evaluable within one stage's gateway.
pub const GATEWAY_DEPTH: usize = 8;

/// Allocation failure: the fixpoint diverged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocDiverged;

/// Union-find over op indices.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Self {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Computes fused register-action groups: for every bank, its accesses
/// plus the ops on def-use paths from the bank's reads to its writes.
/// Returns `group[i]` = representative op index, or `usize::MAX` when
/// ungrouped.
fn fuse_groups(lin: &LinearKernel) -> Vec<usize> {
    let n = lin.ops.len();
    // def-use successor lists via last-writer.
    let mut succ: Vec<Vec<usize>> = vec![vec![]; n];
    let mut pred: Vec<Vec<usize>> = vec![vec![]; n];
    {
        let mut last_writer: HashMap<RegId, usize> = HashMap::new();
        for (j, p) in lin.ops.iter().enumerate() {
            for r in reads(p) {
                if let Some(&i) = last_writer.get(&r) {
                    succ[i].push(j);
                    pred[j].push(i);
                }
            }
            for r in writes(p) {
                last_writer.insert(r, j);
            }
        }
    }
    let mut uf = Uf::new(n);
    // Per bank: forward reach from reads ∩ backward reach from writes.
    let mut banks: HashMap<u32, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, p) in lin.ops.iter().enumerate() {
        match &p.inst {
            Inst::LdReg { .. } => banks.entry(bank(p).unwrap()).or_default().0.push(i),
            Inst::StReg { .. } => banks.entry(bank(p).unwrap()).or_default().1.push(i),
            _ => {}
        }
    }
    for (lds, sts) in banks.values() {
        let fwd = reach(&succ, lds, n);
        let bwd = reach(&pred, sts, n);
        let mut members: Vec<usize> = (0..n).filter(|&i| fwd[i] && bwd[i]).collect();
        members.extend(lds.iter().copied());
        members.extend(sts.iter().copied());
        if let Some(&first) = members.first() {
            for &m in &members[1..] {
                uf.union(first, m);
            }
        }
    }
    let mut grouped = vec![usize::MAX; n];
    // Only ops actually in some bank's member set get a group; compute
    // membership again cheaply: any op unioned with a bank op.
    let bank_ops: Vec<usize> = (0..n).filter(|&i| bank(&lin.ops[i]).is_some()).collect();
    let bank_roots: Vec<usize> = {
        let mut v: Vec<usize> = bank_ops.iter().map(|&i| uf.find(i)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for (i, g) in grouped.iter_mut().enumerate() {
        let r = uf.find(i);
        if bank_roots.contains(&r) {
            *g = r;
        }
    }
    grouped
}

fn reach(adj: &[Vec<usize>], seeds: &[usize], n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = seeds.to_vec();
    for &s in seeds {
        seen[s] = true;
    }
    while let Some(x) = stack.pop() {
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    seen
}

/// Assigns a stage to every op and splits overflowing stages.
pub fn allocate(lin: &LinearKernel, budget: &AllocBudget) -> Result<StagedKernel, AllocDiverged> {
    let n = lin.ops.len();
    if n == 0 {
        return Ok(StagedKernel::default());
    }
    let group = fuse_groups(lin);
    let same_group = |i: usize, j: usize| group[i] != usize::MAX && group[i] == group[j];
    let pred_class: Vec<bool> = lin
        .ops
        .iter()
        .map(|p| is_pred_class(p, &lin.reg_tys))
        .collect();
    let mut stage = vec![0usize; n];
    let mut depth = vec![0usize; n];
    for round in 0..10_000 {
        let mut changed = false;
        // Group stages from the previous state.
        let mut group_stage: HashMap<usize, usize> = HashMap::new();
        for i in 0..n {
            if group[i] != usize::MAX {
                let e = group_stage.entry(group[i]).or_insert(0);
                *e = (*e).max(stage[i]);
            }
        }
        let mut last_writer: HashMap<RegId, usize> = HashMap::new();
        let mut readers_since: HashMap<RegId, Vec<usize>> = HashMap::new();
        // Location accesses seen so far: (loc, op, was_write).
        let mut loc_accesses: Vec<(Loc, usize, bool)> = Vec::new();
        for j in 0..n {
            let p = &lin.ops[j];
            let strict_reads = is_table(p); // match keys need stage input
            let mut s = stage[j];
            let mut gateway_preds: Vec<usize> = Vec::new();
            for r in reads(p) {
                if let Some(&i) = last_writer.get(&r) {
                    if same_group(i, j) {
                        s = s.max(stage[i]); // intra-action chaining
                    } else if !strict_reads
                        && budget.gateway_depth > 0
                        && pred_class[i]
                        && (pred_class[j] || p.guard == Some(r))
                    {
                        // Gateway chaining: predicate logic (and the
                        // guard it gates) may share the writer's stage,
                        // depth permitting.
                        s = s.max(stage[i]);
                        gateway_preds.push(i);
                    } else {
                        s = s.max(stage[i] + 1);
                    }
                }
            }
            for r in writes(p) {
                if let Some(&i) = last_writer.get(&r) {
                    if same_group(i, j) {
                        s = s.max(stage[i]);
                    } else {
                        s = s.max(stage[i] + 1);
                    }
                }
                if let Some(rs) = readers_since.get(&r) {
                    for &rd in rs {
                        s = s.max(stage[rd]);
                    }
                }
            }
            // Location dependencies (window elements, ext fields, fwd):
            // read-after-write → later stage; write-after-read → same or
            // later; write-after-write → later.
            for l in loc_reads(p) {
                for &(al, ai, aw) in loc_accesses.iter() {
                    if aw && loc_conflict(l, al) {
                        s = s.max(stage[ai] + 1);
                    }
                }
            }
            for l in loc_writes(p) {
                for &(al, ai, aw) in loc_accesses.iter() {
                    if loc_conflict(l, al) {
                        s = s.max(if aw { stage[ai] + 1 } else { stage[ai] });
                    }
                }
            }
            if group[j] != usize::MAX {
                s = s.max(*group_stage.get(&group[j]).unwrap_or(&0));
            }
            // Gateway depth: a chain longer than the hardware evaluates
            // in one stage spills into the next.
            let mut d = 0usize;
            for &i in &gateway_preds {
                if stage[i] == s {
                    d = d.max(depth[i] + 1);
                }
            }
            if d > budget.gateway_depth {
                s += 1;
                d = 0;
            }
            depth[j] = d;
            if s != stage[j] {
                stage[j] = s;
                changed = true;
            }
            if group[j] != usize::MAX {
                let e = group_stage.entry(group[j]).or_insert(0);
                *e = (*e).max(stage[j]);
            }
            for r in reads(p) {
                readers_since.entry(r).or_default().push(j);
            }
            for r in writes(p) {
                last_writer.insert(r, j);
                readers_since.remove(&r);
            }
            for l in loc_reads(p) {
                loc_accesses.push((l, j, false));
            }
            for l in loc_writes(p) {
                loc_accesses.push((l, j, true));
            }
        }
        if !changed {
            // Final coherence: every grouped op at its group's max stage.
            let mut final_stage: HashMap<usize, usize> = HashMap::new();
            for i in 0..n {
                if group[i] != usize::MAX {
                    let e = final_stage.entry(group[i]).or_insert(stage[i]);
                    *e = (*e).max(stage[i]);
                }
            }
            let mut coherent = true;
            for i in 0..n {
                if group[i] != usize::MAX && stage[i] != final_stage[&group[i]] {
                    stage[i] = final_stage[&group[i]];
                    coherent = false;
                }
            }
            if coherent {
                return Ok(split_for_capacity(lin, &stage, &group, budget));
            }
        }
        if round == 9_999 {
            return Err(AllocDiverged);
        }
    }
    Err(AllocDiverged)
}

/// Groups ops into their dependency stages, then splits stages whose op
/// or table counts overflow the budget. Fused groups stay together.
fn split_for_capacity(
    lin: &LinearKernel,
    stage: &[usize],
    group: &[usize],
    budget: &AllocBudget,
) -> StagedKernel {
    let max_stage = stage.iter().copied().max().unwrap_or(0);
    let mut logical: Vec<Vec<usize>> = vec![vec![]; max_stage + 1];
    for (i, &s) in stage.iter().enumerate() {
        logical[s].push(i);
    }
    let mut out: Vec<Vec<PredInst>> = Vec::new();
    for ops in logical {
        if ops.is_empty() {
            continue;
        }
        // Units: fused groups move as one; other ops are singletons.
        let mut units: Vec<Vec<usize>> = Vec::new();
        let mut group_unit: HashMap<usize, usize> = HashMap::new();
        for &i in &ops {
            if group[i] != usize::MAX {
                if let Some(&u) = group_unit.get(&group[i]) {
                    units[u].push(i);
                } else {
                    group_unit.insert(group[i], units.len());
                    units.push(vec![i]);
                }
            } else {
                units.push(vec![i]);
            }
        }
        let mut cur: Vec<usize> = Vec::new();
        let mut cur_ops = 0usize;
        let mut cur_tables = 0usize;
        let mut flushes: Vec<Vec<usize>> = Vec::new();
        for unit in units {
            let unit_ops = unit.iter().filter(|&&i| !is_table(&lin.ops[i])).count();
            let unit_tables = unit.iter().filter(|&&i| is_table(&lin.ops[i])).count();
            let would_tables = cur_tables + unit_tables;
            let would_ops = cur_ops + unit_ops;
            let plain_table = 1; // the always-table of the sub-stage
            if !cur.is_empty()
                && (would_ops > budget.ops_per_stage
                    || would_tables + plain_table > budget.tables_per_stage)
            {
                flushes.push(std::mem::take(&mut cur));
                cur_ops = 0;
                cur_tables = 0;
            }
            cur_ops += unit_ops;
            cur_tables += unit_tables;
            cur.extend(unit);
        }
        if !cur.is_empty() {
            flushes.push(cur);
        }
        for mut chunk in flushes {
            chunk.sort_unstable(); // preserve original op order
            out.push(chunk.into_iter().map(|i| lin.ops[i].clone()).collect());
        }
    }
    StagedKernel { stages: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;
    use ncl_ir::lower::{lower, LoweringConfig};
    use ncl_lang::frontend;

    fn linear(src: &str, kernel: &str, mask: &[u16]) -> (LinearKernel, ncl_ir::ir::Module) {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let mut m =
            lower(&checked, &LoweringConfig::with_mask(kernel, mask.to_vec())).expect("lower");
        ncl_ir::passes::optimize(&mut m);
        crate::lanes::split_lanes(&mut m);
        let lin = flatten(m.kernel(kernel).unwrap(), None).expect("flatten");
        (lin, m)
    }

    fn budget() -> AllocBudget {
        AllocBudget {
            ops_per_stage: 64,
            tables_per_stage: 8,
            gateway_depth: GATEWAY_DEPTH,
        }
    }

    /// Stage of the op satisfying `f`, if unique.
    fn stage_of(staged: &StagedKernel, f: impl Fn(&PredInst) -> bool) -> Option<usize> {
        let mut found = None;
        for (s, ops) in staged.stages.iter().enumerate() {
            for op in ops {
                if f(op) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(s);
                }
            }
        }
        found
    }

    #[test]
    fn raw_deps_separate_stages() {
        let (lin, _) = linear(
            "_net_ _out_ void k(int *d) { int a = d[0] + 1; d[1] = a * 2; }",
            "k",
            &[2],
        );
        let staged = allocate(&lin, &budget()).unwrap();
        let ld = stage_of(&staged, |p| matches!(p.inst, Inst::LdWin { .. })).unwrap();
        let st = stage_of(&staged, |p| matches!(p.inst, Inst::StWin { .. })).unwrap();
        assert!(st > ld, "store stage {st} must follow load stage {ld}");
    }

    #[test]
    fn independent_ops_share_a_stage() {
        let (lin, _) = linear(
            "_net_ _out_ void k(int *d) { d[0] = 1; d[1] = 2; d[2] = 3; }",
            "k",
            &[3],
        );
        let staged = allocate(&lin, &budget()).unwrap();
        assert_eq!(staged.stages.len(), 1, "{staged:?}");
    }

    #[test]
    fn bank_rmw_fuses_in_one_stage() {
        let (lin, m) = linear(
            r#"
_net_ _at_("s1") unsigned count[4];
_net_ _out_ void k(int *d) { count[window.seq] += 1; }
"#,
            "k",
            &[1],
        );
        assert_eq!(m.registers.len(), 1);
        let staged = allocate(&lin, &budget()).unwrap();
        let ld = stage_of(&staged, |p| matches!(p.inst, Inst::LdReg { .. })).unwrap();
        let st = stage_of(&staged, |p| matches!(p.inst, Inst::StReg { .. })).unwrap();
        assert_eq!(ld, st, "RMW must fuse into one stage");
    }

    #[test]
    fn conditional_reset_fuses_like_a_register_action() {
        // The Fig. 4 pattern: increment, compare, conditional reset —
        // one stateful action on one bank, so one stage.
        let (lin, _) = linear(
            r#"
_net_ _at_("s1") unsigned count[4];
_net_ _ctrl_ _at_("s1") unsigned n;
_net_ _out_ void k(int *d) {
    if (++count[window.seq] == n) { count[window.seq] = 0; _bcast(); }
    else { _drop(); }
}
"#,
            "k",
            &[1],
        );
        let staged = allocate(&lin, &budget()).unwrap();
        let mut reg_stages: Vec<usize> = staged
            .stages
            .iter()
            .enumerate()
            .filter(|(_, ops)| {
                ops.iter()
                    .any(|p| matches!(p.inst, Inst::LdReg { .. } | Inst::StReg { .. }))
            })
            .map(|(s, _)| s)
            .collect();
        reg_stages.dedup();
        assert_eq!(reg_stages.len(), 1, "{staged:#?}");
    }

    #[test]
    fn lanes_parallelize_aggregation() {
        let (lin, m) = linear(
            r#"
_net_ _at_("s1") int accum[16] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    _drop();
}
"#,
            "k",
            &[4],
        );
        assert_eq!(m.registers.len(), 4, "lane split expected");
        let staged = allocate(&lin, &budget()).unwrap();
        let reg_stages: Vec<usize> = staged
            .stages
            .iter()
            .enumerate()
            .filter(|(_, ops)| ops.iter().any(|p| matches!(p.inst, Inst::StReg { .. })))
            .map(|(s, _)| s)
            .collect();
        assert_eq!(reg_stages.len(), 1, "{staged:?}");
    }

    #[test]
    fn capacity_splits_preserve_order() {
        let (lin, _) = linear(
            "_net_ _out_ void k(int *d) {\n\
               d[0] = 1; d[1] = 2; d[2] = 3; d[3] = 4; d[4] = 5; d[5] = 6;\n\
             }",
            "k",
            &[6],
        );
        let tight = AllocBudget {
            ops_per_stage: 2,
            tables_per_stage: 8,
            gateway_depth: GATEWAY_DEPTH,
        };
        let staged = allocate(&lin, &tight).unwrap();
        assert!(staged.stages.len() >= 3, "{staged:?}");
        for s in &staged.stages {
            assert!(s.len() <= 2);
        }
        let mut indices = Vec::new();
        for s in &staged.stages {
            for op in s {
                if let Inst::StWin { index, .. } = &op.inst {
                    indices.push(index.as_const().unwrap().bits());
                }
            }
        }
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }

    #[test]
    fn map_lookup_key_before_value_use() {
        let (lin, _) = linear(
            r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
_net_ _at_("s1") bool Valid[4];
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) { Valid[*i] = true; }
}
"#,
            "k",
            &[1],
        );
        let staged = allocate(&lin, &budget()).unwrap();
        let lookup = stage_of(&staged, |p| matches!(p.inst, Inst::MapGet { .. })).unwrap();
        let key_load = stage_of(&staged, |p| matches!(p.inst, Inst::LdWin { .. })).unwrap();
        let valid_write = stage_of(&staged, |p| matches!(p.inst, Inst::StReg { .. })).unwrap();
        assert!(key_load < lookup);
        assert!(lookup < valid_write);
    }

    #[test]
    fn fig4_fits_default_budget() {
        let (lin, _) = linear(
            r#"
_net_ _at_("s1") int accum[64] = {0};
_net_ _at_("s1") unsigned count[8] = {0};
_net_ _ctrl_ _at_("s1") unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#,
            "allreduce",
            &[8],
        );
        let staged = allocate(&lin, &budget()).unwrap();
        assert!(
            staged.stages.len() <= 12,
            "{} stages: {staged:#?}",
            staged.stages.len()
        );
    }
}
