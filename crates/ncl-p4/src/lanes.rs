//! Lane splitting for register arrays.
//!
//! PISA register arrays admit **one access per packet pass**, from the
//! one stage the array is bound to. A kernel like the paper's AllReduce
//! touches `window.len` consecutive elements per window:
//!
//! ```c
//! unsigned base = window.seq * window.len;
//! for (unsigned i = 0; i < window.len; ++i) accum[base + i] += data[i];
//! ```
//!
//! After unrolling, the accesses are `accum[base + 0] … accum[base + L-1]`
//! with `base = seq * L`. Real in-network aggregation systems (SwitchML,
//! ATP) lay such state out as *L* independent per-lane register arrays,
//! each indexed by the slot (`seq`) — lane `k` holds elements
//! `{k, L+k, 2L+k, …}`. This pass discovers the pattern and performs the
//! same transformation; NetCache-style value reads (`Cache[*idx]` ↦
//! `idx*COLS + j`, j constant) split identically, reproducing the
//! `Read0, Read1, …` tables of the paper's Fig. 1b.
//!
//! Arrays whose accesses do not fit the affine form stay single-bank;
//! if that leaves several accesses per pass, the resource model reports
//! it honestly at load time.

use c3::{BinOp, Value};
use ncl_ir::ir::*;
use std::collections::HashMap;

/// How one original array was realized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LaneDecision {
    /// Kept as a single bank.
    Single,
    /// Split into `lanes` banks of `slot_len` elements each.
    Split {
        /// Number of lanes (the affine stride).
        lanes: usize,
        /// Elements per lane.
        slot_len: usize,
    },
}

/// Result of lane splitting: per original array name, the decision and
/// the new bank names.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LaneMap {
    /// Original array name → decision.
    pub decisions: HashMap<String, LaneDecision>,
    /// Original array name → bank names (single entry when unsplit).
    pub banks: HashMap<String, Vec<String>>,
}

impl LaneMap {
    /// The no-op mapping (ablation: lane splitting disabled) — every
    /// array keeps its single bank.
    pub fn identity(module: &Module) -> LaneMap {
        let mut map = LaneMap::default();
        for r in &module.registers {
            map.decisions.insert(r.name.clone(), LaneDecision::Single);
            map.banks.insert(r.name.clone(), vec![r.name.clone()]);
        }
        map
    }
}

/// An access index in affine form `base * 1 + offset`, where `base` is
/// either a register (dynamic) or absent (constant index).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Affine {
    base: Option<RegId>,
    offset: u64,
}

/// Splits the module's register arrays in place and rewrites all kernel
/// accesses. Returns the mapping for diagnostics/P4 emission.
pub fn split_lanes(module: &mut Module) -> LaneMap {
    let mut map = LaneMap::default();
    // Gather accesses per array across all kernels.
    // access = (kernel idx, affine form or None)
    let mut accesses: HashMap<u32, Vec<Option<AffineAccess>>> = HashMap::new();
    for (ki, k) in module.kernels.iter().enumerate() {
        let defs = single_defs(k);
        for b in &k.blocks {
            for inst in &b.insts {
                let (arr, index) = match inst {
                    Inst::LdReg { arr, index, .. } => (*arr, *index),
                    Inst::StReg { arr, index, .. } => (*arr, *index),
                    _ => continue,
                };
                let aff = affine_of(index, &defs, k).map(|a| AffineAccess {
                    kernel: ki,
                    affine: a,
                    mul: multiplier_of(a.base, &defs, k),
                    mul_l: multiplier_value(a.base, &defs),
                });
                accesses.entry(arr.0).or_default().push(aff);
            }
        }
    }

    // Decide per array.
    let mut decisions: HashMap<u32, LaneDecision> = HashMap::new();
    for (arr_idx, accs) in &accesses {
        let decl = &module.registers[*arr_idx as usize];
        decisions.insert(*arr_idx, decide(decl, accs));
    }

    // Build the new register list. Old ArrId → (new first bank id,
    // lanes, slot stride) for rewriting.
    let mut new_registers: Vec<RegisterDecl> = Vec::new();
    let mut remap: HashMap<u32, (u32, LaneDecision)> = HashMap::new();
    for (old_idx, decl) in module.registers.iter().enumerate() {
        let decision = decisions
            .get(&(old_idx as u32))
            .cloned()
            .unwrap_or(LaneDecision::Single);
        let first = new_registers.len() as u32;
        match &decision {
            LaneDecision::Single => {
                new_registers.push(decl.clone());
                map.banks.insert(decl.name.clone(), vec![decl.name.clone()]);
            }
            LaneDecision::Split { lanes, slot_len } => {
                let mut bank_names = Vec::new();
                for lane in 0..*lanes {
                    // Lane k holds elements {k, L+k, 2L+k, …}.
                    let init: Vec<Value> = (0..*slot_len)
                        .map(|slot| {
                            decl.init
                                .get(slot * lanes + lane)
                                .copied()
                                .unwrap_or_else(|| Value::zero(decl.elem))
                        })
                        .collect();
                    let name = format!("{}__l{}", decl.name, lane);
                    bank_names.push(name.clone());
                    new_registers.push(RegisterDecl {
                        name,
                        at: decl.at.clone(),
                        elem: decl.elem,
                        dims: vec![*slot_len],
                        init,
                        span: decl.span,
                    });
                }
                map.banks.insert(decl.name.clone(), bank_names);
            }
        }
        map.decisions.insert(decl.name.clone(), decision.clone());
        remap.insert(old_idx as u32, (first, decision));
    }

    // Rewrite kernel accesses.
    for k in &mut module.kernels {
        let defs = single_defs(k);
        // Collect rewrites first (borrow juggling).
        let mut rewrites: Vec<(usize, usize, ArrId, Operand)> = Vec::new();
        for (bi, b) in k.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                let (arr, index) = match inst {
                    Inst::LdReg { arr, index, .. } => (*arr, *index),
                    Inst::StReg { arr, index, .. } => (*arr, *index),
                    _ => continue,
                };
                let (first, decision) = &remap[&arr.0];
                match decision {
                    LaneDecision::Single => {
                        rewrites.push((bi, ii, ArrId(*first), index));
                    }
                    LaneDecision::Split { lanes, .. } => {
                        let aff =
                            affine_of(index, &defs, k).expect("split arrays have affine accesses");
                        let lane = (aff.offset as usize) % lanes;
                        // Slot index: the multiplicand when dynamic, or
                        // offset / lanes when the index is constant.
                        let slot = match aff.base {
                            Some(base) => {
                                let mul = multiplier_of(Some(base), &defs, k).expect("checked");
                                Operand::Reg(mul)
                            }
                            None => {
                                Operand::Const(Value::u32((aff.offset as usize / lanes) as u32))
                            }
                        };
                        rewrites.push((bi, ii, ArrId(first + lane as u32), slot));
                    }
                }
            }
        }
        for (bi, ii, new_arr, new_index) in rewrites {
            match &mut k.blocks[bi].insts[ii] {
                Inst::LdReg { arr, index, .. } | Inst::StReg { arr, index, .. } => {
                    *arr = new_arr;
                    *index = new_index;
                }
                _ => unreachable!(),
            }
        }
    }
    module.registers = new_registers;
    map
}

#[derive(Clone, Copy, Debug)]
struct AffineAccess {
    #[allow(dead_code)]
    kernel: usize,
    affine: Affine,
    /// When `affine.base` is `mul_reg * L`, the multiplicand register.
    mul: Option<RegId>,
    /// The constant L of `mul_reg * L`, when recognized.
    mul_l: Option<u64>,
}

/// Decides how to realize one array given all its accesses.
fn decide(decl: &RegisterDecl, accs: &[Option<AffineAccess>]) -> LaneDecision {
    // Any non-affine access → single bank.
    let Some(accs) = accs.iter().copied().collect::<Option<Vec<_>>>() else {
        return LaneDecision::Single;
    };
    if accs.is_empty() {
        return LaneDecision::Single;
    }
    // All accesses must share one dynamic base (or be constants), and
    // that base must be a multiple of L (it is `mul * L`), with offsets
    // in 0..L.
    let dynamic: Vec<&AffineAccess> = accs.iter().filter(|a| a.affine.base.is_some()).collect();
    if dynamic.is_empty() {
        // All-constant indices: splitting buys nothing over per-element
        // banks, and a single bank with one constant access is already
        // legal; leave single unless there are multiple distinct
        // elements accessed — then split fully by element.
        let offsets: std::collections::BTreeSet<u64> =
            accs.iter().map(|a| a.affine.offset).collect();
        if offsets.len() <= 1 {
            return LaneDecision::Single;
        }
        let total = decl.len();
        // Per-element banks only for small arrays (each element its own
        // lane with a single slot).
        if total <= 64 {
            return LaneDecision::Split {
                lanes: total,
                slot_len: 1,
            };
        }
        return LaneDecision::Single;
    }
    // Every dynamic base must be provably `x * L` for one common L.
    // Different lookup sites may use different multiplicand registers
    // (Fig. 5's Cache is read via one map lookup and written via
    // another) — what matters is the shared stride.
    let Some(lanes) = dynamic[0].affine_lanes() else {
        return LaneDecision::Single;
    };
    if !dynamic
        .iter()
        .all(|a| a.mul.is_some() && a.affine_lanes() == Some(lanes))
    {
        return LaneDecision::Single;
    }
    // The stride L must cover every offset.
    let max_off = accs.iter().map(|a| a.affine.offset).max().unwrap_or(0);
    if max_off as usize >= lanes || lanes < 2 {
        return LaneDecision::Single;
    }
    let total = decl.len();
    let slot_len = total.div_ceil(lanes).max(1);
    LaneDecision::Split { lanes, slot_len }
}

impl AffineAccess {
    /// The lane count implied by this access's multiplier.
    fn affine_lanes(&self) -> Option<usize> {
        self.mul_l.map(|l| l as usize)
    }
}

/// Register ids with exactly one defining instruction, mapped to it.
fn single_defs(k: &KernelIr) -> HashMap<RegId, Inst> {
    let mut count: HashMap<RegId, usize> = HashMap::new();
    let mut def: HashMap<RegId, Inst> = HashMap::new();
    for b in &k.blocks {
        for inst in &b.insts {
            for d in inst.dsts() {
                *count.entry(d).or_insert(0) += 1;
                def.insert(d, inst.clone());
            }
        }
    }
    def.retain(|r, _| count[r] == 1);
    def
}

/// Resolves an index operand to affine form by walking single-def
/// chains: `Const c`, `reg`, `reg + c`, `c + reg`, copies thereof.
fn affine_of(index: Operand, defs: &HashMap<RegId, Inst>, _k: &KernelIr) -> Option<Affine> {
    match index {
        Operand::Const(v) => Some(Affine {
            base: None,
            offset: v.bits(),
        }),
        Operand::Reg(r) => {
            let mut cur = r;
            let mut offset = 0u64;
            for _ in 0..64 {
                match defs.get(&cur) {
                    Some(Inst::Copy {
                        a: Operand::Reg(src),
                        ..
                    }) => cur = *src,
                    Some(Inst::Copy {
                        a: Operand::Const(v),
                        ..
                    }) => {
                        return Some(Affine {
                            base: None,
                            offset: offset.wrapping_add(v.bits()),
                        })
                    }
                    Some(Inst::Cast {
                        a: Operand::Reg(src),
                        ..
                    }) => cur = *src,
                    Some(Inst::Bin {
                        op: BinOp::Add,
                        a: Operand::Reg(src),
                        b: Operand::Const(c),
                        ..
                    }) => {
                        offset = offset.wrapping_add(c.bits());
                        cur = *src;
                    }
                    Some(Inst::Bin {
                        op: BinOp::Add,
                        a: Operand::Const(c),
                        b: Operand::Reg(src),
                        ..
                    }) => {
                        offset = offset.wrapping_add(c.bits());
                        cur = *src;
                    }
                    _ => {
                        return Some(Affine {
                            base: Some(cur),
                            offset,
                        })
                    }
                }
            }
            None
        }
    }
}

/// If `base` is defined as `x * L` (or `x << log2 L`), returns the
/// multiplicand register; the constant L is recovered by
/// [`multiplier_value`].
fn multiplier_of(base: Option<RegId>, defs: &HashMap<RegId, Inst>, _k: &KernelIr) -> Option<RegId> {
    let base = base?;
    match defs.get(&base)? {
        Inst::Bin {
            op: BinOp::Mul,
            a: Operand::Reg(x),
            b: Operand::Const(_),
            ..
        } => Some(*x),
        Inst::Bin {
            op: BinOp::Mul,
            a: Operand::Const(_),
            b: Operand::Reg(x),
            ..
        } => Some(*x),
        Inst::Bin {
            op: BinOp::Shl,
            a: Operand::Reg(x),
            b: Operand::Const(_),
            ..
        } => Some(*x),
        _ => None,
    }
}

/// The constant L in `base = x * L`.
fn multiplier_value(base: Option<RegId>, defs: &HashMap<RegId, Inst>) -> Option<u64> {
    let base = base?;
    match defs.get(&base)? {
        Inst::Bin {
            op: BinOp::Mul,
            b: Operand::Const(c),
            a: Operand::Reg(_),
            ..
        } => Some(c.bits()),
        Inst::Bin {
            op: BinOp::Mul,
            a: Operand::Const(c),
            b: Operand::Reg(_),
            ..
        } => Some(c.bits()),
        Inst::Bin {
            op: BinOp::Shl,
            b: Operand::Const(c),
            a: Operand::Reg(_),
            ..
        } => Some(1u64 << c.bits()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_ir::lower::{lower, LoweringConfig};
    use ncl_lang::frontend;

    fn module(src: &str, kernel: &str, mask: &[u16]) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let mut m =
            lower(&checked, &LoweringConfig::with_mask(kernel, mask.to_vec())).expect("lower");
        ncl_ir::passes::optimize(&mut m);
        m
    }

    #[test]
    fn allreduce_accum_splits_into_lanes() {
        let src = r#"
_net_ _at_("s1") int accum[16] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    _drop();
}
"#;
        let mut m = module(src, "k", &[4]);
        let map = split_lanes(&mut m);
        assert_eq!(
            map.decisions["accum"],
            LaneDecision::Split {
                lanes: 4,
                slot_len: 4
            }
        );
        assert_eq!(m.registers.len(), 4);
        assert_eq!(m.registers[0].name, "accum__l0");
        assert_eq!(m.registers[0].len(), 4);
        // Every access now targets a distinct bank with the slot index.
        let k = m.kernel("k").unwrap();
        let mut banks_touched: Vec<u32> = k
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::StReg { arr, .. } => Some(arr.0),
                _ => None,
            })
            .collect();
        banks_touched.sort_unstable();
        banks_touched.dedup();
        assert_eq!(banks_touched, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lane_init_distribution() {
        let src = r#"
_net_ _at_("s1") int a[4] = {10, 11, 12, 13};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i) a[base + i] += data[i];
}
"#;
        let mut m = module(src, "k", &[2]);
        let _ = split_lanes(&mut m);
        // lanes = 2, slot_len = 2: lane0 = {10, 12}, lane1 = {11, 13}.
        assert_eq!(m.registers[0].init[0], Value::i32(10));
        assert_eq!(m.registers[0].init[1], Value::i32(12));
        assert_eq!(m.registers[1].init[0], Value::i32(11));
        assert_eq!(m.registers[1].init[1], Value::i32(13));
    }

    #[test]
    fn single_dynamic_access_stays_single() {
        let src = r#"
_net_ _at_("s1") unsigned count[8] = {0};
_net_ _out_ void k(int *data) { count[window.seq] += 1; _drop(); }
"#;
        let mut m = module(src, "k", &[1]);
        let map = split_lanes(&mut m);
        assert_eq!(map.decisions["count"], LaneDecision::Single);
        assert_eq!(m.registers.len(), 1);
    }

    #[test]
    fn constant_multi_element_splits_per_element() {
        let src = r#"
_net_ _at_("s1") int acc[4] = {0};
_net_ _out_ void k(int *data) {
    acc[0] += data[0]; acc[1] += data[1]; acc[2] += data[2]; acc[3] += data[3];
}
"#;
        let mut m = module(src, "k", &[4]);
        let map = split_lanes(&mut m);
        assert_eq!(
            map.decisions["acc"],
            LaneDecision::Split {
                lanes: 4,
                slot_len: 1
            }
        );
        // All slot indices are the constant 0.
        let k = m.kernel("k").unwrap();
        for inst in k.blocks.iter().flat_map(|b| &b.insts) {
            if let Inst::StReg { index, .. } = inst {
                assert_eq!(index.as_const().map(|v| v.bits()), Some(0));
            }
        }
    }

    #[test]
    fn kvs_row_copy_splits_by_column() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
_net_ _at_("s1") uint32_t Cache[4][8];
_net_ _out_ void k(uint64_t key, uint32_t *val) {
    if (auto *i = Idx[key]) { memcpy(val, Cache[*i], 32); _reflect(); }
}
"#;
        let mut m = module(src, "k", &[1, 8]);
        let map = split_lanes(&mut m);
        assert_eq!(
            map.decisions["Cache"],
            LaneDecision::Split {
                lanes: 8,
                slot_len: 4
            }
        );
        assert_eq!(m.registers.len(), 8);
    }

    #[test]
    fn mixed_access_patterns_stay_single() {
        // Same array indexed both by seq*len+i and by a data value:
        // bases differ → single bank.
        let src = r#"
_net_ _at_("s1") int a[8] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    a[base + 0] += 1;
    a[data[0]] += 1;
}
"#;
        let mut m = module(src, "k", &[2]);
        let map = split_lanes(&mut m);
        assert_eq!(map.decisions["a"], LaneDecision::Single);
    }

    #[test]
    fn interpreter_agrees_after_split() {
        // The transformation must preserve semantics: run the same
        // windows through interpreter on the original and split modules.
        use c3::{Chunk, HostId, KernelId, NodeId, Window};
        use ncl_ir::{Interpreter, SwitchState};
        let src = r#"
_net_ _at_("s1") int accum[8] = {1, 2, 3, 4, 5, 6, 7, 8};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    memcpy(data, &accum[base], window.len * 4);
    _drop();
}
"#;
        let original = module(src, "k", &[4]);
        let mut split = original.clone();
        let _ = split_lanes(&mut split);

        let mk_window = |seq: u32| Window {
            kernel: KernelId(0),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: [5u32, 6, 7, 8]
                    .iter()
                    .flat_map(|v| v.to_be_bytes())
                    .collect(),
            }],
            ext: vec![],
        };
        let it = Interpreter::default();
        let mut st_a = SwitchState::from_module(&original);
        let mut st_b = SwitchState::from_module(&split);
        for seq in [0u32, 1, 0] {
            let mut wa = mk_window(seq);
            let mut wb = mk_window(seq);
            it.run_outgoing(original.kernel("k").unwrap(), &mut wa, &mut st_a)
                .unwrap();
            it.run_outgoing(split.kernel("k").unwrap(), &mut wb, &mut st_b)
                .unwrap();
            assert_eq!(wa, wb, "window divergence at seq {seq}");
        }
        // Register contents correspond: original[slot*L + lane] ==
        // split lane bank[slot].
        for slot in 0..2 {
            for lane in 0..4 {
                assert_eq!(
                    st_a.registers[0][slot * 4 + lane],
                    st_b.registers[lane][slot],
                    "slot {slot} lane {lane}"
                );
            }
        }
    }
}
