//! Translation of staged kernels into a loadable [`PipelineConfig`].
//!
//! A module (all kernels placed at one switch) becomes **one** pipeline:
//!
//! * PHV header fields for the NCP header and, per kernel, the window's
//!   chunk descriptors, the shared extended window struct, and one field
//!   per window payload element (the prototype's windows fit a packet,
//!   paper §6);
//! * PHV metadata fields for each kernel's virtual registers, the
//!   per-kernel dispatch bit, and the intrinsic forwarding fields;
//! * stage 0 computes the dispatch bits (`disp_k = (ncp.kernel == k)`);
//!   each kernel's staged ops follow, shifted by one, with unguarded ops
//!   guarded by the kernel's dispatch bit — several kernels share the
//!   pipeline exactly like several applications share a switch program;
//! * map lookups become exact-match tables keyed on `(guard, key)`;
//!   every lookup site gets its own table and the control plane installs
//!   entries into all of them;
//! * control variables become one single-slot register copy per read
//!   site (reads from different stages may not share one array), all
//!   written by `ncl::ctrl_wr`.
//!
//! The wire layout parsed here must match `ncp`'s codec; the shared
//! contract is DESIGN.md §4.4 and is pinned by cross-crate tests in
//! `ncl-core`.

use crate::alloc::{allocate, AllocBudget, StagedKernel};
use crate::flatten::{flatten, PredInst};
use crate::CompileOptions;
use c3::{BinOp, ScalarType, Value};
use ncl_ir::ir::{CtrlId, FwdKind, Inst, MetaField, Module, Operand, RegId};
use ncl_lang::ast::KernelKind;
use pisa::{
    ActionDef, ActionRef, Arg, DeparserSpec, Extract, FieldClass, FieldId, MatchKind, ParserSpec,
    PhvLayout, PipelineConfig, PrimOp, RegisterArrayDef, ResourceModel, StageConfig, TableDef,
};
use std::collections::HashMap;

/// Pipeline plus the bookkeeping the runtime needs.
#[derive(Clone, Debug)]
pub struct BuiltPipeline {
    /// The loadable configuration.
    pub pipeline: PipelineConfig,
    /// Kernel name → NCP kernel id.
    pub kernel_ids: HashMap<String, u16>,
    /// Map name → table names (one per lookup site).
    pub map_tables: HashMap<String, Vec<String>>,
    /// Control variable → register-copy names.
    pub ctrl_regs: HashMap<String, Vec<String>>,
    /// Kernel name → stages its ops occupy (diagnostics / E6).
    pub kernel_stages: HashMap<String, usize>,
}

/// Codegen failure for one kernel.
#[derive(Clone, Debug)]
pub struct BuildError {
    /// The kernel.
    pub kernel: String,
    /// Human-readable reason.
    pub reason: String,
}

/// NCP header field names in wire order (types below must match
/// DESIGN.md §4.4).
pub const NCP_FIELDS: &[(&str, ScalarType)] = &[
    ("ncp.magic", ScalarType::U16),
    ("ncp.version", ScalarType::U8),
    ("ncp.flags", ScalarType::U8),
    ("ncp.kernel", ScalarType::U16),
    ("ncp.seq", ScalarType::U32),
    ("ncp.sender", ScalarType::U16),
    ("ncp.from", ScalarType::U16),
    ("ncp.nchunks", ScalarType::U8),
    ("ncp.ext_len", ScalarType::U8),
];

/// Builds the pipeline for a versioned module.
pub fn build_pipeline(
    module: &Module,
    model: &ResourceModel,
    opts: &CompileOptions,
) -> Result<BuiltPipeline, BuildError> {
    let mut layout = PhvLayout::default();
    // --- NCP header ---
    let mut ncp: HashMap<&str, FieldId> = HashMap::new();
    for (name, ty) in NCP_FIELDS {
        ncp.insert(name, layout.add(*name, *ty, FieldClass::Header));
    }
    // --- intrinsic metadata ---
    let fwd_code = layout.add("meta.fwd_code", ScalarType::U8, FieldClass::Metadata);
    let fwd_label = layout.add("meta.fwd_label", ScalarType::U16, FieldClass::Metadata);

    // --- ext fields (shared across kernels) ---
    let mut ext_fields: Vec<(usize, FieldId)> = Vec::new(); // (offset, field)
    for (fname, ty, off) in &module.window_ext.fields {
        let f = layout.add(format!("ext.{fname}"), *ty, FieldClass::Header);
        ext_fields.push((*off, f));
    }

    // --- kernel ids ---
    let mut kernel_ids: HashMap<String, u16> = opts.kernel_ids.clone();
    let mut next_id = kernel_ids.values().copied().max().unwrap_or(0) + 1;
    for k in &module.kernels {
        kernel_ids.entry(k.name.clone()).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        });
    }

    // --- registers: module arrays first (stable ArrId indices), ctrl
    //     copies appended per read site during translation ---
    let mut registers: Vec<RegisterArrayDef> = module
        .registers
        .iter()
        .map(|r| RegisterArrayDef {
            name: r.name.clone(),
            elem: r.elem,
            len: if module.placed_here(&r.at) {
                r.len()
            } else {
                0
            },
            init: r.init.clone(),
        })
        .collect();

    let budget = AllocBudget {
        gateway_depth: opts.gateway_depth,
        ..AllocBudget::from_model(model)
    };
    let mut parser = ParserSpec {
        common: NCP_FIELDS
            .iter()
            .map(|(n, _)| Extract { field: ncp[n] })
            .collect(),
        // Protocol recognition (Fig. 3b): magic "NC" and version 1.
        verify: vec![(ncp["ncp.magic"], 0x4E43), (ncp["ncp.version"], 1)],
        select: Some(ncp["ncp.kernel"]),
        branches: HashMap::new(),
    };
    let mut deparser = DeparserSpec {
        common: NCP_FIELDS.iter().map(|(n, _)| ncp[n]).collect(),
        select: Some(ncp["ncp.kernel"]),
        branches: HashMap::new(),
    };

    // Global stages: stage 0 = dispatch; kernels merge from stage 1.
    let mut pool = FieldPool::default();
    let mut dispatch_ops: Vec<PrimOp> = Vec::new();
    let mut stages: Vec<StageConfig> = Vec::new();
    let mut map_tables: HashMap<String, Vec<String>> = HashMap::new();
    let mut ctrl_regs: HashMap<String, Vec<String>> = HashMap::new();
    let mut kernel_stages: HashMap<String, usize> = HashMap::new();

    for kernel in &module.kernels {
        if kernel.kind != KernelKind::Outgoing || !module.placed_here(&kernel.at) {
            continue;
        }
        let kid = kernel_ids[&kernel.name];
        // Window payload + chunk descriptor header fields for this
        // kernel's parser/deparser branch.
        let win_params: Vec<&ncl_lang::sema::ParamInfo> =
            kernel.params.iter().filter(|p| !p.ext).collect();
        if kernel.mask.len() != win_params.len() {
            return Err(BuildError {
                kernel: kernel.name.clone(),
                reason: format!(
                    "window mask arity {} does not match {} window parameters \
                     (switch compilation requires a mask)",
                    kernel.mask.len(),
                    win_params.len()
                ),
            });
        }
        let mut branch_extracts: Vec<Extract> = Vec::new();
        let mut branch_fields: Vec<FieldId> = Vec::new();
        let mut payload: Vec<Vec<FieldId>> = Vec::new(); // [param][elem]
        for (pi, p) in win_params.iter().enumerate() {
            let off = layout.add(
                format!("k{kid}.c{pi}_off"),
                ScalarType::U32,
                FieldClass::Header,
            );
            let len = layout.add(
                format!("k{kid}.c{pi}_len"),
                ScalarType::U16,
                FieldClass::Header,
            );
            branch_extracts.push(Extract { field: off });
            branch_extracts.push(Extract { field: len });
            branch_fields.push(off);
            branch_fields.push(len);
            let _ = p;
        }
        for (off, f) in &ext_fields {
            let _ = off;
            branch_extracts.push(Extract { field: *f });
            branch_fields.push(*f);
        }
        for (pi, p) in win_params.iter().enumerate() {
            let mut elems = Vec::new();
            for e in 0..kernel.mask[pi] as usize {
                let f = layout.add(format!("k{kid}.p{pi}_e{e}"), p.elem, FieldClass::Header);
                branch_extracts.push(Extract { field: f });
                branch_fields.push(f);
                elems.push(f);
            }
            payload.push(elems);
        }
        parser.branches.insert(kid as u64, branch_extracts);
        deparser.branches.insert(kid as u64, branch_fields);

        // Dispatch bit.
        let disp = layout.add(
            format!("meta.disp_k{kid}"),
            ScalarType::Bool,
            FieldClass::Metadata,
        );
        dispatch_ops.push(PrimOp::Alu {
            guard: None,
            dst: disp,
            op: BinOp::Eq,
            a: Arg::Field(ncp["ncp.kernel"]),
            b: Arg::Const(Value::new(ScalarType::U16, kid as u64)),
        });

        // Flatten + allocate.
        let lin = flatten(kernel, None).map_err(|e| BuildError {
            kernel: kernel.name.clone(),
            reason: e.to_string(),
        })?;
        let staged = allocate(&lin, &budget).map_err(|_| BuildError {
            kernel: kernel.name.clone(),
            reason: "stage allocation diverged".into(),
        })?;
        kernel_stages.insert(kernel.name.clone(), staged.stages.len());

        // Liveness-based metadata allocation: registers with disjoint
        // live ranges share PHV containers, across kernels too.
        let reg_map = assign_fields(&staged, &lin.reg_tys, &mut layout, &mut pool, kid);

        // Translate.
        let mut tr = Translator {
            module,
            layout: &mut layout,
            registers: &mut registers,
            opts,
            kid,
            disp,
            fwd_code,
            fwd_label,
            ncp: &ncp,
            ext_fields: &ext_fields,
            payload: &payload,
            reg_fields: reg_map,
            map_tables: &mut map_tables,
            ctrl_regs: &mut ctrl_regs,
            kernel_name: kernel.name.clone(),
            reg_tys: &lin.reg_tys,
        };
        let kernel_stage_cfgs = tr.translate(&staged)?;
        // Merge into the global stage list starting at stage 1.
        for (i, cfg) in kernel_stage_cfgs.into_iter().enumerate() {
            while stages.len() <= i {
                stages.push(StageConfig::default());
            }
            stages[i].tables.extend(cfg.tables);
        }
    }

    let mut all_stages = vec![StageConfig {
        tables: vec![TableDef::always(
            "ncl_dispatch",
            ActionDef {
                name: "set_dispatch".into(),
                ops: dispatch_ops,
            },
        )],
    }];
    all_stages.extend(stages);

    Ok(BuiltPipeline {
        pipeline: PipelineConfig {
            name: module
                .location
                .as_ref()
                .map(|l| format!("{}_{}", module.name, l))
                .unwrap_or_else(|| module.name.clone()),
            layout,
            parser,
            deparser,
            stages: all_stages,
            registers,
            fwd_code: Some(fwd_code),
            fwd_label: Some(fwd_label),
        },
        kernel_ids,
        map_tables,
        ctrl_regs,
        kernel_stages,
    })
}

struct Translator<'a> {
    module: &'a Module,
    layout: &'a mut PhvLayout,
    registers: &'a mut Vec<RegisterArrayDef>,
    opts: &'a CompileOptions,
    kid: u16,
    disp: FieldId,
    fwd_code: FieldId,
    fwd_label: FieldId,
    ncp: &'a HashMap<&'static str, FieldId>,
    ext_fields: &'a [(usize, FieldId)],
    payload: &'a [Vec<FieldId>],
    reg_fields: HashMap<RegId, FieldId>,
    map_tables: &'a mut HashMap<String, Vec<String>>,
    ctrl_regs: &'a mut HashMap<String, Vec<String>>,
    kernel_name: String,
    reg_tys: &'a [ScalarType],
}

impl Translator<'_> {
    fn err(&self, reason: impl Into<String>) -> BuildError {
        BuildError {
            kernel: self.kernel_name.clone(),
            reason: reason.into(),
        }
    }

    fn reg_field(&mut self, r: RegId) -> FieldId {
        if let Some(&f) = self.reg_fields.get(&r) {
            return f;
        }
        let ty = self.reg_tys[r.0 as usize];
        let f = self.layout.add(
            format!("meta.k{}_r{}", self.kid, r.0),
            ty,
            FieldClass::Metadata,
        );
        self.reg_fields.insert(r, f);
        f
    }

    fn arg(&mut self, o: &Operand) -> Arg {
        match o {
            Operand::Const(v) => Arg::Const(*v),
            Operand::Reg(r) => Arg::Field(self.reg_field(*r)),
        }
    }

    fn guard(&mut self, p: &PredInst) -> Option<FieldId> {
        Some(match p.guard {
            Some(g) => self.reg_field(g),
            None => self.disp,
        })
    }

    /// Constant element index of a window access, or an error (window
    /// data lives in fixed PHV fields; dynamic indices cannot map).
    fn const_index(&self, o: &Operand) -> Result<usize, BuildError> {
        o.as_const().map(|v| v.bits() as usize).ok_or_else(|| {
            self.err(
                "dynamic window index survived optimization; PHV fields \
                 are statically addressed",
            )
        })
    }

    fn translate(&mut self, staged: &StagedKernel) -> Result<Vec<StageConfig>, BuildError> {
        let mut out = Vec::new();
        for (si, ops) in staged.stages.iter().enumerate() {
            let mut cfg = StageConfig::default();
            let mut run: Vec<PrimOp> = Vec::new();
            let mut run_idx = 0usize;
            for p in ops {
                if let Inst::MapGet {
                    found,
                    val,
                    map,
                    key,
                } = &p.inst
                {
                    // Close the current plain-op run.
                    if !run.is_empty() {
                        cfg.tables.push(TableDef::always(
                            format!("k{}_s{}_{}", self.kid, si, run_idx),
                            ActionDef {
                                name: format!("k{}_s{}_{}_act", self.kid, si, run_idx),
                                ops: std::mem::take(&mut run),
                            },
                        ));
                        run_idx += 1;
                    }
                    cfg.tables
                        .push(self.map_table(p, *found, *val, *map, key, si)?);
                } else {
                    let prim = self.translate_plain(p)?;
                    run.extend(prim);
                }
            }
            if !run.is_empty() {
                cfg.tables.push(TableDef::always(
                    format!("k{}_s{}_{}", self.kid, si, run_idx),
                    ActionDef {
                        name: format!("k{}_s{}_{}_act", self.kid, si, run_idx),
                        ops: run,
                    },
                ));
            }
            out.push(cfg);
        }
        Ok(out)
    }

    fn map_table(
        &mut self,
        p: &PredInst,
        found: RegId,
        val: RegId,
        map: ncl_ir::ir::MapId,
        key: &Operand,
        stage: usize,
    ) -> Result<TableDef, BuildError> {
        let decl = &self.module.maps[map.0 as usize];
        let guard_field = self
            .guard(p)
            .ok_or_else(|| self.err("map-table guard did not resolve to a PHV field"))?;
        let key_field = match key {
            Operand::Reg(r) => self.reg_field(*r),
            Operand::Const(_) => {
                return Err(self.err("constant map key not materialized (flatten bug)"))
            }
        };
        let found_field = self.reg_field(found);
        let val_field = self.reg_field(val);
        let site = self
            .map_tables
            .get(&decl.name)
            .map(|v| v.len())
            .unwrap_or(0);
        let tname = format!("{}__k{}_s{}_{}", decl.name, self.kid, stage, site);
        self.map_tables
            .entry(decl.name.clone())
            .or_default()
            .push(tname.clone());
        Ok(TableDef {
            name: tname.clone(),
            keys: vec![
                (guard_field, MatchKind::Exact),
                (key_field, MatchKind::Exact),
            ],
            actions: vec![
                // 0: miss
                ActionDef {
                    name: format!("{tname}_miss"),
                    ops: vec![
                        PrimOp::Mov {
                            guard: None,
                            dst: found_field,
                            src: Arg::Const(Value::bool(false)),
                        },
                        PrimOp::Mov {
                            guard: None,
                            dst: val_field,
                            src: Arg::Const(Value::zero(decl.value)),
                        },
                    ],
                },
                // 1: hit — value arrives as action data.
                ActionDef {
                    name: format!("{tname}_hit"),
                    ops: vec![
                        PrimOp::Mov {
                            guard: None,
                            dst: found_field,
                            src: Arg::Const(Value::bool(true)),
                        },
                        PrimOp::Mov {
                            guard: None,
                            dst: val_field,
                            src: Arg::Param(0),
                        },
                    ],
                },
            ],
            entries: vec![],
            default_action: Some(ActionRef(0)),
            size: decl.capacity,
        })
    }

    fn translate_plain(&mut self, p: &PredInst) -> Result<Vec<PrimOp>, BuildError> {
        let guard = self.guard(p);
        Ok(match &p.inst {
            Inst::Bin { dst, op, a, b } => vec![PrimOp::Alu {
                guard,
                dst: self.reg_field(*dst),
                op: *op,
                a: self.arg(a),
                b: self.arg(b),
            }],
            Inst::Un { dst, op, a } => vec![PrimOp::UnAlu {
                guard,
                dst: self.reg_field(*dst),
                op: *op,
                a: self.arg(a),
            }],
            Inst::Cast { dst, ty, a } => vec![PrimOp::Cast {
                guard,
                dst: self.reg_field(*dst),
                ty: *ty,
                a: self.arg(a),
            }],
            Inst::Select { dst, cond, a, b } => vec![PrimOp::Select {
                guard,
                dst: self.reg_field(*dst),
                cond: self.arg(cond),
                a: self.arg(a),
                b: self.arg(b),
            }],
            Inst::Copy { dst, a } => vec![PrimOp::Mov {
                guard,
                dst: self.reg_field(*dst),
                src: self.arg(a),
            }],
            Inst::LdWin { dst, param, index } => {
                let idx = self.const_index(index)?;
                let dst_f = self.reg_field(*dst);
                match self.payload.get(*param as usize).and_then(|p| p.get(idx)) {
                    Some(&f) => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        src: Arg::Field(f),
                    }],
                    // Out-of-mask read yields zero (interpreter rule).
                    None => {
                        let ty = self.reg_tys[dst.0 as usize];
                        vec![PrimOp::Mov {
                            guard,
                            dst: dst_f,
                            src: Arg::Const(Value::zero(ty)),
                        }]
                    }
                }
            }
            Inst::StWin { param, index, val } => {
                let idx = self.const_index(index)?;
                let src = self.arg(val);
                match self.payload.get(*param as usize).and_then(|p| p.get(idx)) {
                    Some(&f) => vec![PrimOp::Mov { guard, dst: f, src }],
                    // Out-of-mask writes drop.
                    None => vec![],
                }
            }
            Inst::LdMeta { dst, field } => {
                let dst_f = self.reg_field(*dst);
                match field {
                    MetaField::Seq => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        src: Arg::Field(self.ncp["ncp.seq"]),
                    }],
                    MetaField::Sender => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        src: Arg::Field(self.ncp["ncp.sender"]),
                    }],
                    MetaField::From => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        src: Arg::Field(self.ncp["ncp.from"]),
                    }],
                    MetaField::NChunks => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        src: Arg::Field(self.ncp["ncp.nchunks"]),
                    }],
                    MetaField::Len => {
                        return Err(self.err(
                            "window.len is dynamic without a compile mask; \
                             switch kernels require one",
                        ))
                    }
                    MetaField::Last => vec![PrimOp::Alu {
                        guard,
                        dst: dst_f,
                        op: BinOp::And,
                        a: Arg::Field(self.ncp["ncp.flags"]),
                        b: Arg::Const(Value::new(ScalarType::U8, 1)),
                    }],
                    MetaField::Ext(off, _) => {
                        let f = self
                            .ext_fields
                            .iter()
                            .find(|(o, _)| *o == *off as usize)
                            .map(|(_, f)| *f)
                            .ok_or_else(|| self.err("unknown ext field offset"))?;
                        vec![PrimOp::Mov {
                            guard,
                            dst: dst_f,
                            src: Arg::Field(f),
                        }]
                    }
                    MetaField::LocationId => vec![PrimOp::Mov {
                        guard,
                        dst: dst_f,
                        // Versioning folds this; a generic-module compile
                        // reads id 0.
                        src: Arg::Const(Value::new(ScalarType::U16, 0)),
                    }],
                }
            }
            Inst::StExt { offset, val, .. } => {
                let f = self
                    .ext_fields
                    .iter()
                    .find(|(o, _)| *o == *offset as usize)
                    .map(|(_, f)| *f)
                    .ok_or_else(|| self.err("unknown ext field offset"))?;
                let src = self.arg(val);
                vec![PrimOp::Mov { guard, dst: f, src }]
            }
            Inst::LdReg { dst, arr, index } => vec![PrimOp::RegRead {
                guard,
                dst: self.reg_field(*dst),
                reg: arr.0 as u16,
                idx: self.arg(index),
            }],
            Inst::StReg { arr, index, val } => vec![PrimOp::RegWrite {
                guard,
                reg: arr.0 as u16,
                idx: self.arg(index),
                src: self.arg(val),
            }],
            Inst::LdCtrl { dst, ctrl } => {
                let reg = self.ctrl_copy(*ctrl);
                vec![PrimOp::RegRead {
                    guard,
                    dst: self.reg_field(*dst),
                    reg,
                    idx: Arg::Const(Value::u32(0)),
                }]
            }
            Inst::MapGet { .. } => unreachable!("handled as a table"),
            Inst::LdHost { .. } | Inst::StHost { .. } => {
                return Err(self.err("host memory access in a switch kernel"))
            }
            Inst::Fwd { kind, label } => {
                let code = match kind {
                    FwdKind::Pass => match label {
                        Some(_) => 4u8,
                        None => 0,
                    },
                    FwdKind::Reflect => 1,
                    FwdKind::Bcast => 2,
                    FwdKind::Drop => 3,
                };
                let mut ops = vec![PrimOp::Mov {
                    guard,
                    dst: self.fwd_code,
                    src: Arg::Const(Value::new(ScalarType::U8, code as u64)),
                }];
                if let Some(l) = label {
                    let id = self.opts.label_ids.get(l).copied().unwrap_or(0);
                    ops.push(PrimOp::Mov {
                        guard,
                        dst: self.fwd_label,
                        src: Arg::Const(Value::new(ScalarType::U16, id as u64)),
                    });
                }
                ops
            }
            Inst::Here { dst, .. } => vec![PrimOp::Mov {
                guard,
                dst: self.reg_field(*dst),
                // Folded by versioning; generic modules read false.
                src: Arg::Const(Value::bool(false)),
            }],
        })
    }

    /// A fresh single-slot register copy for a control-variable read
    /// site.
    fn ctrl_copy(&mut self, ctrl: CtrlId) -> u16 {
        let decl = &self.module.ctrls[ctrl.0 as usize];
        let copies = self.ctrl_regs.entry(decl.name.clone()).or_default();
        let name = format!("{}__c{}", decl.name, copies.len());
        copies.push(name.clone());
        let reg = self.registers.len() as u16;
        self.registers.push(RegisterArrayDef {
            name,
            elem: decl.ty,
            len: 1,
            init: vec![decl.init],
        });
        reg
    }
}

/// A pool of reusable metadata PHV fields, shared across the kernels of
/// one pipeline (only one kernel executes per packet, so their scratch
/// containers can overlap — the paper's "reverse SROA" of SSA registers
/// onto a bounded metadata struct).
#[derive(Default)]
pub(crate) struct FieldPool {
    /// Every pool-managed field, by type.
    all: HashMap<ScalarType, Vec<FieldId>>,
}

/// Assigns every virtual register of a staged kernel to a metadata
/// field using linear-scan liveness: registers with disjoint live
/// ranges share a container. Registers whose first occurrence is a
/// *read* rely on zero-initialization and therefore never take a field
/// this kernel has already dirtied (fields dirtied by other kernels are
/// fine — their writers are dispatch-guarded off).
pub(crate) fn assign_fields(
    staged: &StagedKernel,
    reg_tys: &[ScalarType],
    layout: &mut PhvLayout,
    pool: &mut FieldPool,
    kid: u16,
) -> HashMap<RegId, FieldId> {
    // Linearize and compute ranges.
    struct Range {
        start: usize,
        end: usize,
        read_first: bool,
    }
    let mut ranges: HashMap<RegId, Range> = HashMap::new();
    let mut idx = 0usize;
    for stage in &staged.stages {
        for op in stage {
            let mut touch = |r: RegId, is_read: bool, idx: usize| {
                ranges
                    .entry(r)
                    .and_modify(|rg| rg.end = idx)
                    .or_insert(Range {
                        start: idx,
                        end: idx,
                        read_first: is_read,
                    });
            };
            for o in op.inst.operands() {
                if let Operand::Reg(r) = o {
                    touch(r, true, idx);
                }
            }
            if let Some(g) = op.guard {
                touch(g, true, idx);
            }
            for d in op.inst.dsts() {
                touch(d, false, idx);
            }
            idx += 1;
        }
    }
    // Linear scan in order of range start.
    let mut order: Vec<RegId> = ranges.keys().copied().collect();
    order.sort_by_key(|r| (ranges[r].start, r.0));
    let mut free: HashMap<ScalarType, Vec<FieldId>> = pool.all.clone();
    let mut active: Vec<(usize, ScalarType, FieldId)> = Vec::new(); // (end, ty, field)
    let mut dirty: std::collections::HashSet<FieldId> = std::collections::HashSet::new();
    let mut map: HashMap<RegId, FieldId> = HashMap::new();
    for r in order {
        let rg = &ranges[&r];
        let ty = reg_tys[r.0 as usize];
        // Expire finished tenants.
        active.retain(|&(end, aty, f)| {
            if end < rg.start {
                free.entry(aty).or_default().push(f);
                false
            } else {
                true
            }
        });
        let field = {
            let candidates = free.entry(ty).or_default();
            let pick = if rg.read_first {
                candidates.iter().position(|f| !dirty.contains(f))
            } else {
                candidates.len().checked_sub(1)
            };
            match pick {
                Some(i) => candidates.remove(i),
                None => {
                    let f = layout.add(
                        format!("meta.m{}_{}", ty.bits(), pool_count(pool, ty)),
                        ty,
                        FieldClass::Metadata,
                    );
                    pool.all.entry(ty).or_default().push(f);
                    let _ = kid;
                    f
                }
            }
        };
        dirty.insert(field);
        active.push((rg.end, ty, field));
        map.insert(r, field);
    }
    map
}

fn pool_count(pool: &FieldPool, ty: ScalarType) -> usize {
    pool.all.get(&ty).map(|v| v.len()).unwrap_or(0)
}

/// Encodes a window into NCP packet bytes exactly as the parser above
/// expects (test/bench helper; the real runtime lives in `ncp`).
pub fn encode_window_for_test(w: &c3::Window, ext_total: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&0x4E43u16.to_be_bytes()); // magic
    out.push(1); // version
    out.push(if w.last { 1 } else { 0 }); // flags
    out.extend_from_slice(&w.kernel.0.to_be_bytes());
    out.extend_from_slice(&w.seq.to_be_bytes());
    out.extend_from_slice(&w.sender.0.to_be_bytes());
    out.extend_from_slice(&w.from.to_wire().to_be_bytes());
    out.push(w.chunks.len() as u8);
    out.push(ext_total as u8);
    for c in &w.chunks {
        out.extend_from_slice(&c.offset.to_be_bytes());
        out.extend_from_slice(&(c.data.len() as u16).to_be_bytes());
    }
    let mut ext = w.ext.clone();
    ext.resize(ext_total, 0);
    out.extend_from_slice(&ext);
    for c in &w.chunks {
        out.extend_from_slice(&c.data);
    }
    out
}

/// Decodes an NCP packet produced by the deparser back into a window
/// (test/bench helper).
pub fn decode_window_for_test(bytes: &[u8], arity: usize, ext_total: usize) -> c3::Window {
    use c3::wire::{get_u16, get_u32};
    let kernel = c3::KernelId(get_u16(bytes, 4));
    let seq = get_u32(bytes, 6);
    let sender = c3::HostId(get_u16(bytes, 10));
    let from = c3::NodeId::from_wire(get_u16(bytes, 12));
    let last = bytes[3] & 1 != 0;
    let mut off = 16;
    let mut descs = Vec::new();
    for _ in 0..arity {
        let o = get_u32(bytes, off);
        let l = get_u16(bytes, off + 4);
        descs.push((o, l as usize));
        off += 6;
    }
    let ext = bytes[off..off + ext_total].to_vec();
    off += ext_total;
    let mut chunks = Vec::new();
    for (o, l) in descs {
        chunks.push(c3::Chunk {
            offset: o,
            data: bytes[off..off + l].to_vec(),
        });
        off += l;
    }
    c3::Window {
        kernel,
        seq,
        sender,
        from,
        last,
        chunks,
        ext,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::{Chunk, Forward, HostId, KernelId, NodeId, Window};
    use ncl_ir::lower::{lower, LoweringConfig};
    use ncl_ir::{Interpreter, SwitchState};
    use pisa::Pipeline;

    fn compile(src: &str, masks: &[(&str, Vec<u16>)]) -> (Module, crate::CompiledSwitch) {
        let checked = ncl_lang::frontend(src, "t.ncl").expect("frontend");
        let mut cfg = LoweringConfig::default();
        for (k, m) in masks {
            cfg.masks.insert(k.to_string(), m.clone());
        }
        let mut module = lower(&checked, &cfg).expect("lower");
        ncl_ir::passes::optimize(&mut module);
        let compiled = crate::compile_module(
            &module,
            &ResourceModel::default(),
            &CompileOptions::default(),
        )
        .unwrap_or_else(|e| panic!("compile failed: {e}"));
        (module, compiled)
    }

    fn window_u32(kid: u16, vals: &[u32], seq: u32) -> Window {
        Window {
            kernel: KernelId(kid),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    fn fwd_of(code: u8) -> Forward {
        match code {
            0 => Forward::Pass,
            1 => Forward::Reflect,
            2 => Forward::Bcast,
            3 => Forward::Drop,
            _ => Forward::Pass,
        }
    }

    /// Full differential run: window → NCP bytes → pipeline → window,
    /// compared against the IR interpreter.
    fn differential(
        src: &str,
        kernel: &str,
        mask: Vec<u16>,
        windows: Vec<Window>,
        setup: impl Fn(&mut SwitchState, &mut Pipeline, &crate::CompiledSwitch),
    ) {
        let (module, compiled) = compile(src, &[(kernel, mask)]);
        let kid = compiled.kernel_ids[kernel];
        let mut pipe = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();
        let mut state = SwitchState::from_module(&module);
        setup(&mut state, &mut pipe, &compiled);
        let it = Interpreter::default();
        let kir = module.kernel(kernel).unwrap();
        let ext_total = module.window_ext.size();
        for (i, mut w) in windows.into_iter().enumerate() {
            w.kernel = KernelId(kid);
            let mut wi = w.clone();
            let fwd_interp = it.run_outgoing(kir, &mut wi, &mut state).expect("interp");
            let pkt = encode_window_for_test(&w, ext_total);
            let out = pipe.process(&pkt).expect("pipeline parse");
            let wp = decode_window_for_test(&out.packet, w.chunks.len(), ext_total);
            let fwd_pipe = fwd_of(out.fwd_code);
            assert_eq!(fwd_interp, fwd_pipe, "fwd diverged on window {i}");
            assert_eq!(wi.chunks, wp.chunks, "chunks diverged on window {i}");
            assert_eq!(wi.ext, wp.ext, "ext diverged on window {i}");
        }
        // Registers must agree too (lane mapping checked via readback).
        // The split module's layout differs, so compare observable
        // behaviour only — chunk data above already covers reads.
    }

    #[test]
    fn increment_kernel_end_to_end() {
        differential(
            "_net_ _out_ void inc(int *d) { d[0] += 1; }",
            "inc",
            vec![1],
            vec![window_u32(0, &[41], 0)],
            |_, _, _| {},
        );
    }

    #[test]
    fn branching_kernel_end_to_end() {
        let src = "_net_ _out_ void k(int *d) {\n\
                     if (d[0] > 10) { d[1] = d[0] * 2; _reflect(); }\n\
                     else { d[1] = 0 - d[0]; _drop(); }\n\
                   }";
        differential(
            src,
            "k",
            vec![2],
            vec![window_u32(0, &[20, 0], 0), window_u32(0, &[3, 0], 0)],
            |_, _, _| {},
        );
    }

    #[test]
    fn allreduce_end_to_end() {
        let src = r#"
_net_ _at_("s1") int accum[16] = {0};
_net_ _at_("s1") unsigned count[4] = {0};
_net_ _ctrl_ _at_("s1") unsigned nworkers = 2;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        differential(
            src,
            "allreduce",
            vec![4],
            vec![
                window_u32(0, &[1, 2, 3, 4], 0),
                window_u32(0, &[10, 20, 30, 40], 0),
                window_u32(0, &[7, 7, 7, 7], 1),
                window_u32(0, &[1, 1, 1, 1], 1),
                window_u32(0, &[2, 2, 2, 2], 0),
            ],
            |_, _, _| {},
        );
    }

    #[test]
    fn kvs_get_end_to_end() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
_net_ _at_("s1") uint32_t Cache[16][4] = {{0}};
_net_ _at_("s1") bool Valid[16] = {false};
_net_ _out_ void get(uint64_t key, uint32_t *val) {
    if (auto *idx = Idx[key]) {
        if (Valid[*idx]) {
            memcpy(val, Cache[*idx], 16); _reflect();
        }
    }
}
"#;
        let (module, compiled) = compile(src, &[("get", vec![1, 4])]);
        let kid = compiled.kernel_ids["get"];
        let mut pipe = Pipeline::load(compiled.pipeline.clone(), ResourceModel::default()).unwrap();
        let mut state = SwitchState::from_module(&module);

        // Control plane: key 77 → slot 3, valid, value {9,8,7,6}.
        state.map_insert(ncl_ir::MapId(0), 77, Value::new(ScalarType::U8, 3));
        state.registers[1][3] = Value::bool(true); // Valid (module order)
                                                   // Interpreter-side Cache[3] = {9,8,7,6} (flattened 2-D).
        for (j, v) in [9u32, 8, 7, 6].iter().enumerate() {
            state.registers[0][3 * 4 + j] = Value::u32(*v);
        }
        // Pipeline-side control plane: insert into every lookup table
        // and the lane banks.
        for t in &compiled.map_tables["Idx"] {
            pipe.table_insert(
                t,
                pisa::Entry {
                    patterns: vec![pisa::MatchPattern::exact(1), pisa::MatchPattern::exact(77)],
                    action: ActionRef(1),
                    args: vec![Value::new(ScalarType::U8, 3)],
                    priority: 0,
                },
            )
            .unwrap();
        }
        assert!(pipe.register_write("Valid", 3, Value::bool(true)));
        for (j, v) in [9u32, 8, 7, 6].iter().enumerate() {
            assert!(pipe.register_write(&format!("Cache__l{j}"), 3, Value::u32(*v)));
        }

        let it = Interpreter::default();
        let kir = module.kernel("get").unwrap();
        // Hit: key 77.
        let mk = |key: u64| Window {
            kernel: KernelId(kid),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: key.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: vec![0; 16],
                },
            ],
            ext: vec![],
        };
        for key in [77u64, 5] {
            let mut wi = mk(key);
            let fwd_i = it.run_outgoing(kir, &mut wi, &mut state).unwrap();
            let pkt = encode_window_for_test(&mk(key), 0);
            let out = pipe.process(&pkt).unwrap();
            let wp = decode_window_for_test(&out.packet, 2, 0);
            assert_eq!(fwd_of(out.fwd_code), fwd_i, "key {key}");
            assert_eq!(wp.chunks, wi.chunks, "key {key}");
        }
    }

    #[test]
    fn ext_fields_travel() {
        let src = r#"
_wnd_ struct W { uint16_t tag; };
_net_ _out_ void k(int *d) { window.tag = window.tag + 1; }
"#;
        let (module, compiled) = compile(src, &[("k", vec![1])]);
        let kid = compiled.kernel_ids["k"];
        let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).unwrap();
        let mut w = window_u32(kid, &[0], 0);
        w.ext_write(0, Value::new(ScalarType::U16, 41));
        let pkt = encode_window_for_test(&w, module.window_ext.size());
        let out = pipe.process(&pkt).unwrap();
        let wp = decode_window_for_test(&out.packet, 1, module.window_ext.size());
        assert_eq!(
            wp.ext_read(ScalarType::U16, 0),
            Value::new(ScalarType::U16, 42)
        );
    }

    #[test]
    fn foreign_packets_pass_through_unparsed() {
        let (_, compiled) = compile(
            "_net_ _out_ void k(int *d) { d[0] += 1; }",
            &[("k", vec![1])],
        );
        let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).unwrap();
        // Not an NCP packet for kernel 1 (unknown kernel id 999).
        let mut w = window_u32(999, &[1], 0);
        w.kernel = KernelId(999);
        let pkt = encode_window_for_test(&w, 0);
        assert!(pipe.process(&pkt).is_none());
        assert_eq!(pipe.stats.parse_errors, 1);
    }

    #[test]
    fn two_kernels_dispatch_independently() {
        let src = "_net_ _out_ void ka(int *d) { d[0] += 1; }\n\
                   _net_ _out_ void kb(int *d) { d[0] *= 2; }";
        let checked = ncl_lang::frontend(src, "t.ncl").unwrap();
        let mut cfg = LoweringConfig::default();
        cfg.masks.insert("ka".into(), vec![1]);
        cfg.masks.insert("kb".into(), vec![1]);
        let mut module = lower(&checked, &cfg).unwrap();
        ncl_ir::passes::optimize(&mut module);
        let compiled = crate::compile_module(
            &module,
            &ResourceModel::default(),
            &CompileOptions::default(),
        )
        .unwrap();
        let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).unwrap();
        let ka = compiled.kernel_ids["ka"];
        let kb = compiled.kernel_ids["kb"];
        let run = |pipe: &mut Pipeline, kid: u16, v: u32| -> u32 {
            let w = window_u32(kid, &[v], 0);
            let pkt = encode_window_for_test(&w, 0);
            let out = pipe.process(&pkt).unwrap();
            let wp = decode_window_for_test(&out.packet, 1, 0);
            wp.chunks[0].get(ScalarType::U32, 0).bits() as u32
        };
        assert_eq!(run(&mut pipe, ka, 10), 11);
        assert_eq!(run(&mut pipe, kb, 10), 20);
    }

    #[test]
    fn ctrl_variable_updates_apply() {
        let src = r#"
_net_ _ctrl_ _at_("s1") unsigned thresh = 5;
_net_ _out_ void k(int *d) { if ((unsigned)d[0] > thresh) { _drop(); } }
"#;
        let (_, compiled) = compile(src, &[("k", vec![1])]);
        let kid = compiled.kernel_ids["k"];
        let mut pipe = Pipeline::load(compiled.pipeline, ResourceModel::default()).unwrap();
        let run = |pipe: &mut Pipeline, v: u32| -> u8 {
            let w = window_u32(kid, &[v], 0);
            let out = pipe.process(&encode_window_for_test(&w, 0)).unwrap();
            out.fwd_code
        };
        assert_eq!(run(&mut pipe, 9), 3); // drop: 9 > 5
        assert_eq!(run(&mut pipe, 3), 0); // pass
                                          // ncl::ctrl_wr equivalent: update every copy.
        for copy in &compiled.ctrl_regs["thresh"] {
            assert!(pipe.register_write(copy, 0, Value::u32(100)));
        }
        assert_eq!(run(&mut pipe, 9), 0); // now passes
    }
}
