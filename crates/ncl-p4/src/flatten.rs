//! If-conversion: CFG → straight-line predicated code.
//!
//! PISA pipelines have no branches; compiled control flow becomes
//! per-operation predication (the "CFG is transformed to a table graph"
//! step of the paper's §5). For an acyclic CFG:
//!
//! * every non-entry block gets a boolean *predicate register*,
//!   initially false (registers are zero-initialized per packet);
//! * emitting blocks in reverse post-order (a topological order of the
//!   DAG), each block's instructions are guarded by its predicate;
//! * a `Br(cond, T, E)` contributes `pred_T |= cond & pred_B` and
//!   `pred_E |= !cond & pred_B`; a `Jmp(T)` contributes
//!   `pred_B` directly; `Ret` contributes nothing (the path ends).
//!
//! Guarded instructions leave their destinations untouched when the
//! guard is false, which preserves the mutable-register semantics of
//! multi-def IR registers without φ nodes.

use c3::{BinOp, ScalarType, UnOp, Value};
use ncl_ir::ir::*;

/// One predicated linear instruction.
#[derive(Clone, PartialEq, Debug)]
pub struct PredInst {
    /// Execute only when this (bool) register is true; `None` = always.
    pub guard: Option<RegId>,
    /// The instruction (never a terminator).
    pub inst: Inst,
}

/// A flattened kernel: straight-line predicated ops.
#[derive(Clone, PartialEq, Debug)]
pub struct LinearKernel {
    /// Kernel name.
    pub name: String,
    /// Ops in execution order.
    pub ops: Vec<PredInst>,
    /// Register types (indexes include the new predicate registers).
    pub reg_tys: Vec<ScalarType>,
}

/// Errors flattening can hit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlattenError {
    /// The CFG still has a cycle (conformance should have caught it).
    Cyclic {
        /// Kernel name.
        kernel: String,
    },
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::Cyclic { kernel } => {
                write!(f, "kernel '{kernel}' has a cyclic CFG; cannot flatten")
            }
        }
    }
}

impl std::error::Error for FlattenError {}

/// Flattens a kernel. `root` optionally guards the entry block — the
/// codegen uses it for `kernel_id` dispatch when several kernels share
/// one pipeline (ops that were unguarded become guarded by `root`).
pub fn flatten(kernel: &KernelIr, root: Option<RegId>) -> Result<LinearKernel, FlattenError> {
    if kernel.has_loop() {
        return Err(FlattenError::Cyclic {
            kernel: kernel.name.clone(),
        });
    }
    let rpo = kernel.rpo();
    let mut reg_tys = kernel.reg_tys.clone();
    let fresh = |ty: ScalarType, reg_tys: &mut Vec<ScalarType>| -> RegId {
        let id = RegId(reg_tys.len() as u32);
        reg_tys.push(ty);
        id
    };

    // Predicate register per non-entry reachable block.
    let mut preds: Vec<Option<RegId>> = vec![None; kernel.blocks.len()];
    for b in rpo.iter().skip(1) {
        preds[b.0 as usize] = Some(fresh(ScalarType::Bool, &mut reg_tys));
    }
    // Entry predicate is the root guard (or unguarded).
    preds[rpo[0].0 as usize] = root;

    // Whether a predicate register has received its first contribution.
    // The first write is a plain copy (never reading the uninitialized
    // register), so predicate fields need no zero-init and the PHV
    // allocator may reuse containers.
    let mut seeded = vec![false; reg_tys.len() + kernel.blocks.len() * 2 + 16];
    let mut ops: Vec<PredInst> = Vec::new();
    for &bid in &rpo {
        let block = kernel.block(bid);
        let guard = preds[bid.0 as usize];
        for inst in &block.insts {
            ops.push(PredInst {
                guard,
                inst: inst.clone(),
            });
        }
        match &block.term {
            Terminator::Ret => {}
            Terminator::Jmp(t) => {
                let pt = preds[t.0 as usize].expect("non-entry target has a predicate");
                // pred_t (|)= guard — true when unguarded; the first
                // contribution is a plain copy.
                let first = !seeded[pt.0 as usize];
                seeded[pt.0 as usize] = true;
                let contrib = match guard {
                    Some(g) => Operand::Reg(g),
                    None => Operand::Const(Value::bool(true)),
                };
                if first {
                    ops.push(PredInst {
                        guard: None,
                        inst: Inst::Copy {
                            dst: pt,
                            a: contrib,
                        },
                    });
                } else {
                    ops.push(PredInst {
                        guard: None,
                        inst: Inst::Bin {
                            dst: pt,
                            op: BinOp::Or,
                            a: Operand::Reg(pt),
                            b: contrib,
                        },
                    });
                }
            }
            Terminator::Br { cond, then, els } => {
                let pt = preds[then.0 as usize].expect("predicate");
                let pe = preds[els.0 as usize].expect("predicate");
                // Normalize the condition to a bool register.
                let cond_reg = match cond {
                    Operand::Reg(r) => *r,
                    Operand::Const(v) => {
                        let c = fresh(ScalarType::Bool, &mut reg_tys);
                        ops.push(PredInst {
                            guard: None,
                            inst: Inst::Copy {
                                dst: c,
                                a: Operand::Const(Value::bool(v.is_truthy())),
                            },
                        });
                        c
                    }
                };
                let ncond = fresh(ScalarType::Bool, &mut reg_tys);
                ops.push(PredInst {
                    guard: None,
                    inst: Inst::Un {
                        dst: ncond,
                        op: UnOp::Not,
                        a: Operand::Reg(cond_reg),
                    },
                });
                let (t_contrib, e_contrib) = match guard {
                    Some(g) => {
                        let tc = fresh(ScalarType::Bool, &mut reg_tys);
                        ops.push(PredInst {
                            guard: None,
                            inst: Inst::Bin {
                                dst: tc,
                                op: BinOp::And,
                                a: Operand::Reg(cond_reg),
                                b: Operand::Reg(g),
                            },
                        });
                        let ec = fresh(ScalarType::Bool, &mut reg_tys);
                        ops.push(PredInst {
                            guard: None,
                            inst: Inst::Bin {
                                dst: ec,
                                op: BinOp::And,
                                a: Operand::Reg(ncond),
                                b: Operand::Reg(g),
                            },
                        });
                        (tc, ec)
                    }
                    None => (cond_reg, ncond),
                };
                for (p_dst, contrib) in [(pt, t_contrib), (pe, e_contrib)] {
                    let first = !seeded[p_dst.0 as usize];
                    seeded[p_dst.0 as usize] = true;
                    if first {
                        ops.push(PredInst {
                            guard: None,
                            inst: Inst::Copy {
                                dst: p_dst,
                                a: Operand::Reg(contrib),
                            },
                        });
                    } else {
                        ops.push(PredInst {
                            guard: None,
                            inst: Inst::Bin {
                                dst: p_dst,
                                op: BinOp::Or,
                                a: Operand::Reg(p_dst),
                                b: Operand::Reg(contrib),
                            },
                        });
                    }
                }
            }
        }
    }
    // Keys of guarded map lookups must be registers (they become PHV
    // match fields); materialize constant keys.
    let mut extra: Vec<(usize, PredInst)> = Vec::new();
    for (i, p) in ops.iter_mut().enumerate() {
        if let Inst::MapGet { key, .. } = &mut p.inst {
            if let Operand::Const(v) = key {
                let r = RegId(reg_tys.len() as u32);
                reg_tys.push(v.ty());
                extra.push((
                    i,
                    PredInst {
                        guard: None,
                        inst: Inst::Copy {
                            dst: r,
                            a: Operand::Const(*v),
                        },
                    },
                ));
                *key = Operand::Reg(r);
            }
        }
    }
    for (i, p) in extra.into_iter().rev() {
        ops.insert(i, p);
    }

    Ok(LinearKernel {
        name: kernel.name.clone(),
        ops,
        reg_tys,
    })
}

/// Executes a [`LinearKernel`] with the IR interpreter's semantics —
/// used by tests to prove flattening preserves behaviour before stage
/// allocation enters the picture.
#[cfg(test)]
pub fn execute_linear(
    lin: &LinearKernel,
    kernel: &KernelIr,
    window: &mut c3::Window,
    state: &mut ncl_ir::SwitchState,
) -> c3::Forward {
    use c3::Forward;
    let mut regs: Vec<Value> = lin.reg_tys.iter().map(|&t| Value::zero(t)).collect();
    let mut decision = Forward::Pass;
    let win_params: Vec<ScalarType> = kernel
        .params
        .iter()
        .filter(|p| !p.ext)
        .map(|p| p.elem)
        .collect();
    let get = |o: &Operand, regs: &[Value]| match o {
        Operand::Const(v) => *v,
        Operand::Reg(r) => regs[r.0 as usize],
    };
    for p in &lin.ops {
        if let Some(g) = p.guard {
            if !regs[g.0 as usize].is_truthy() {
                continue;
            }
        }
        match &p.inst {
            Inst::Bin { dst, op, a, b } => {
                regs[dst.0 as usize] = Value::binop(*op, get(a, &regs), get(b, &regs))
            }
            Inst::Un { dst, op, a } => regs[dst.0 as usize] = Value::unop(*op, get(a, &regs)),
            Inst::Cast { dst, ty, a } => regs[dst.0 as usize] = get(a, &regs).cast(*ty),
            Inst::Copy { dst, a } => regs[dst.0 as usize] = get(a, &regs),
            Inst::Select { dst, cond, a, b } => {
                regs[dst.0 as usize] = if get(cond, &regs).is_truthy() {
                    get(a, &regs)
                } else {
                    get(b, &regs)
                }
            }
            Inst::LdWin { dst, param, index } => {
                let ty = win_params[*param as usize];
                let idx = get(index, &regs).bits() as usize;
                regs[dst.0 as usize] = window
                    .chunks
                    .get(*param as usize)
                    .filter(|c| idx < c.elems(ty))
                    .map(|c| c.get(ty, idx))
                    .unwrap_or_else(|| Value::zero(ty));
            }
            Inst::StWin { param, index, val } => {
                let ty = win_params[*param as usize];
                let idx = get(index, &regs).bits() as usize;
                let v = get(val, &regs).cast(ty);
                if let Some(c) = window.chunks.get_mut(*param as usize) {
                    if idx < c.elems(ty) {
                        c.set(ty, idx, v);
                    }
                }
            }
            Inst::LdMeta { dst, field } => {
                let v = match field {
                    MetaField::Seq => Value::u32(window.seq),
                    MetaField::Sender => Value::new(ScalarType::U16, window.sender.0 as u64),
                    MetaField::From => Value::new(ScalarType::U16, window.from.to_wire() as u64),
                    MetaField::Len => {
                        let ty = win_params.first().copied().unwrap_or(ScalarType::U8);
                        Value::new(
                            ScalarType::U16,
                            window.chunks.first().map(|c| c.elems(ty)).unwrap_or(0) as u64,
                        )
                    }
                    MetaField::NChunks => Value::new(ScalarType::U8, window.chunks.len() as u64),
                    MetaField::Last => Value::bool(window.last),
                    MetaField::Ext(off, ty) => window.ext_read(*ty, *off as usize),
                    MetaField::LocationId => Value::new(ScalarType::U16, state.location_id as u64),
                };
                regs[dst.0 as usize] = v;
            }
            Inst::StExt { offset, ty, val } => {
                let v = get(val, &regs).cast(*ty);
                window.ext_write(*offset as usize, v);
            }
            Inst::LdReg { dst, arr, index } => {
                let a = &state.registers[arr.0 as usize];
                if !a.is_empty() {
                    let idx = get(index, &regs).bits() as usize % a.len();
                    regs[dst.0 as usize] = a[idx];
                }
            }
            Inst::StReg { arr, index, val } => {
                let v = get(val, &regs);
                let a = &mut state.registers[arr.0 as usize];
                if !a.is_empty() {
                    let idx = get(index, &regs).bits() as usize % a.len();
                    let ty = a[idx].ty();
                    a[idx] = v.cast(ty);
                }
            }
            Inst::LdCtrl { dst, ctrl } => regs[dst.0 as usize] = state.ctrls[ctrl.0 as usize],
            Inst::MapGet {
                found,
                val,
                map,
                key,
            } => {
                let k = get(key, &regs).bits();
                let ty = regs[val.0 as usize].ty();
                match state.maps[map.0 as usize].get(&k) {
                    Some(v) => {
                        regs[found.0 as usize] = Value::bool(true);
                        regs[val.0 as usize] = v.cast(ty);
                    }
                    None => {
                        regs[found.0 as usize] = Value::bool(false);
                        regs[val.0 as usize] = Value::zero(ty);
                    }
                }
            }
            Inst::LdHost { .. } | Inst::StHost { .. } => {
                unreachable!("host ops never reach switch codegen")
            }
            Inst::Fwd { kind, label } => {
                decision = match kind {
                    FwdKind::Pass => match label {
                        Some(l) => Forward::PassTo(l.clone()),
                        None => Forward::Pass,
                    },
                    FwdKind::Reflect => Forward::Reflect,
                    FwdKind::Bcast => Forward::Bcast,
                    FwdKind::Drop => Forward::Drop,
                };
            }
            Inst::Here { dst, label } => {
                let here = state.location.as_ref().map(|l| l == label).unwrap_or(false);
                regs[dst.0 as usize] = Value::bool(here);
            }
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3::{Chunk, Forward, HostId, KernelId, NodeId, Window};
    use ncl_ir::lower::{lower, LoweringConfig};
    use ncl_ir::{Interpreter, SwitchState};
    use ncl_lang::frontend;

    fn module(src: &str, kernel: &str, mask: &[u16]) -> Module {
        let checked = frontend(src, "t.ncl").expect("frontend");
        let mut m =
            lower(&checked, &LoweringConfig::with_mask(kernel, mask.to_vec())).expect("lower");
        ncl_ir::passes::optimize(&mut m);
        m
    }

    fn window_u32(vals: &[u32], seq: u32) -> Window {
        Window {
            kernel: KernelId(0),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        }
    }

    /// Differential: interpreter vs flattened execution.
    fn check_equivalence(src: &str, kernel: &str, mask: &[u16], windows: Vec<Window>) {
        let m = module(src, kernel, mask);
        let k = m.kernel(kernel).unwrap();
        let lin = flatten(k, None).expect("flatten");
        let it = Interpreter::default();
        let mut st_a = SwitchState::from_module(&m);
        let mut st_b = SwitchState::from_module(&m);
        for (i, w) in windows.into_iter().enumerate() {
            let mut wa = w.clone();
            let mut wb = w;
            let fa = it.run_outgoing(k, &mut wa, &mut st_a).expect("interp");
            let fb = execute_linear(&lin, k, &mut wb, &mut st_b);
            assert_eq!(fa, fb, "forward decision diverged at window {i}");
            assert_eq!(wa, wb, "window diverged at window {i}");
            assert_eq!(
                st_a.registers, st_b.registers,
                "state diverged at window {i}"
            );
        }
    }

    #[test]
    fn straight_line_unchanged() {
        check_equivalence(
            "_net_ _out_ void k(int *d) { d[0] += 1; d[1] = d[0] * 2; }",
            "k",
            &[2],
            vec![window_u32(&[10, 0], 0)],
        );
    }

    #[test]
    fn diamond_both_paths() {
        let src = "_net_ _out_ void k(int *d) {\n\
                     if (d[0] > 5) { d[1] = 1; } else { d[1] = 2; }\n\
                     d[0] = d[1] + 10;\n\
                   }";
        check_equivalence(
            src,
            "k",
            &[2],
            vec![window_u32(&[9, 0], 0), window_u32(&[1, 0], 0)],
        );
    }

    #[test]
    fn nested_branches() {
        let src = "_net_ _out_ void k(int *d) {\n\
                     if (d[0] > 0) { if (d[1] > 0) { d[2] = 1; } else { d[2] = 2; } }\n\
                     else { d[2] = 3; }\n\
                   }";
        let cases = vec![
            window_u32(&[1, 1, 0], 0),
            window_u32(&[1, 0, 0], 0),
            window_u32(&[0, 1, 0], 0),
        ];
        check_equivalence(src, "k", &[3], cases);
    }

    #[test]
    fn forwarding_decisions_predicated() {
        let src = "_net_ _out_ void k(int *d) {\n\
                     if (d[0] > 5) { _reflect(); } else { _drop(); }\n\
                   }";
        let m = module(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let lin = flatten(k, None).unwrap();
        let mut st = SwitchState::from_module(&m);
        let mut w = window_u32(&[9], 0);
        assert_eq!(execute_linear(&lin, k, &mut w, &mut st), Forward::Reflect);
        let mut w = window_u32(&[1], 0);
        assert_eq!(execute_linear(&lin, k, &mut w, &mut st), Forward::Drop);
    }

    #[test]
    fn allreduce_equivalence_across_windows() {
        let src = r#"
_net_ _at_("s1") int accum[8] = {0};
_net_ _at_("s1") unsigned count[2] = {0};
_net_ _ctrl_ _at_("s1") unsigned nworkers = 2;
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
"#;
        check_equivalence(
            src,
            "k",
            &[4],
            vec![
                window_u32(&[1, 2, 3, 4], 0),
                window_u32(&[10, 20, 30, 40], 0),
                window_u32(&[5, 5, 5, 5], 1),
                window_u32(&[7, 7, 7, 7], 1),
            ],
        );
    }

    #[test]
    fn map_lookup_flattened() {
        let src = r#"
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> Idx;
_net_ _at_("s1") bool Valid[4] = {false};
_net_ _out_ void k(uint64_t key) {
    if (auto *i = Idx[key]) { Valid[*i] = true; _reflect(); }
}
"#;
        let m = module(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        let lin = flatten(k, None).unwrap();
        let it = Interpreter::default();
        let mut st_a = SwitchState::from_module(&m);
        st_a.map_insert(MapId(0), 42, Value::new(ScalarType::U8, 3));
        let mut st_b = st_a.clone();
        let mk = |key: u64| Window {
            kernel: KernelId(0),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: key.to_be_bytes().to_vec(),
            }],
            ext: vec![],
        };
        for key in [42u64, 7] {
            let mut wa = mk(key);
            let mut wb = mk(key);
            let fa = it.run_outgoing(k, &mut wa, &mut st_a).unwrap();
            let fb = execute_linear(&lin, k, &mut wb, &mut st_b);
            assert_eq!(fa, fb, "key {key}");
            assert_eq!(st_a.registers, st_b.registers);
        }
    }

    #[test]
    fn root_guard_gates_everything() {
        let src = "_net_ _out_ void k(int *d) { d[0] = 99; }";
        let m = module(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        // Root guard register beyond the kernel's own: flatten with a
        // fresh root and leave it false.
        let root = RegId(k.nregs);
        let mut k2 = k.clone();
        k2.nregs += 1;
        k2.reg_tys.push(ScalarType::Bool);
        let lin = flatten(&k2, Some(root)).unwrap();
        let mut st = SwitchState::from_module(&m);
        let mut w = window_u32(&[1], 0);
        execute_linear(&lin, &k2, &mut w, &mut st);
        // Root stayed false → no write happened.
        assert_eq!(w.chunks[0].get(ScalarType::I32, 0), Value::i32(1));
    }

    #[test]
    fn cyclic_cfg_rejected() {
        let src = "_net_ _out_ void k(int *d) { while (d[0] > 0) { d[0] -= 1; } }";
        let m = module(src, "k", &[1]);
        let k = m.kernel("k").unwrap();
        assert!(matches!(flatten(k, None), Err(FlattenError::Cyclic { .. })));
    }
}
