#![warn(missing_docs)]

//! # ncl-p4 — code generation from NCL IR to PISA pipelines and P4
//!
//! The back half of the nclc trajectory (paper Fig. 6): after the IR is
//! optimized and versioned per location, this crate turns each module
//! into something a switch can run:
//!
//! 1. [`lanes`] — **lane splitting**: register arrays accessed at
//!    `dyn*L + k` (the AllReduce `accum[seq*len + i]` pattern, NetCache's
//!    multi-table value reads) split into `L` independent banks so each
//!    bank is touched once per window in one stage — the transformation
//!    that makes in-network aggregation fit real RMT chips.
//! 2. [`flatten`] — **if-conversion**: the acyclic CFG becomes
//!    straight-line predicated code (PISA pipelines have no branches;
//!    control flow becomes per-op guards).
//! 3. [`alloc`] — **stage allocation**: predicated ops are packed into
//!    match-action stages respecting read-after-write dependencies
//!    (writers before readers, stage-wise), the one-stage-per-register-
//!    bank rule, and per-stage op/table budgets; programs longer than the
//!    chip recirculate.
//! 4. [`codegen`] — builds the loadable [`pisa::PipelineConfig`]: PHV
//!    layout (NCP headers + per-kernel window fields + metadata), parser
//!    and deparser branching on `kernel_id`, map tables, and the staged
//!    actions.
//! 5. [`p4emit`] — renders the same artifacts as P4-16 source merged
//!    with a template switch config (Ethernet/IPv4/UDP plumbing), for
//!    inspection and the paper's code-size comparisons.
//!
//! Entry point: [`compile_module`].

pub mod alloc;
pub mod codegen;
pub mod estimate;
pub mod flatten;
pub mod lanes;
pub mod p4emit;

use c3::Label;
use ncl_ir::ir::Module;
use pisa::{PipelineConfig, ResourceModel, ResourceReport};
use std::collections::HashMap;

/// Everything produced for one switch.
#[derive(Clone, Debug)]
pub struct CompiledSwitch {
    /// The loadable pipeline configuration (our `switch.bin`).
    pub pipeline: PipelineConfig,
    /// Emitted P4-16 source (our `switch.p4`).
    pub p4_source: String,
    /// Resource usage against the target model.
    pub report: ResourceReport,
    /// Kernel-name → NCP kernel id, as compiled.
    pub kernel_ids: HashMap<String, u16>,
    /// Map-name → table names (one per lookup site), for the control
    /// plane.
    pub map_tables: HashMap<String, Vec<String>>,
    /// Control-variable name → register-copy names the control plane
    /// writes.
    pub ctrl_regs: HashMap<String, Vec<String>>,
    /// Source array name → physical lane-bank names (single entry when
    /// the array was not lane-split).
    pub lane_banks: HashMap<String, Vec<String>>,
}

/// Compile-time failure.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Conformance violations (loops, misplaced state).
    Conformance(Vec<ncl_ir::passes::ConformanceError>),
    /// The program exceeds the chip's resources even with maximal
    /// recirculation (the backend "reject" arrow of Fig. 6).
    Resources(ResourceReport),
    /// Stage allocation or translation failed for a kernel.
    Codegen {
        /// The kernel at fault.
        kernel: String,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Conformance(errs) => {
                writeln!(f, "conformance check failed:")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            CompileError::Resources(report) => {
                writeln!(f, "program rejected by the resource model:")?;
                for v in &report.violations {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
            CompileError::Codegen { kernel, reason } => {
                write!(f, "code generation failed for kernel '{kernel}': {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Options for a compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Pre-assigned kernel ids (program-wide, shared with hosts). Any
    /// kernel missing here gets the next free id.
    pub kernel_ids: HashMap<String, u16>,
    /// AND label → numeric id, for `_pass(label)` targets.
    pub label_ids: HashMap<Label, u16>,
    /// Ablation: disable register lane splitting.
    pub disable_lane_split: bool,
    /// Gateway predicate-chain depth per stage (0 disables chaining).
    pub gateway_depth: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            kernel_ids: HashMap::new(),
            label_ids: HashMap::new(),
            disable_lane_split: false,
            gateway_depth: alloc::GATEWAY_DEPTH,
        }
    }
}

/// Compiles an optimized, versioned module for a switch with the given
/// resource model. The module must already have passed
/// [`ncl_ir::passes::conformance`] (this re-checks and errors if not).
pub fn compile_module(
    module: &Module,
    model: &ResourceModel,
    opts: &CompileOptions,
) -> Result<CompiledSwitch, CompileError> {
    let conf = ncl_ir::passes::conformance(module);
    if !conf.is_empty() {
        return Err(CompileError::Conformance(conf));
    }
    // 1. Lane splitting (module-wide so kernels agree on banks).
    let mut split = module.clone();
    let lane_map = if opts.disable_lane_split {
        lanes::LaneMap::identity(&split)
    } else {
        lanes::split_lanes(&mut split)
    };

    // 2-4. Per-kernel flatten + allocate, merged into one pipeline.
    let compiled =
        codegen::build_pipeline(&split, model, opts).map_err(|e| CompileError::Codegen {
            kernel: e.kernel,
            reason: e.reason,
        })?;

    let report = compiled.pipeline.report(model);
    if !report.accepted() {
        return Err(CompileError::Resources(report));
    }
    // 5. P4 emission from the same staged artifacts.
    let p4_source = p4emit::emit(&split, &compiled, &lane_map);
    Ok(CompiledSwitch {
        pipeline: compiled.pipeline,
        p4_source,
        report,
        kernel_ids: compiled.kernel_ids,
        map_tables: compiled.map_tables,
        ctrl_regs: compiled.ctrl_regs,
        lane_banks: lane_map.banks.clone(),
    })
}
