//! Early per-kernel resource estimation — the lint-time cost model.
//!
//! `nclc --lint` wants to reject infeasible kernels *before* full PISA
//! mapping (paper §6 asks how a programmer learns a kernel won't fit;
//! the answer should not be "after codegen fails"). This module runs
//! only the cheap front half of the backend — lane splitting, if-
//! conversion, stage allocation — and predicts what the full pipeline
//! would consume:
//!
//! * **stages** per kernel (window widths are already constants in the
//!   IR by this point — lowering folds the mask and `optimize` unrolls
//!   loops — so the staged shape is exact);
//! * **SRAM** attributed per kernel, using the same per-register-access
//!   accounting as [`pisa::PipelineConfig::report`];
//! * **PHV** header/metadata bytes, replaying codegen's field layout
//!   (chunk descriptors, payload elements, dispatch bits, liveness-
//!   shared virtual-register containers) without building any tables;
//! * per-array stateful **micro-op counts** against
//!   [`pisa::ResourceModel::reg_accesses_per_pass`].
//!
//! All limit checks produce the *same* [`pisa::ResourceViolation`] type
//! the pipeline loader emits, so the early and the late checks cannot
//! disagree about what a violation is. Agreement with the real mapping
//! is pinned by tests: stage predictions within ±1 (the dispatch
//! stage), SRAM within ±10%, on every example kernel.

use crate::alloc::{allocate, AllocBudget};
use crate::codegen::{assign_fields, FieldPool, NCP_FIELDS};
use crate::flatten::flatten;
use crate::lanes;
use c3::ScalarType;
use ncl_ir::ir::{Inst, Module};
use ncl_lang::ast::KernelKind;
use pisa::{FieldClass, PhvLayout, ResourceModel, ResourceViolation};
use std::collections::BTreeMap;

/// Predicted cost of one kernel.
#[derive(Clone, Debug)]
pub struct KernelEstimate {
    /// Kernel name.
    pub kernel: String,
    /// Match-action stages the kernel's own ops occupy (the pipeline
    /// adds one shared dispatch stage in front).
    pub stages: usize,
    /// Predicated IR micro-ops after if-conversion (a lower bound on
    /// the VLIW ops codegen emits).
    pub alu_ops: usize,
    /// SRAM bytes attributed to this kernel's register accesses
    /// (per-access accounting, matching the pipeline report).
    pub sram_bytes: usize,
    /// Header PHV bytes this kernel adds (chunk descriptors + payload
    /// elements).
    pub phv_header_bytes: usize,
    /// Metadata PHV bytes this kernel adds (dispatch bit + any virtual-
    /// register containers not shared with earlier kernels).
    pub phv_metadata_bytes: usize,
    /// Stateful micro-ops per register array (reads + writes).
    pub reg_accesses: BTreeMap<String, usize>,
    /// Per-kernel limit violations.
    pub violations: Vec<ResourceViolation>,
}

/// Predicted cost of a whole versioned module.
#[derive(Clone, Debug)]
pub struct ModuleEstimate {
    /// Per-kernel estimates, in module order.
    pub kernels: Vec<KernelEstimate>,
    /// Total pipeline stages: one dispatch stage plus the widest
    /// kernel (kernels share stages, merged side by side).
    pub pipeline_stages: usize,
    /// Total header PHV bytes (NCP header + ext struct + all kernels).
    pub phv_header_bytes: usize,
    /// Total metadata PHV bytes (intrinsics + all kernels).
    pub phv_metadata_bytes: usize,
    /// SRAM bytes per physical stage (register accounting only).
    pub sram_by_stage: Vec<usize>,
    /// Module-wide violations (PHV budgets, per-stage SRAM, arrays
    /// shared across kernels exceeding the micro-op budget).
    pub violations: Vec<ResourceViolation>,
}

impl ModuleEstimate {
    /// Whether every kernel and the module as a whole fit the model.
    pub fn accepted(&self) -> bool {
        self.violations.is_empty() && self.kernels.iter().all(|k| k.violations.is_empty())
    }

    /// All violations, each tagged with the kernel at fault (`None` for
    /// module-wide ones).
    pub fn all_violations(&self) -> Vec<(Option<&str>, &ResourceViolation)> {
        let mut out: Vec<(Option<&str>, &ResourceViolation)> =
            self.violations.iter().map(|v| (None, v)).collect();
        for k in &self.kernels {
            out.extend(k.violations.iter().map(|v| (Some(k.kernel.as_str()), v)));
        }
        out
    }

    /// Renders the per-kernel cost report (the `--lint` cost table).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "pipeline: {} stages, PHV {}B hdr + {}B meta\n",
            self.pipeline_stages, self.phv_header_bytes, self.phv_metadata_bytes
        ));
        for k in &self.kernels {
            s.push_str(&format!(
                "  {}: {} stage{} + dispatch, {} ops, {}B SRAM, PHV +{}B hdr +{}B meta\n",
                k.kernel,
                k.stages,
                if k.stages == 1 { "" } else { "s" },
                k.alu_ops,
                k.sram_bytes,
                k.phv_header_bytes,
                k.phv_metadata_bytes,
            ));
            for (arr, n) in &k.reg_accesses {
                s.push_str(&format!("    {arr}: {n} stateful micro-op(s)\n"));
            }
        }
        for (kernel, v) in self.all_violations() {
            match kernel {
                Some(k) => s.push_str(&format!("  violation [{k}]: {v}\n")),
                None => s.push_str(&format!("  violation: {v}\n")),
            }
        }
        s
    }
}

/// Estimation failure (flatten or stage allocation could not run).
#[derive(Clone, Debug)]
pub struct EstimateError {
    /// The kernel at fault.
    pub kernel: String,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot estimate kernel '{}': {}",
            self.kernel, self.reason
        )
    }
}

impl std::error::Error for EstimateError {}

/// Estimates resource usage of an optimized, versioned module without
/// building the pipeline. Mirrors `codegen::build_pipeline`'s layout
/// decisions (lane splitting, field order, liveness-shared metadata)
/// so the prediction tracks the real mapping.
pub fn estimate_module(
    module: &Module,
    model: &ResourceModel,
) -> Result<ModuleEstimate, EstimateError> {
    let mut split = module.clone();
    lanes::split_lanes(&mut split);
    let budget = AllocBudget::from_model(model);

    // Replay codegen's PHV layout: NCP header, intrinsics, ext struct.
    let mut layout = PhvLayout::default();
    for (name, ty) in NCP_FIELDS {
        layout.add(*name, *ty, FieldClass::Header);
    }
    layout.add("meta.fwd_code", ScalarType::U8, FieldClass::Metadata);
    layout.add("meta.fwd_label", ScalarType::U16, FieldClass::Metadata);
    for (fname, ty, _) in &split.window_ext.fields {
        layout.add(format!("ext.{fname}"), *ty, FieldClass::Header);
    }
    let mut pool = FieldPool::default();

    let mut kernels = Vec::new();
    let mut max_stages = 0usize;
    let mut sram_by_stage = vec![0usize; model.stages.max(1)];
    // Arrays shared across kernels: micro-ops add up in the one stage
    // the bank fuses into.
    let mut module_accesses: BTreeMap<String, usize> = BTreeMap::new();
    let mut ctrl_sites = 0usize;

    for (kid, kernel) in split.kernels.iter().enumerate() {
        if kernel.kind != KernelKind::Outgoing || !split.placed_here(&kernel.at) {
            continue;
        }
        let win_params: Vec<_> = kernel.params.iter().filter(|p| !p.ext).collect();
        if kernel.mask.len() != win_params.len() {
            return Err(EstimateError {
                kernel: kernel.name.clone(),
                reason: format!(
                    "window mask arity {} does not match {} window parameters",
                    kernel.mask.len(),
                    win_params.len()
                ),
            });
        }

        let hdr_before = layout.header_bytes();
        let meta_before = layout.metadata_bytes();
        for (pi, _) in win_params.iter().enumerate() {
            layout.add(
                format!("k{kid}.c{pi}_off"),
                ScalarType::U32,
                FieldClass::Header,
            );
            layout.add(
                format!("k{kid}.c{pi}_len"),
                ScalarType::U16,
                FieldClass::Header,
            );
        }
        for (pi, p) in win_params.iter().enumerate() {
            for e in 0..kernel.mask[pi] as usize {
                layout.add(format!("k{kid}.p{pi}_e{e}"), p.elem, FieldClass::Header);
            }
        }
        layout.add(
            format!("meta.disp_k{kid}"),
            ScalarType::Bool,
            FieldClass::Metadata,
        );

        let lin = flatten(kernel, None).map_err(|e| EstimateError {
            kernel: kernel.name.clone(),
            reason: e.to_string(),
        })?;
        let staged = allocate(&lin, &budget).map_err(|_| EstimateError {
            kernel: kernel.name.clone(),
            reason: "stage allocation diverged".into(),
        })?;
        assign_fields(&staged, &lin.reg_tys, &mut layout, &mut pool, kid as u16);

        // Per-access SRAM and micro-op accounting, mirroring
        // `PipelineConfig::report`: every register read/write op at
        // pipeline stage `si + 1` (dispatch shift) charges the full
        // array to that physical stage.
        let mut sram = 0usize;
        let mut accesses: BTreeMap<String, usize> = BTreeMap::new();
        let mut touched: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (si, stage) in staged.stages.iter().enumerate() {
            let phys = (si + 1) % model.stages.max(1);
            for p in stage {
                match &p.inst {
                    Inst::LdReg { arr, .. } | Inst::StReg { arr, .. } => {
                        let decl = &split.registers[arr.0 as usize];
                        let bytes = if split.placed_here(&decl.at) {
                            decl.len() * decl.elem.size()
                        } else {
                            0
                        };
                        sram += bytes;
                        sram_by_stage[phys] += bytes;
                        *accesses.entry(decl.name.clone()).or_default() += 1;
                        touched.entry(decl.name.clone()).or_default().push(si);
                    }
                    Inst::LdCtrl { ctrl, .. } => {
                        // Each read site becomes a fresh single-slot
                        // register copy.
                        let decl = &split.ctrls[ctrl.0 as usize];
                        let bytes = decl.ty.size();
                        sram += bytes;
                        sram_by_stage[phys] += bytes;
                        ctrl_sites += 1;
                    }
                    _ => {}
                }
            }
        }

        let mut violations = Vec::new();
        if staged.stages.len() + 1 > model.logical_stages() {
            violations.push(ResourceViolation::TooManyStages {
                required: staged.stages.len() + 1,
                available: model.logical_stages(),
            });
        }
        for (arr, stages) in &touched {
            let mut ds = stages.clone();
            ds.dedup();
            if ds.len() > 1 {
                violations.push(ResourceViolation::RegisterMultiStage {
                    array: arr.clone(),
                    stages: ds,
                });
            }
        }
        for (arr, n) in &accesses {
            *module_accesses.entry(arr.clone()).or_default() += n;
            if *n > model.reg_accesses_per_pass {
                violations.push(ResourceViolation::RegisterAccesses {
                    array: arr.clone(),
                    found: *n,
                    budget: model.reg_accesses_per_pass,
                });
            }
        }

        max_stages = max_stages.max(staged.stages.len());
        kernels.push(KernelEstimate {
            kernel: kernel.name.clone(),
            stages: staged.stages.len(),
            alu_ops: staged.op_count(),
            sram_bytes: sram,
            phv_header_bytes: layout.header_bytes() - hdr_before,
            phv_metadata_bytes: layout.metadata_bytes() - meta_before,
            reg_accesses: accesses,
            violations,
        });
    }
    let _ = ctrl_sites;

    let mut violations = Vec::new();
    let phv_header_bytes = layout.header_bytes();
    let phv_metadata_bytes = layout.metadata_bytes();
    if phv_header_bytes > model.phv_header_bytes {
        violations.push(ResourceViolation::PhvHeader {
            used: phv_header_bytes,
            budget: model.phv_header_bytes,
        });
    }
    if phv_metadata_bytes > model.phv_metadata_bytes {
        violations.push(ResourceViolation::PhvMetadata {
            used: phv_metadata_bytes,
            budget: model.phv_metadata_bytes,
        });
    }
    for (stage, used) in sram_by_stage.iter().enumerate() {
        if *used > model.sram_bytes_per_stage {
            violations.push(ResourceViolation::SramPerStage {
                stage,
                used: *used,
                budget: model.sram_bytes_per_stage,
            });
        }
    }
    // Arrays written from several kernels fuse into one stage; their
    // micro-ops add up even when each kernel alone fits the budget.
    for (arr, n) in &module_accesses {
        if *n > model.reg_accesses_per_pass
            && !kernels.iter().any(|k| {
                k.violations.iter().any(|v| {
                    matches!(v, ResourceViolation::RegisterAccesses { array, .. } if array == arr)
                })
            })
        {
            violations.push(ResourceViolation::RegisterAccesses {
                array: arr.clone(),
                found: *n,
                budget: model.reg_accesses_per_pass,
            });
        }
    }

    Ok(ModuleEstimate {
        pipeline_stages: if kernels.is_empty() {
            0
        } else {
            max_stages + 1
        },
        kernels,
        phv_header_bytes,
        phv_metadata_bytes,
        sram_by_stage,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompileOptions;
    use ncl_ir::lower::{lower, LoweringConfig};

    fn build(src: &str, masks: &[(&str, Vec<u16>)]) -> Module {
        let checked = ncl_lang::frontend(src, "t.ncl").expect("frontend");
        let mut cfg = LoweringConfig::default();
        for (k, m) in masks {
            cfg.masks.insert(k.to_string(), m.clone());
        }
        let mut module = lower(&checked, &cfg).expect("lower");
        ncl_ir::passes::optimize(&mut module);
        module
    }

    const AGG: &str = r#"
_net_ unsigned accum[16] = {0};
_net_ _out_ void agg(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i) {
        accum[i] += data[i];
        data[i] = accum[i];
    }
    _reflect();
}
"#;

    #[test]
    fn estimate_matches_actual_mapping() {
        let module = build(AGG, &[("agg", vec![4])]);
        let model = ResourceModel::default();
        let est = estimate_module(&module, &model).expect("estimate");
        let compiled =
            crate::compile_module(&module, &model, &CompileOptions::default()).expect("compile");

        // Stages: estimator predicts each kernel's staged depth exactly
        // (it runs the same allocator), and the pipeline adds exactly
        // one dispatch stage.
        let k = &est.kernels[0];
        assert_eq!(k.kernel, "agg");
        assert_eq!(est.pipeline_stages, compiled.report.stages_used);

        // PHV: layout replay is byte-exact.
        assert_eq!(est.phv_header_bytes, compiled.report.phv_header_bytes);
        assert_eq!(est.phv_metadata_bytes, compiled.report.phv_metadata_bytes);

        assert!(est.accepted());
        assert!(k.sram_bytes > 0);
        let txt = est.render();
        assert!(txt.contains("agg"), "{txt}");
    }

    #[test]
    fn overrun_reuses_pipeline_violation_type() {
        // A 4-element aggregation cannot fit the tiny chip's budgets.
        let module = build(AGG, &[("agg", vec![8])]);
        let est = estimate_module(&module, &ResourceModel::tiny()).expect("estimate");
        assert!(!est.accepted());
        // Same violation enum the loader produces.
        let vs = est.all_violations();
        assert!(!vs.is_empty());
    }

    /// Three kernels, disjoint state, one pipeline.
    const MULTI: &str = r#"
_net_ unsigned acc_a[16] = {0};
_net_ unsigned acc_b[8] = {0};
_net_ unsigned hits[4] = {0};

_net_ _out_ void ka(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i) {
        acc_a[i] += data[i];
        data[i] = acc_a[i];
    }
    _reflect();
}

_net_ _out_ void kb(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i)
        acc_b[i] += data[i];
    _drop();
}

_net_ _out_ void kc(unsigned *data) {
    hits[0] += data[0];
    _pass();
}
"#;
    const MULTI_MASKS: &[(&str, &[u16])] = &[("ka", &[4]), ("kb", &[4]), ("kc", &[1])];

    fn multi_masks() -> Vec<(&'static str, Vec<u16>)> {
        MULTI_MASKS.iter().map(|(k, m)| (*k, m.to_vec())).collect()
    }

    /// Module totals are exactly the sum of the per-kernel estimates:
    /// PHV totals decompose into the fixed NCP base plus each kernel's
    /// contribution, the per-stage SRAM vector sums to the per-kernel
    /// attributions, and the pipeline depth is one dispatch stage plus
    /// the widest kernel (kernels merge side by side, they do not
    /// stack).
    #[test]
    fn multi_kernel_totals_equal_sum_of_per_kernel_estimates() {
        let module = build(MULTI, &multi_masks());
        let model = ResourceModel::default();
        let est = estimate_module(&module, &model).expect("estimate");
        assert_eq!(est.kernels.len(), 3);

        let ncp_base: usize = NCP_FIELDS.iter().map(|(_, ty)| ty.size()).sum();
        let hdr_sum: usize = est.kernels.iter().map(|k| k.phv_header_bytes).sum();
        assert_eq!(est.phv_header_bytes, ncp_base + hdr_sum);

        // Metadata base: fwd_code (1B) + fwd_label (2B) intrinsics.
        let meta_sum: usize = est.kernels.iter().map(|k| k.phv_metadata_bytes).sum();
        assert_eq!(est.phv_metadata_bytes, 3 + meta_sum);

        // No ctrl variables in MULTI, so every SRAM byte in the
        // per-stage vector is attributed to exactly one kernel.
        let sram_total: usize = est.sram_by_stage.iter().sum();
        let sram_sum: usize = est.kernels.iter().map(|k| k.sram_bytes).sum();
        assert_eq!(sram_total, sram_sum);

        let widest = est.kernels.iter().map(|k| k.stages).max().unwrap();
        assert_eq!(est.pipeline_stages, widest + 1);
        assert!(est.accepted());
    }

    /// Sharing one pipeline does not distort the estimates: each
    /// kernel estimated alone (its own module) agrees with its slice of
    /// the combined estimate within the documented envelope — stages
    /// within ±1 and SRAM within ±10% — and the combined module still
    /// matches the real mapping the way single-kernel modules do.
    #[test]
    fn multi_kernel_estimates_stay_within_envelope() {
        let model = ResourceModel::default();
        let combined =
            estimate_module(&build(MULTI, &multi_masks()), &model).expect("combined estimate");
        let compiled = crate::compile_module(
            &build(MULTI, &multi_masks()),
            &model,
            &CompileOptions::default(),
        )
        .expect("combined compile");

        // Combined estimate vs the real combined mapping.
        assert!(
            combined
                .pipeline_stages
                .abs_diff(compiled.report.stages_used)
                <= 1,
            "stages: estimated {} vs mapped {}",
            combined.pipeline_stages,
            compiled.report.stages_used
        );
        assert_eq!(combined.phv_header_bytes, compiled.report.phv_header_bytes);
        assert_eq!(
            combined.phv_metadata_bytes,
            compiled.report.phv_metadata_bytes
        );

        // Each kernel alone vs its slice of the combined estimate.
        let solo_srcs: &[(&str, &str)] = &[
            (
                "ka",
                r#"
_net_ unsigned acc_a[16] = {0};
_net_ _out_ void ka(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i) {
        acc_a[i] += data[i];
        data[i] = acc_a[i];
    }
    _reflect();
}
"#,
            ),
            (
                "kb",
                r#"
_net_ unsigned acc_b[8] = {0};
_net_ _out_ void kb(unsigned *data) {
    for (unsigned i = 0; i < window.len; ++i)
        acc_b[i] += data[i];
    _drop();
}
"#,
            ),
            (
                "kc",
                r#"
_net_ unsigned hits[4] = {0};
_net_ _out_ void kc(unsigned *data) {
    hits[0] += data[0];
    _pass();
}
"#,
            ),
        ];
        for (name, src) in solo_srcs {
            let mask = MULTI_MASKS
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, m)| m.to_vec())
                .unwrap();
            let solo = estimate_module(&build(src, &[(name, mask)]), &model).expect("solo");
            let solo_k = &solo.kernels[0];
            let comb_k = combined
                .kernels
                .iter()
                .find(|k| k.kernel == *name)
                .expect("kernel in combined estimate");
            assert!(
                solo_k.stages.abs_diff(comb_k.stages) <= 1,
                "{name}: solo {} stages vs combined {}",
                solo_k.stages,
                comb_k.stages
            );
            let (lo, hi) = (
                comb_k.sram_bytes as f64 * 0.9,
                comb_k.sram_bytes as f64 * 1.1,
            );
            assert!(
                (solo_k.sram_bytes as f64) >= lo && (solo_k.sram_bytes as f64) <= hi,
                "{name}: solo SRAM {} vs combined {}",
                solo_k.sram_bytes,
                comb_k.sram_bytes
            );
            assert_eq!(solo_k.alu_ops, comb_k.alu_ops, "{name}: op count drifts");
        }
    }

    #[test]
    fn skips_incoming_and_foreign_kernels() {
        let src = r#"
_net_ _at_("s1") unsigned seen[4] = {0};
_net_ _out_ _at_("s1") void touch(unsigned *data) {
    seen[0] += data[0];
    _pass();
}
"#;
        let mut module = build(src, &[("touch", vec![1])]);
        // Version for a different switch: kernel no longer placed here.
        let versioned = ncl_ir::version_modules(
            &module,
            &[ncl_ir::version::LocationInfo {
                label: c3::Label::new("s2"),
                id: 7,
            }],
        );
        let est = estimate_module(&versioned[0], &ResourceModel::default()).expect("estimate");
        assert!(est.kernels.is_empty());
        assert_eq!(est.pipeline_stages, 0);
        // The generic module (no location) estimates the kernel.
        module.location = None;
        let est = estimate_module(&module, &ResourceModel::default()).expect("estimate");
        assert_eq!(est.kernels.len(), 1);
    }
}
