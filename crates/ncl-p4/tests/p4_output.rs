//! Tests of the emitted P4-16 text: structural properties every
//! generated program must hold, rendered-op coverage for each primitive,
//! and stability (same input → same output).

use ncl_ir::lower::{lower, LoweringConfig};
use ncl_p4::{compile_module, CompileOptions};
use pisa::ResourceModel;

fn emit(src: &str, kernel: &str, mask: Vec<u16>) -> String {
    let checked = ncl_lang::frontend(src, "t.ncl").expect("frontend");
    let mut module = lower(&checked, &LoweringConfig::with_mask(kernel, mask)).expect("lower");
    ncl_ir::passes::optimize(&mut module);
    compile_module(
        &module,
        &ResourceModel::default(),
        &CompileOptions::default(),
    )
    .expect("compiles")
    .p4_source
}

/// Every generated program carries the full template plumbing.
#[test]
fn structural_invariants() {
    let p4 = emit("_net_ _out_ void k(int *d) { d[0] += 1; }", "k", vec![1]);
    for needle in [
        "#include <core.p4>",
        "#include <v1model.p4>",
        "header ethernet_t",
        "header ipv4_t",
        "header udp_t",
        "header ncp_t",
        "struct metadata_t",
        "parser NclParser",
        "state parse_ncp",
        "control NclIngress",
        "table ipv4_lpm",
        "control NclDeparser",
        "V1Switch",
    ] {
        assert!(p4.contains(needle), "missing '{needle}'");
    }
    // Balanced braces (cheap syntactic sanity).
    let open = p4.matches('{').count();
    let close = p4.matches('}').count();
    assert_eq!(open, close, "unbalanced braces");
}

/// Each primitive class renders.
#[test]
fn op_rendering_coverage() {
    let src = r#"
_wnd_ struct W { uint16_t tag; };
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 8> Idx;
_net_ _at_("s1") unsigned ctr[4] = {0};
_net_ _out_ void k(uint64_t key, int *d) {
    unsigned x = (unsigned)d[0];            // Cast
    x = x + 3;                              // Alu
    d[1] = d[0] > 0 ? d[0] : d[1];          // Select
    window.tag = window.tag + 1;            // ext field
    ctr[window.seq] += x;                   // RegRead/RegWrite
    if (auto *i = Idx[key]) {               // map table
        if (!(d[0] > 5)) { _reflect(); }    // UnAlu(Not) + Fwd
    }
}
"#;
    let p4 = emit(src, "k", vec![1, 2]);
    assert!(p4.contains(".read("), "RegRead rendering");
    assert!(p4.contains(".write("), "RegWrite rendering");
    assert!(p4.contains("table Idx__"), "map table");
    assert!(p4.contains("exact;"), "exact key");
    assert!(p4.contains("hdr.wext.tag"), "ext field reference");
    assert!(p4.contains("? (bit<8>)1 : 0"), "comparison rendering");
    assert!(p4.contains("if (meta."), "guard rendering");
    assert!(p4.contains("size = 8;"), "map capacity");
}

/// Emission is deterministic.
#[test]
fn emission_is_stable() {
    let src = r#"
_net_ _at_("s1") int acc[8] = {0};
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < window.len; ++i) acc[i] += d[i];
}
"#;
    let a = emit(src, "k", vec![4]);
    let b = emit(src, "k", vec![4]);
    assert_eq!(a, b);
}

/// Lane decisions are documented in the emitted source.
#[test]
fn lane_decisions_in_header_comment() {
    let src = r#"
_net_ _at_("s1") int acc[16] = {0};
_net_ _out_ void k(int *d) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i) acc[base + i] += d[i];
}
"#;
    let p4 = emit(src, "k", vec![4]);
    assert!(p4.contains("lane split: acc"), "{p4}");
    assert!(p4.contains("acc__l0") && p4.contains("acc__l3"));
}

/// Two kernels yield two parser branches and disjoint window headers.
#[test]
fn multi_kernel_parser_branches() {
    let src = "_net_ _out_ void ka(int *d) { d[0] += 1; }\n\
               _net_ _out_ void kb(uint64_t *d) { d[0] += 2; }";
    let checked = ncl_lang::frontend(src, "t.ncl").unwrap();
    let mut cfg = LoweringConfig::default();
    cfg.masks.insert("ka".into(), vec![2]);
    cfg.masks.insert("kb".into(), vec![1]);
    let mut module = lower(&checked, &cfg).unwrap();
    ncl_ir::passes::optimize(&mut module);
    let compiled = compile_module(
        &module,
        &ResourceModel::default(),
        &CompileOptions::default(),
    )
    .unwrap();
    let p4 = &compiled.p4_source;
    let ka = compiled.kernel_ids["ka"];
    let kb = compiled.kernel_ids["kb"];
    assert!(p4.contains(&format!("{ka}: parse_win_k{ka}")));
    assert!(p4.contains(&format!("{kb}: parse_win_k{kb}")));
    assert!(p4.contains(&format!("header win_k{ka}_t")));
    assert!(p4.contains(&format!("header win_k{kb}_t")));
    // ka's window: 2 × bit<32> elements; kb's: 1 × bit<64>.
    assert!(p4.contains("bit<64> p0_e0"));
}
