//! Property tests for the C scalar semantics of [`c3::Value`] — the
//! arithmetic every layer of the system (interpreter, pipeline ALUs)
//! computes with. The reference model is `i128` arithmetic followed by
//! truncation to the type's width.

use c3::{BinOp, ScalarType, UnOp, Value};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = ScalarType> {
    prop::sample::select(ScalarType::ALL.to_vec())
}

/// Truncates an `i128` to `ty`'s width, reinterpreting as the type's
/// signedness — the C conversion model.
fn model_truncate(ty: ScalarType, wide: i128) -> i128 {
    if ty == ScalarType::Bool {
        return (wide != 0) as i128;
    }
    let bits = ty.bits();
    let masked = (wide as u128) & (ty.mask() as u128);
    if ty.is_signed() {
        let shift = 128 - bits;
        ((masked as i128) << shift) >> shift
    } else {
        masked as i128
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Construction masks to width and round-trips through `as_i128`.
    #[test]
    fn construction_matches_model(ty in arb_type(), bits in any::<u64>()) {
        let v = Value::new(ty, bits);
        prop_assert_eq!(v.as_i128(), model_truncate(ty, bits as i128));
        // Reconstructing from the observed value is the identity.
        prop_assert_eq!(Value::new(ty, v.bits()), v);
    }

    /// Wrapping add/sub/mul match the i128 model.
    #[test]
    fn ring_ops_match_model(ty in arb_type(), a in any::<u64>(), b in any::<u64>()) {
        let x = Value::new(ty, a);
        let y = Value::new(ty, b);
        for (op, f) in [
            (BinOp::Add, (|p: i128, q: i128| p.wrapping_add(q)) as fn(i128, i128) -> i128),
            (BinOp::Sub, |p, q| p.wrapping_sub(q)),
            (BinOp::Mul, |p, q| p.wrapping_mul(q)),
        ] {
            let got = Value::binop(op, x, y).as_i128();
            let want = model_truncate(ty, f(x.as_i128(), y.as_i128()));
            prop_assert_eq!(got, want, "{:?} on {:?}, {:?}", op, x, y);
        }
    }

    /// Bitwise ops match the model.
    #[test]
    fn bit_ops_match_model(ty in arb_type(), a in any::<u64>(), b in any::<u64>()) {
        let x = Value::new(ty, a);
        let y = Value::new(ty, b);
        prop_assert_eq!(
            Value::binop(BinOp::And, x, y).bits(),
            x.bits() & y.bits()
        );
        prop_assert_eq!(Value::binop(BinOp::Or, x, y).bits(), x.bits() | y.bits());
        prop_assert_eq!(
            Value::binop(BinOp::Xor, x, y).bits(),
            x.bits() ^ y.bits()
        );
        // Bool normalizes any nonzero result to 1, so its complement
        // is logical rather than bitwise.
        let want_not = if ty == ScalarType::Bool {
            (x.bits() == 0) as u64
        } else {
            !x.bits() & ty.mask()
        };
        prop_assert_eq!(Value::unop(UnOp::BitNot, x).bits(), want_not);
    }

    /// Comparisons agree with the signed model.
    #[test]
    fn comparisons_match_model(ty in arb_type(), a in any::<u64>(), b in any::<u64>()) {
        let x = Value::new(ty, a);
        let y = Value::new(ty, b);
        let (mx, my) = (x.as_i128(), y.as_i128());
        prop_assert_eq!(Value::binop(BinOp::Lt, x, y).is_truthy(), mx < my);
        prop_assert_eq!(Value::binop(BinOp::Le, x, y).is_truthy(), mx <= my);
        prop_assert_eq!(Value::binop(BinOp::Gt, x, y).is_truthy(), mx > my);
        prop_assert_eq!(Value::binop(BinOp::Ge, x, y).is_truthy(), mx >= my);
        prop_assert_eq!(Value::binop(BinOp::Eq, x, y).is_truthy(), mx == my);
        prop_assert_eq!(Value::binop(BinOp::Ne, x, y).is_truthy(), mx != my);
    }

    /// Division semantics: C truncation toward zero; ÷0 = 0 (the
    /// documented hardware-flavoured convention).
    #[test]
    fn div_rem_match_model(ty in arb_type(), a in any::<u64>(), b in any::<u64>()) {
        let x = Value::new(ty, a);
        let y = Value::new(ty, b);
        let (mx, my) = (x.as_i128(), y.as_i128());
        let want_div = if my == 0 { 0 } else { model_truncate(ty, mx.wrapping_div(my)) };
        let want_rem = if my == 0 { 0 } else { model_truncate(ty, mx.wrapping_rem(my)) };
        prop_assert_eq!(Value::binop(BinOp::Div, x, y).as_i128(), want_div);
        prop_assert_eq!(Value::binop(BinOp::Rem, x, y).as_i128(), want_rem);
    }

    /// Shifts take the amount modulo the width; right shift is
    /// arithmetic for signed types.
    #[test]
    fn shifts_match_model(ty in arb_type(), a in any::<u64>(), sh in any::<u64>()) {
        let x = Value::new(ty, a);
        let s = Value::new(ty, sh);
        let eff = (s.bits() % ty.bits() as u64) as u32;
        prop_assert_eq!(
            Value::binop(BinOp::Shl, x, s).as_i128(),
            model_truncate(ty, x.as_i128().wrapping_shl(eff))
        );
        let want_shr = if ty.is_signed() {
            model_truncate(ty, x.as_i128() >> eff)
        } else {
            model_truncate(ty, ((x.bits() >> eff) as u128) as i128)
        };
        prop_assert_eq!(Value::binop(BinOp::Shr, x, s).as_i128(), want_shr);
    }

    /// Casting is the C conversion: sign-extend then truncate.
    #[test]
    fn casts_match_model(from in arb_type(), to in arb_type(), a in any::<u64>()) {
        let x = Value::new(from, a);
        prop_assert_eq!(x.cast(to).as_i128(), model_truncate(to, x.as_i128()));
        // Casting to the same type is the identity.
        prop_assert_eq!(x.cast(from), x);
    }

    /// Big-endian serialization round-trips for every type.
    #[test]
    fn be_roundtrip(ty in arb_type(), a in any::<u64>()) {
        let v = Value::new(ty, a);
        let mut buf = vec![0u8; ty.size()];
        v.write_be(&mut buf);
        prop_assert_eq!(Value::read_be(ty, &buf), v);
    }

    /// Negation is subtraction from zero.
    #[test]
    fn neg_is_zero_minus(ty in arb_type(), a in any::<u64>()) {
        let x = Value::new(ty, a);
        prop_assert_eq!(
            Value::unop(UnOp::Neg, x),
            Value::binop(BinOp::Sub, Value::zero(ty), x)
        );
    }
}

/// Replays this crate's section of the shared regression corpus
/// (tests/corpus/shared.proptest-regressions at the workspace root).
/// The recorded shrunk case — `ty = Bool, a = 0, b = 0` — once caught
/// Bool failing to renormalize ring-op results to {0, 1}; it must keep
/// matching the i128 truncation model for every binary op.
#[test]
fn corpus_bool_zero_case_matches_model() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus/shared.proptest-regressions");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("shared corpus at {}: {e}", path.display()));
    // Pruning the entry without removing this replay (or vice versa)
    // is a corpus-policy violation; see the file's header.
    assert!(
        text.contains("cc f57e8283ba1f091768638c1709484286549f4d91fd832533bece87ece07a6766"),
        "corpus entry for ring_ops_match_model was pruned"
    );
    let ty = ScalarType::Bool;
    let x = Value::new(ty, 0);
    let y = Value::new(ty, 0);
    assert_eq!(x.as_i128(), model_truncate(ty, 0));
    assert_eq!(Value::new(ty, x.bits()), x);
    for (op, f) in [
        (
            BinOp::Add,
            (|p: i128, q: i128| p.wrapping_add(q)) as fn(i128, i128) -> i128,
        ),
        (BinOp::Sub, |p, q| p.wrapping_sub(q)),
        (BinOp::Mul, |p, q| p.wrapping_mul(q)),
    ] {
        assert_eq!(
            Value::binop(op, x, y).as_i128(),
            model_truncate(ty, f(x.as_i128(), y.as_i128())),
            "{op:?} on Bool zeros"
        );
    }
    for op in [BinOp::And, BinOp::Or, BinOp::Xor] {
        assert_eq!(Value::binop(op, x, y).bits(), 0, "{op:?} on Bool zeros");
    }
    // Bool complement is logical: !0 = 1.
    assert_eq!(Value::unop(UnOp::BitNot, x).bits(), 1);
}
