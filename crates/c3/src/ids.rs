//! Identifiers for the entities of a C3 deployment.
//!
//! Hosts and switches get small numeric ids that fit in NCP header fields;
//! AND location labels are owned strings with cheap cloning via `Arc`.

use std::fmt;
use std::sync::Arc;

/// Identifies an end host participating in a C3 application.
///
/// Host ids appear on the wire in the NCP `sender` field, so they are
/// deliberately 16 bits wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u16);

/// Identifies a programmable switch in the physical topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u16);

/// A node in the network: either a host or a switch.
///
/// NCP's `from` header field carries the previous *logical* hop of a
/// window, which may be either kind of node. We encode hosts and switches
/// into disjoint 16-bit ranges so a `NodeId` round-trips through the wire
/// format: hosts occupy `0..0x8000`, switches `0x8000..0xFFFF`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// An end host.
    Host(HostId),
    /// A programmable switch.
    Switch(SwitchId),
}

impl NodeId {
    /// The bit that distinguishes switches from hosts in the wire encoding.
    pub const SWITCH_BIT: u16 = 0x8000;

    /// Encodes this node id into the 16-bit on-wire representation.
    pub fn to_wire(self) -> u16 {
        match self {
            NodeId::Host(HostId(h)) => {
                debug_assert!(h < Self::SWITCH_BIT, "host id out of range");
                h
            }
            NodeId::Switch(SwitchId(s)) => {
                debug_assert!(s < Self::SWITCH_BIT, "switch id out of range");
                s | Self::SWITCH_BIT
            }
        }
    }

    /// Decodes a node id from its 16-bit on-wire representation.
    pub fn from_wire(raw: u16) -> Self {
        if raw & Self::SWITCH_BIT != 0 {
            NodeId::Switch(SwitchId(raw & !Self::SWITCH_BIT))
        } else {
            NodeId::Host(HostId(raw))
        }
    }

    /// Returns the host id if this node is a host.
    pub fn as_host(self) -> Option<HostId> {
        match self {
            NodeId::Host(h) => Some(h),
            NodeId::Switch(_) => None,
        }
    }

    /// Returns the switch id if this node is a switch.
    pub fn as_switch(self) -> Option<SwitchId> {
        match self {
            NodeId::Switch(s) => Some(s),
            NodeId::Host(_) => None,
        }
    }
}

impl From<HostId> for NodeId {
    fn from(h: HostId) -> Self {
        NodeId::Host(h)
    }
}

impl From<SwitchId> for NodeId {
    fn from(s: SwitchId) -> Self {
        NodeId::Switch(s)
    }
}

/// Identifies a compiled network kernel. Appears in the NCP header so a
/// switch or host knows which kernel to execute for an arriving window.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u16);

/// A port of a node in the physical topology (used by the network
/// simulator and by switch forwarding tables).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

/// An AND (Abstract Network Description) location label, e.g. `"s1"` in
/// `_net_ _at_("s1")`. Cheap to clone; compared by string content.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Label(Arc::from(s.as_ref()))
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(s)
    }
}

impl std::ops::Deref for Label {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", &*self.0)
    }
}

macro_rules! display_id {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

display_id!(HostId, "h");
display_id!(SwitchId, "s");
display_id!(KernelId, "k");
display_id!(PortId, "p");

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => write!(f, "{h}"),
            NodeId::Switch(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_wire_roundtrip_host() {
        let n = NodeId::Host(HostId(42));
        assert_eq!(NodeId::from_wire(n.to_wire()), n);
    }

    #[test]
    fn node_id_wire_roundtrip_switch() {
        let n = NodeId::Switch(SwitchId(7));
        assert_eq!(NodeId::from_wire(n.to_wire()), n);
        assert_eq!(n.to_wire(), 0x8007);
    }

    #[test]
    fn node_id_accessors() {
        assert_eq!(NodeId::Host(HostId(1)).as_host(), Some(HostId(1)));
        assert_eq!(NodeId::Host(HostId(1)).as_switch(), None);
        assert_eq!(NodeId::Switch(SwitchId(2)).as_switch(), Some(SwitchId(2)));
        assert_eq!(NodeId::Switch(SwitchId(2)).as_host(), None);
    }

    #[test]
    fn labels_compare_by_content() {
        assert_eq!(Label::new("s1"), Label::from("s1"));
        assert_ne!(Label::new("s1"), Label::new("s2"));
        assert_eq!(Label::new("tor").as_str(), "tor");
    }

    #[test]
    fn display_forms() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(SwitchId(1).to_string(), "s1");
        assert_eq!(KernelId(9).to_string(), "k9");
        assert_eq!(NodeId::Switch(SwitchId(1)).to_string(), "s1");
    }
}
