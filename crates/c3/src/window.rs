//! The window abstraction — C3's basic unit of processing.
//!
//! Windows hide packet-based communication from the programmer (paper
//! §4.2): arrays are transported one window at a time, and a one-to-one
//! correspondence with packets is *not* required. A window associates a
//! user-controlled number of elements from each array of a kernel
//! invocation — the association is described by a [`Mask`], e.g. `{2,2,2}`
//! in the paper's Fig. 2.
//!
//! A [`Window`] owns one mutable byte [`Chunk`] per array (kernels may
//! rewrite window data in flight), plus the metadata carried by the
//! builtin `window` struct (`seq`, `sender`, `from`) and the bytes of the
//! programmer's extended window struct.

use crate::ids::{HostId, KernelId, NodeId};
use crate::value::{ScalarType, Value};
use std::fmt;

/// Errors produced when constructing or slicing windows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WindowError {
    /// The mask has a different number of entries than the kernel has
    /// array parameters ("its length must always match the number of
    /// pointers in an `_out_` kernel's signature").
    MaskArity {
        /// Entries in the mask.
        mask: usize,
        /// Array parameters of the kernel.
        arrays: usize,
    },
    /// A mask entry is zero — a window must take at least one element
    /// from every array it associates.
    ZeroMaskEntry {
        /// Index of the offending entry.
        index: usize,
    },
    /// An array's byte length is not a multiple of its element size.
    Ragged {
        /// Index of the array.
        array: usize,
        /// Byte length observed.
        len: usize,
        /// Element size expected.
        elem: usize,
    },
    /// Arrays do not divide into the same number of windows. C3 sends all
    /// arrays of an invocation simultaneously, so the mask must tile every
    /// array the same number of times.
    WindowCountMismatch {
        /// Windows required by array 0.
        expected: usize,
        /// Windows required by the offending array.
        got: usize,
        /// Index of the offending array.
        array: usize,
    },
    /// A chunk in a received window does not have the length the mask and
    /// element type imply.
    BadChunkLen {
        /// Index of the chunk.
        array: usize,
        /// Bytes expected.
        expected: usize,
        /// Bytes received.
        got: usize,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::MaskArity { mask, arrays } => write!(
                f,
                "mask has {mask} entries but the kernel takes {arrays} arrays"
            ),
            WindowError::ZeroMaskEntry { index } => {
                write!(f, "mask entry {index} is zero")
            }
            WindowError::Ragged { array, len, elem } => write!(
                f,
                "array {array} has {len} bytes, not a multiple of element size {elem}"
            ),
            WindowError::WindowCountMismatch {
                expected,
                got,
                array,
            } => write!(
                f,
                "array {array} splits into {got} windows but array 0 splits into {expected}"
            ),
            WindowError::BadChunkLen {
                array,
                expected,
                got,
            } => write!(f, "chunk {array} carries {got} bytes, expected {expected}"),
        }
    }
}

impl std::error::Error for WindowError {}

/// A window mask: how many *elements* of each array go into one window.
///
/// `Mask::new([2, 2, 2])` is the `{2,2,2}` mask of the paper's Fig. 2.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mask(Vec<u16>);

impl Mask {
    /// Creates a mask from per-array element counts.
    pub fn new(counts: impl Into<Vec<u16>>) -> Self {
        Mask(counts.into())
    }

    /// A uniform mask: the same element count for every one of `arrays`
    /// arrays (the "split evenly" case).
    pub fn uniform(arrays: usize, elems: u16) -> Self {
        Mask(vec![elems; arrays])
    }

    /// Number of arrays the mask associates.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Elements taken from array `i` per window.
    pub fn elems(&self, i: usize) -> u16 {
        self.0[i]
    }

    /// The per-array counts.
    pub fn counts(&self) -> &[u16] {
        &self.0
    }

    /// Validates the mask against a kernel signature.
    pub fn validate(&self, arrays: usize) -> Result<(), WindowError> {
        if self.arity() != arrays {
            return Err(WindowError::MaskArity {
                mask: self.arity(),
                arrays,
            });
        }
        for (i, &c) in self.0.iter().enumerate() {
            if c == 0 {
                return Err(WindowError::ZeroMaskEntry { index: i });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Describes how a kernel invocation's arrays split into windows:
/// the element type of each array plus the [`Mask`].
///
/// This is the "window specification provided by the programmer" that
/// libncrt uses to construct windows transparently (paper §3.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WindowSpec {
    /// Element type of each array parameter, in signature order.
    pub elem_types: Vec<ScalarType>,
    /// Elements of each array per window.
    pub mask: Mask,
}

impl WindowSpec {
    /// Creates a spec, validating mask arity against the element types.
    pub fn new(elem_types: Vec<ScalarType>, mask: Mask) -> Result<Self, WindowError> {
        mask.validate(elem_types.len())?;
        Ok(WindowSpec { elem_types, mask })
    }

    /// Bytes of array `i` consumed per window.
    pub fn chunk_bytes(&self, i: usize) -> usize {
        self.elem_types[i].size() * self.mask.elems(i) as usize
    }

    /// Total payload bytes per window across all arrays.
    pub fn window_bytes(&self) -> usize {
        (0..self.elem_types.len())
            .map(|i| self.chunk_bytes(i))
            .sum()
    }

    /// Splits `arrays` (one byte slice per array, elements in big-endian
    /// wire order) into windows. Returns the windows in sequence order;
    /// metadata fields other than `seq` are left for the runtime to fill.
    pub fn split(&self, arrays: &[&[u8]]) -> Result<Vec<Window>, WindowError> {
        if arrays.len() != self.elem_types.len() {
            return Err(WindowError::MaskArity {
                mask: self.mask.arity(),
                arrays: arrays.len(),
            });
        }
        let mut nwindows = None;
        for (i, a) in arrays.iter().enumerate() {
            let elem = self.elem_types[i].size();
            if a.len() % elem != 0 {
                return Err(WindowError::Ragged {
                    array: i,
                    len: a.len(),
                    elem,
                });
            }
            let chunk = self.chunk_bytes(i);
            let n = a.len().div_ceil(chunk);
            match nwindows {
                None => nwindows = Some(n),
                Some(expected) if expected != n => {
                    return Err(WindowError::WindowCountMismatch {
                        expected,
                        got: n,
                        array: i,
                    })
                }
                _ => {}
            }
        }
        let nwindows = nwindows.unwrap_or(0);
        let mut out = Vec::with_capacity(nwindows);
        for w in 0..nwindows {
            let mut chunks = Vec::with_capacity(arrays.len());
            for (i, a) in arrays.iter().enumerate() {
                let chunk = self.chunk_bytes(i);
                let start = w * chunk;
                let end = (start + chunk).min(a.len());
                chunks.push(Chunk {
                    offset: start as u32,
                    data: a[start..end].to_vec(),
                });
            }
            out.push(Window {
                kernel: KernelId(0),
                seq: w as u32,
                sender: HostId(0),
                from: NodeId::Host(HostId(0)),
                last: w + 1 == nwindows,
                chunks,
                ext: Vec::new(),
            });
        }
        Ok(out)
    }

    /// Reassembles windows into full arrays (the inverse of
    /// [`WindowSpec::split`]). Windows may arrive in any order; chunk
    /// offsets place the data. `lens` gives each output array's byte
    /// length.
    pub fn reassemble(
        &self,
        windows: &[Window],
        lens: &[usize],
    ) -> Result<Vec<Vec<u8>>, WindowError> {
        let mut arrays: Vec<Vec<u8>> = lens.iter().map(|&l| vec![0; l]).collect();
        for w in windows {
            if w.chunks.len() != self.elem_types.len() {
                return Err(WindowError::MaskArity {
                    mask: self.mask.arity(),
                    arrays: w.chunks.len(),
                });
            }
            for (i, ch) in w.chunks.iter().enumerate() {
                let start = ch.offset as usize;
                let end = start + ch.data.len();
                let arr = &mut arrays[i];
                if end > arr.len() {
                    return Err(WindowError::BadChunkLen {
                        array: i,
                        expected: arr.len().saturating_sub(start),
                        got: ch.data.len(),
                    });
                }
                arr[start..end].copy_from_slice(&ch.data);
            }
        }
        Ok(arrays)
    }
}

/// One array's share of a window: a byte offset into the source array and
/// the (mutable) element bytes, big-endian per element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// Byte offset of this chunk within its source array.
    pub offset: u32,
    /// The chunk payload.
    pub data: Vec<u8>,
}

impl Chunk {
    /// Number of elements of type `ty` in this chunk.
    pub fn elems(&self, ty: ScalarType) -> usize {
        self.data.len() / ty.size()
    }

    /// Reads element `i` as a value of type `ty`.
    pub fn get(&self, ty: ScalarType, i: usize) -> Value {
        let s = ty.size();
        Value::read_be(ty, &self.data[i * s..(i + 1) * s])
    }

    /// Overwrites element `i` with `v` (cast to `ty` first by the caller).
    pub fn set(&mut self, ty: ScalarType, i: usize, v: Value) {
        let s = ty.size();
        v.write_be(&mut self.data[i * s..(i + 1) * s]);
    }
}

/// A data window in flight: the unit a network kernel processes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Window {
    /// The kernel that processes this window.
    pub kernel: KernelId,
    /// Sequence number within the invocation (builtin `window.seq`).
    pub seq: u32,
    /// The invoking host (builtin `window.sender`).
    pub sender: HostId,
    /// Previous logical hop (builtin `window.from`); rewritten at each
    /// NCP-aware device.
    pub from: NodeId,
    /// Whether this is the final window of the invocation.
    pub last: bool,
    /// One chunk per array parameter, in kernel-signature order.
    pub chunks: Vec<Chunk>,
    /// Bytes of the programmer's extended window struct (paper §4.2),
    /// packed in field order.
    pub ext: Vec<u8>,
}

impl Window {
    /// Total payload bytes across chunks.
    pub fn payload_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.data.len()).sum()
    }

    /// Reads a field of the extended window struct. `offset` is the byte
    /// offset of the field within the ext block. Returns zero when the
    /// ext block is absent or too short — mirroring a switch reading an
    /// unset PHV field.
    pub fn ext_read(&self, ty: ScalarType, offset: usize) -> Value {
        let end = offset + ty.size();
        if end > self.ext.len() {
            return Value::zero(ty);
        }
        Value::read_be(ty, &self.ext[offset..end])
    }

    /// Writes a field of the extended window struct, growing the ext
    /// block if needed.
    pub fn ext_write(&mut self, offset: usize, v: Value) {
        let end = offset + v.ty().size();
        if end > self.ext.len() {
            self.ext.resize(end, 0);
        }
        v.write_be(&mut self.ext[offset..end]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn be_u32s(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_be_bytes()).collect()
    }

    #[test]
    fn mask_validate() {
        assert!(Mask::new([2, 2]).validate(2).is_ok());
        assert_eq!(
            Mask::new([2]).validate(2),
            Err(WindowError::MaskArity { mask: 1, arrays: 2 })
        );
        assert_eq!(
            Mask::new([2, 0]).validate(2),
            Err(WindowError::ZeroMaskEntry { index: 1 })
        );
    }

    #[test]
    fn mask_display() {
        assert_eq!(Mask::new([2, 2, 2]).to_string(), "{2,2,2}");
        assert_eq!(Mask::uniform(2, 4), Mask::new([4, 4]));
    }

    #[test]
    fn split_uniform_two_arrays() {
        // Fig. 2: two arrays split evenly in windows of length two.
        let spec =
            WindowSpec::new(vec![ScalarType::U32, ScalarType::U32], Mask::new([2, 2])).unwrap();
        let h0 = be_u32s(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let h1 = be_u32s(&[10, 11, 12, 13, 14, 15, 16, 17]);
        let ws = spec.split(&[&h0, &h1]).unwrap();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].chunks[0].get(ScalarType::U32, 0), Value::u32(0));
        assert_eq!(ws[1].chunks[1].get(ScalarType::U32, 1), Value::u32(13));
        assert_eq!(ws[3].seq, 3);
        assert!(ws[3].last);
        assert!(!ws[0].last);
        assert_eq!(ws[2].chunks[0].offset, 16);
    }

    #[test]
    fn split_tail_window_may_be_short() {
        let spec = WindowSpec::new(vec![ScalarType::U32], Mask::new([4])).unwrap();
        let a = be_u32s(&[1, 2, 3, 4, 5, 6]);
        let ws = spec.split(&[&a]).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[1].chunks[0].data.len(), 8); // two trailing elements
    }

    #[test]
    fn split_rejects_ragged_arrays() {
        let spec = WindowSpec::new(vec![ScalarType::U32], Mask::new([2])).unwrap();
        let bad = [0u8; 7];
        assert!(matches!(
            spec.split(&[&bad]),
            Err(WindowError::Ragged { array: 0, .. })
        ));
    }

    #[test]
    fn split_rejects_mismatched_window_counts() {
        let spec =
            WindowSpec::new(vec![ScalarType::U32, ScalarType::U32], Mask::new([2, 2])).unwrap();
        let a = be_u32s(&[1, 2, 3, 4]);
        let b = be_u32s(&[1, 2]);
        assert!(matches!(
            spec.split(&[&a, &b]),
            Err(WindowError::WindowCountMismatch { .. })
        ));
    }

    #[test]
    fn split_then_reassemble_is_identity() {
        let spec =
            WindowSpec::new(vec![ScalarType::U32, ScalarType::U16], Mask::new([2, 3])).unwrap();
        let a = be_u32s(&[9, 8, 7, 6, 5, 4]);
        let b: Vec<u8> = (0u16..9).flat_map(|v| v.to_be_bytes()).collect();
        let ws = spec.split(&[&a, &b]).unwrap();
        let back = spec.reassemble(&ws, &[a.len(), b.len()]).unwrap();
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
    }

    #[test]
    fn reassemble_out_of_order() {
        let spec = WindowSpec::new(vec![ScalarType::U32], Mask::new([1])).unwrap();
        let a = be_u32s(&[1, 2, 3]);
        let mut ws = spec.split(&[&a]).unwrap();
        ws.reverse();
        let back = spec.reassemble(&ws, &[a.len()]).unwrap();
        assert_eq!(back[0], a);
    }

    #[test]
    fn reassemble_rejects_overflow_chunk() {
        let spec = WindowSpec::new(vec![ScalarType::U32], Mask::new([1])).unwrap();
        let w = Window {
            kernel: KernelId(0),
            seq: 0,
            sender: HostId(0),
            from: NodeId::Host(HostId(0)),
            last: true,
            chunks: vec![Chunk {
                offset: 2,
                data: vec![0; 4],
            }],
            ext: vec![],
        };
        assert!(matches!(
            spec.reassemble(&[w], &[4]),
            Err(WindowError::BadChunkLen { .. })
        ));
    }

    #[test]
    fn chunk_element_access() {
        let mut c = Chunk {
            offset: 0,
            data: be_u32s(&[5, 6]),
        };
        assert_eq!(c.elems(ScalarType::U32), 2);
        c.set(ScalarType::U32, 1, Value::u32(99));
        assert_eq!(c.get(ScalarType::U32, 1), Value::u32(99));
        assert_eq!(c.get(ScalarType::U32, 0), Value::u32(5));
    }

    #[test]
    fn ext_read_write() {
        let mut w = Window {
            kernel: KernelId(1),
            seq: 0,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![],
            ext: vec![],
        };
        // Reading an unset ext field yields zero, like an unset PHV field.
        assert_eq!(w.ext_read(ScalarType::U16, 0), Value::zero(ScalarType::U16));
        w.ext_write(2, Value::new(ScalarType::U16, 0xBEEF));
        assert_eq!(w.ext.len(), 4);
        assert_eq!(
            w.ext_read(ScalarType::U16, 2),
            Value::new(ScalarType::U16, 0xBEEF)
        );
    }

    #[test]
    fn window_bytes_accounting() {
        let spec =
            WindowSpec::new(vec![ScalarType::U32, ScalarType::U8], Mask::new([2, 4])).unwrap();
        assert_eq!(spec.chunk_bytes(0), 8);
        assert_eq!(spec.chunk_bytes(1), 4);
        assert_eq!(spec.window_bytes(), 12);
    }
}
