//! Forwarding decisions an outgoing kernel can take for a window.
//!
//! Paper §4.1: *"outgoing kernels can make simple forwarding decisions for
//! a window. They can return the window to the previous hop (`_reflect()`),
//! pass it on (`_pass()`, default behavior), broadcast it (`_bcast()`), or
//! drop it (`_drop()`). Their behavior depends on the AND file."*

use crate::ids::Label;
use std::fmt;

/// The forwarding decision attached to a window after kernel execution.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Forward {
    /// `_pass()` — continue towards the window's destination. The default
    /// when a kernel returns without an explicit decision.
    #[default]
    Pass,
    /// `_pass("label")` — forward towards the AND node with this label.
    PassTo(Label),
    /// `_reflect()` — return the window to the previous hop.
    Reflect,
    /// `_bcast()` — send the window to all overlay neighbours one hop
    /// away from the current location.
    Bcast,
    /// `_drop()` — consume the window.
    Drop,
}

impl Forward {
    /// Whether the window survives (i.e. leaves the device again).
    pub fn is_emitting(&self) -> bool {
        !matches!(self, Forward::Drop)
    }

    /// Compact numeric encoding used inside PHV metadata and PHV-level
    /// tests. `PassTo` targets are resolved to port numbers before this
    /// encoding is used, so it covers only the four primitive decisions.
    pub fn code(&self) -> u8 {
        match self {
            Forward::Pass => 0,
            Forward::Reflect => 1,
            Forward::Bcast => 2,
            Forward::Drop => 3,
            Forward::PassTo(_) => 4,
        }
    }
}

impl fmt::Display for Forward {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Forward::Pass => write!(f, "_pass()"),
            Forward::PassTo(l) => write!(f, "_pass(\"{l}\")"),
            Forward::Reflect => write!(f, "_reflect()"),
            Forward::Bcast => write!(f, "_bcast()"),
            Forward::Drop => write!(f, "_drop()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pass() {
        assert_eq!(Forward::default(), Forward::Pass);
    }

    #[test]
    fn emitting() {
        assert!(Forward::Pass.is_emitting());
        assert!(Forward::Reflect.is_emitting());
        assert!(Forward::Bcast.is_emitting());
        assert!(Forward::PassTo(Label::new("s1")).is_emitting());
        assert!(!Forward::Drop.is_emitting());
    }

    #[test]
    fn display() {
        assert_eq!(Forward::Pass.to_string(), "_pass()");
        assert_eq!(
            Forward::PassTo(Label::new("srv")).to_string(),
            "_pass(\"srv\")"
        );
        assert_eq!(Forward::Drop.to_string(), "_drop()");
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [
            Forward::Pass.code(),
            Forward::Reflect.code(),
            Forward::Bcast.code(),
            Forward::Drop.code(),
            Forward::PassTo(Label::new("x")).code(),
        ];
        let mut dedup = codes.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
