#![warn(missing_docs)]

//! # c3 — the Compute Centric Communication model
//!
//! Foundational types for the C3 programming model from *"Don't You Worry
//! 'Bout a Packet: Unified Programming for In-Network Computing"*
//! (HotNets '21). Under C3, hosts exchange data **arrays** through
//! point-to-point primitives that also perform **computations** on the data
//! at on-path network devices. The basic unit of processing is the
//! [`window::Window`]: a user-controlled association of elements
//! across arrays, decoupled from packets.
//!
//! This crate is dependency-free and shared by every other crate in the
//! workspace: the language frontend, the IR, the PISA simulator, the NCP
//! protocol and the runtime all speak these types.
//!
//! The main exports are:
//!
//! * identifiers ([`HostId`], [`SwitchId`], [`NodeId`], [`KernelId`],
//!   [`Label`]) for hosts, switches, kernels and AND location labels;
//! * [`ScalarType`] / [`Value`] — the NCL scalar type system with
//!   C semantics (wrapping two's-complement arithmetic, explicit casts);
//! * [`Mask`] / [`WindowSpec`] / [`Window`] — the window abstraction;
//! * [`Forward`] — the forwarding decisions a kernel can take
//!   (`_pass` / `_drop` / `_reflect` / `_bcast`);
//! * [`wire`] — byte-order helpers shared by every wire format.

pub mod fwd;
pub mod ids;
pub mod ncpr;
pub mod value;
pub mod window;
pub mod wire;

pub use fwd::Forward;
pub use ids::{HostId, KernelId, Label, NodeId, PortId, SwitchId};
pub use value::{BinOp, ScalarType, UnOp, Value};
pub use window::{Chunk, Mask, Window, WindowSpec};
