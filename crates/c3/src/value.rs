//! The NCL scalar type system and a dynamically-typed scalar [`Value`].
//!
//! NCL extends C, so values follow C semantics: fixed-width two's
//! complement integers with wrapping arithmetic on overflow (the behaviour
//! every deployed P4 target implements for its ALUs), explicit casts that
//! truncate or sign/zero-extend, and a `bool` that converts to `0`/`1`.
//!
//! A [`Value`] packs the bits into a `u64` next to its [`ScalarType`]; all
//! arithmetic masks the result back to the type's width. Both the IR
//! reference interpreter and the PISA simulator compute on `Value`s, which
//! is what makes differential testing of the compiler meaningful.

use std::fmt;

/// The scalar types of NCL (the C subset used by network kernels).
///
/// `repr(u8)` is part of the [`Value`] layout contract: the tag is one
/// byte, so SIMD executors can locate and compare it in packed `Value`
/// slices (see [`Value::RAW_TY_OFFSET`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum ScalarType {
    /// `bool` — stored as one byte on the wire, values 0 or 1.
    Bool,
    /// `uint8_t` / `unsigned char`.
    U8,
    /// `uint16_t`.
    U16,
    /// `uint32_t` / `unsigned`.
    U32,
    /// `uint64_t`.
    U64,
    /// `int8_t` / `char` (NCL `char` is signed, as on every PISA target).
    I8,
    /// `int16_t`.
    I16,
    /// `int32_t` / `int`.
    I32,
    /// `int64_t`.
    I64,
}

impl ScalarType {
    /// All scalar types, handy for exhaustive tests.
    pub const ALL: [ScalarType; 9] = [
        ScalarType::Bool,
        ScalarType::U8,
        ScalarType::U16,
        ScalarType::U32,
        ScalarType::U64,
        ScalarType::I8,
        ScalarType::I16,
        ScalarType::I32,
        ScalarType::I64,
    ];

    /// Size of the type in bytes (as stored in windows and registers).
    pub fn size(self) -> usize {
        match self {
            ScalarType::Bool | ScalarType::U8 | ScalarType::I8 => 1,
            ScalarType::U16 | ScalarType::I16 => 2,
            ScalarType::U32 | ScalarType::I32 => 4,
            ScalarType::U64 | ScalarType::I64 => 8,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u32 {
        self.size() as u32 * 8
    }

    /// Whether the type is a signed integer.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// Bit mask covering the type's width.
    pub fn mask(self) -> u64 {
        match self.bits() {
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// The C spelling of the type, used by diagnostics and P4 emission.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::Bool => "bool",
            ScalarType::U8 => "uint8_t",
            ScalarType::U16 => "uint16_t",
            ScalarType::U32 => "uint32_t",
            ScalarType::U64 => "uint64_t",
            ScalarType::I8 => "int8_t",
            ScalarType::I16 => "int16_t",
            ScalarType::I32 => "int32_t",
            ScalarType::I64 => "int64_t",
        }
    }

    /// The unsigned type of the same width (P4 `bit<N>` has no sign; the
    /// compiler lowers signed NCL ops onto unsigned fields).
    pub fn unsigned(self) -> ScalarType {
        match self {
            ScalarType::Bool | ScalarType::U8 | ScalarType::I8 => ScalarType::U8,
            ScalarType::U16 | ScalarType::I16 => ScalarType::U16,
            ScalarType::U32 | ScalarType::I32 => ScalarType::U32,
            ScalarType::U64 | ScalarType::I64 => ScalarType::U64,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A dynamically-typed NCL scalar: raw bits plus a [`ScalarType`].
///
/// Invariant: `bits & !ty.mask() == 0` — the payload never carries stale
/// high bits, so equality on `Value` is value equality.
///
/// The layout is a contract (`repr(C)`): the tag byte sits at
/// [`Value::RAW_TY_OFFSET`] and the canonical bits at
/// [`Value::RAW_BITS_OFFSET`] of a 16-byte, 8-aligned struct. The ncvec
/// SIMD tier executes fused element-wise runs directly over packed
/// `&[Value]` slices through these offsets; the assertions below pin the
/// contract at compile time. Padding bytes carry no meaning — `Eq` and
/// `Hash` go through the fields, never through raw bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Value {
    ty: ScalarType,
    bits: u64,
}

impl Value {
    /// Byte size of a packed `Value` (layout contract).
    pub const RAW_SIZE: usize = 16;
    /// Byte offset of the one-byte [`ScalarType`] tag (layout contract).
    pub const RAW_TY_OFFSET: usize = 0;
    /// Byte offset of the canonical little-endian `u64` bits (layout
    /// contract).
    pub const RAW_BITS_OFFSET: usize = 8;
}

const _: () = {
    assert!(std::mem::size_of::<Value>() == Value::RAW_SIZE);
    assert!(std::mem::align_of::<Value>() == 8);
    assert!(std::mem::offset_of!(Value, ty) == Value::RAW_TY_OFFSET);
    assert!(std::mem::offset_of!(Value, bits) == Value::RAW_BITS_OFFSET);
};

/// Binary operators shared by the IR and the PISA action ALU.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (C semantics; division by zero yields 0 on PISA targets
    /// and we mirror that here so both executions agree).
    Div,
    /// Remainder (0 when the divisor is 0, matching [`BinOp::Div`]).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amounts are taken modulo the bit width, the
    /// behaviour of switch ALUs).
    Shl,
    /// Right shift: logical for unsigned operands, arithmetic for signed.
    Shr,
    /// Equality; yields `Bool`.
    Eq,
    /// Inequality; yields `Bool`.
    Ne,
    /// Less-than in the left operand's signedness; yields `Bool`.
    Lt,
    /// Less-or-equal; yields `Bool`.
    Le,
    /// Greater-than; yields `Bool`.
    Gt,
    /// Greater-or-equal; yields `Bool`.
    Ge,
}

impl BinOp {
    /// Whether the operator produces a `Bool` regardless of operand types.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// C spelling of the operator (for diagnostics and P4 emission).
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Two's complement negation.
    Neg,
    /// Bitwise complement within the type's width.
    BitNot,
    /// Logical not; yields `Bool`.
    Not,
}

impl Value {
    /// Builds a value from raw bits, masking to the type's width.
    pub fn new(ty: ScalarType, bits: u64) -> Self {
        let bits = match ty {
            // bool normalizes any nonzero payload to 1, like C.
            ScalarType::Bool => (bits != 0) as u64,
            _ => bits & ty.mask(),
        };
        Value { ty, bits }
    }

    /// A zero of the given type.
    pub fn zero(ty: ScalarType) -> Self {
        Value { ty, bits: 0 }
    }

    /// Convenience constructors.
    pub fn bool(b: bool) -> Self {
        Value::new(ScalarType::Bool, b as u64)
    }

    /// `uint32_t` literal.
    pub fn u32(v: u32) -> Self {
        Value::new(ScalarType::U32, v as u64)
    }

    /// `uint64_t` literal.
    pub fn u64(v: u64) -> Self {
        Value::new(ScalarType::U64, v)
    }

    /// `int` literal.
    pub fn i32(v: i32) -> Self {
        Value::new(ScalarType::I32, v as u32 as u64)
    }

    /// `int64_t` literal.
    pub fn i64(v: i64) -> Self {
        Value::new(ScalarType::I64, v as u64)
    }

    /// The value's type.
    pub fn ty(self) -> ScalarType {
        self.ty
    }

    /// Raw bits (zero-extended to 64).
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The value interpreted in its own signedness, widened to `i128` so
    /// every scalar fits losslessly.
    pub fn as_i128(self) -> i128 {
        if self.ty.is_signed() {
            let shift = 64 - self.ty.bits();
            (((self.bits << shift) as i64) >> shift) as i128
        } else {
            self.bits as i128
        }
    }

    /// Truthiness for conditions, C-style: nonzero is true.
    pub fn is_truthy(self) -> bool {
        self.bits != 0
    }

    /// Casts to another scalar type: truncation or sign/zero extension,
    /// exactly C's conversion rules for integer types.
    pub fn cast(self, to: ScalarType) -> Value {
        if to == ScalarType::Bool {
            return Value::bool(self.bits != 0);
        }
        let wide = self.as_i128() as u64; // sign-extends signed sources
        Value::new(to, wide)
    }

    /// Applies a binary operator. Operands must share a type (the
    /// frontend inserts casts); comparisons yield `Bool`.
    ///
    /// # Panics
    /// Panics if the operand types differ — that is a compiler bug, not a
    /// user error, by the time values meet.
    pub fn binop(op: BinOp, a: Value, b: Value) -> Value {
        assert_eq!(
            a.ty, b.ty,
            "binop {op:?} on mismatched types {:?} vs {:?}",
            a.ty, b.ty
        );
        let ty = a.ty;
        if op.is_comparison() {
            let (x, y) = (a.as_i128(), b.as_i128());
            let r = match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            };
            return Value::bool(r);
        }
        let bits = match op {
            BinOp::Add => a.bits.wrapping_add(b.bits),
            BinOp::Sub => a.bits.wrapping_sub(b.bits),
            BinOp::Mul => a.bits.wrapping_mul(b.bits),
            BinOp::Div => {
                if b.bits == 0 {
                    0
                } else if ty.is_signed() {
                    (a.as_i128() / b.as_i128()) as u64
                } else {
                    a.bits / b.bits
                }
            }
            BinOp::Rem => {
                if b.bits == 0 {
                    0
                } else if ty.is_signed() {
                    (a.as_i128() % b.as_i128()) as u64
                } else {
                    a.bits % b.bits
                }
            }
            BinOp::And => a.bits & b.bits,
            BinOp::Or => a.bits | b.bits,
            BinOp::Xor => a.bits ^ b.bits,
            BinOp::Shl => a.bits.wrapping_shl(b.bits as u32 % ty.bits()),
            BinOp::Shr => {
                let sh = b.bits as u32 % ty.bits();
                if ty.is_signed() {
                    ((a.as_i128() as i64) >> sh) as u64
                } else {
                    a.bits >> sh
                }
            }
            _ => unreachable!(),
        };
        Value::new(ty, bits)
    }

    /// Applies a unary operator.
    pub fn unop(op: UnOp, a: Value) -> Value {
        match op {
            UnOp::Neg => Value::new(a.ty, a.bits.wrapping_neg()),
            // `~bool` never reaches here from NCL (C promotes to int
            // first); at the value level the complement of a bool is
            // its logical complement.
            UnOp::BitNot if a.ty == ScalarType::Bool => Value::bool(a.bits == 0),
            UnOp::BitNot => Value::new(a.ty, !a.bits),
            UnOp::Not => Value::bool(a.bits == 0),
        }
    }

    /// Serializes the value into `buf` using the given byte order
    /// (windows travel big-endian on the wire; host memory is native).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.ty().size()`.
    pub fn write_be(self, buf: &mut [u8]) {
        let n = self.ty.size();
        assert_eq!(buf.len(), n, "buffer size mismatch for {}", self.ty);
        buf.copy_from_slice(&self.bits.to_be_bytes()[8 - n..]);
    }

    /// Deserializes a big-endian value of type `ty` from `buf`.
    ///
    /// # Panics
    /// Panics if `buf.len() != ty.size()`.
    pub fn read_be(ty: ScalarType, buf: &[u8]) -> Value {
        let n = ty.size();
        assert_eq!(buf.len(), n, "buffer size mismatch for {ty}");
        let mut raw = [0u8; 8];
        raw[8 - n..].copy_from_slice(buf);
        Value::new(ty, u64::from_be_bytes(raw))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ty == ScalarType::Bool {
            write!(f, "{}", self.bits != 0)
        } else if self.ty.is_signed() {
            write!(f, "{}", self.as_i128())
        } else {
            write!(f, "{}", self.bits)
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_on_construction() {
        assert_eq!(Value::new(ScalarType::U8, 0x1_FF).bits(), 0xFF);
        assert_eq!(Value::new(ScalarType::Bool, 42).bits(), 1);
        assert_eq!(Value::new(ScalarType::U16, 0xFFFF_0001).bits(), 1);
    }

    #[test]
    fn wrapping_add_sub() {
        let a = Value::new(ScalarType::U8, 250);
        let b = Value::new(ScalarType::U8, 10);
        assert_eq!(Value::binop(BinOp::Add, a, b).bits(), 4);
        let z = Value::zero(ScalarType::U8);
        assert_eq!(Value::binop(BinOp::Sub, z, b).bits(), 246);
    }

    #[test]
    fn signed_comparison() {
        let a = Value::new(ScalarType::I8, 0xFF); // -1
        let b = Value::new(ScalarType::I8, 1);
        assert!(Value::binop(BinOp::Lt, a, b).is_truthy());
        // Same bits unsigned compare the other way.
        let a = Value::new(ScalarType::U8, 0xFF);
        let b = Value::new(ScalarType::U8, 1);
        assert!(Value::binop(BinOp::Gt, a, b).is_truthy());
    }

    #[test]
    fn signed_div_rem() {
        let a = Value::i32(-7);
        let b = Value::i32(2);
        assert_eq!(Value::binop(BinOp::Div, a, b).as_i128(), -3);
        assert_eq!(Value::binop(BinOp::Rem, a, b).as_i128(), -1);
    }

    #[test]
    fn div_by_zero_is_zero() {
        let a = Value::u32(9);
        let z = Value::u32(0);
        assert_eq!(Value::binop(BinOp::Div, a, z).bits(), 0);
        assert_eq!(Value::binop(BinOp::Rem, a, z).bits(), 0);
    }

    #[test]
    fn arithmetic_shift_right() {
        let a = Value::new(ScalarType::I16, 0x8000u64); // -32768
        let one = Value::new(ScalarType::I16, 1);
        let r = Value::binop(BinOp::Shr, a, one);
        assert_eq!(r.as_i128(), -16384);
        let ua = Value::new(ScalarType::U16, 0x8000u64);
        let uone = Value::new(ScalarType::U16, 1);
        assert_eq!(Value::binop(BinOp::Shr, ua, uone).bits(), 0x4000);
    }

    #[test]
    fn shift_amount_wraps_to_width() {
        let a = Value::u32(1);
        let sh = Value::u32(33); // 33 % 32 == 1
        assert_eq!(Value::binop(BinOp::Shl, a, sh).bits(), 2);
    }

    #[test]
    fn casts_sign_extend_and_truncate() {
        let v = Value::new(ScalarType::I8, 0x80); // -128
        assert_eq!(v.cast(ScalarType::I32).as_i128(), -128);
        assert_eq!(v.cast(ScalarType::U16).bits(), 0xFF80);
        let w = Value::u32(0x1_2345_usize as u32);
        assert_eq!(w.cast(ScalarType::U8).bits(), 0x45);
        assert_eq!(Value::u32(2).cast(ScalarType::Bool).bits(), 1);
    }

    #[test]
    fn unops() {
        assert_eq!(Value::unop(UnOp::Neg, Value::i32(5)).as_i128(), -5);
        assert_eq!(
            Value::unop(UnOp::BitNot, Value::new(ScalarType::U8, 0x0F)).bits(),
            0xF0
        );
        assert!(Value::unop(UnOp::Not, Value::u32(0)).is_truthy());
        assert!(!Value::unop(UnOp::Not, Value::u32(3)).is_truthy());
    }

    #[test]
    fn be_roundtrip_all_types() {
        for ty in ScalarType::ALL {
            let v = Value::new(ty, 0xA5A5_A5A5_A5A5_A5A5);
            let mut buf = vec![0u8; ty.size()];
            v.write_be(&mut buf);
            assert_eq!(Value::read_be(ty, &buf), v, "type {ty}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(Value::i32(-3).to_string(), "-3");
        assert_eq!(Value::u32(3).to_string(), "3");
        assert_eq!(Value::bool(true).to_string(), "true");
        assert_eq!(format!("{:?}", Value::u32(7)), "7:uint32_t");
    }
}
