//! Shared naming conventions for the NCP-R reliability layer.
//!
//! The compiler lowers a per-kernel replay filter into two synthetic
//! register arrays; hosts, the simulator and observability tooling need
//! to find those arrays by name in whatever datapath executes them
//! (interpreter, compiled fast path, or PISA pipeline). The prefixes
//! live here — the one crate everything already depends on — so the
//! name contract has a single definition.

/// Name prefix of the seen-sequence bitmap register the replay filter
/// lowers to (`__nclr_seen_<kernel>`): one byte per `(sender, slot)`
/// cell, set to 1 once a window lands in that cell.
pub const REPLAY_SEEN_PREFIX: &str = "__nclr_seen_";

/// Name prefix of the duplicate counter register
/// (`__nclr_dups_<kernel>`): a single `u32` incremented every time the
/// filter classifies an arriving window as a replay.
pub const REPLAY_DUPS_PREFIX: &str = "__nclr_dups_";

/// The seen-bitmap register name for `kernel`.
pub fn replay_seen_register(kernel: &str) -> String {
    format!("{REPLAY_SEEN_PREFIX}{kernel}")
}

/// The duplicate-counter register name for `kernel`.
pub fn replay_dups_register(kernel: &str) -> String {
    format!("{REPLAY_DUPS_PREFIX}{kernel}")
}
