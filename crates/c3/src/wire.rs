//! Byte-order helpers shared by every wire format in the workspace.
//!
//! All protocol fields travel big-endian (network byte order). These
//! helpers are deliberately panicking on short buffers in the `put_*`
//! direction — the caller sizes the buffer — while the `get_*` direction
//! offers both panicking accessors (for use behind a length check, the
//! smoltcp idiom) and checked variants.

/// Reads a big-endian `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a big-endian `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a big-endian `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Writes a big-endian `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
}

/// Checked read of a big-endian `u16`; `None` on a short buffer.
#[inline]
pub fn try_get_u16(buf: &[u8], off: usize) -> Option<u16> {
    buf.get(off..off + 2)
        .map(|s| u16::from_be_bytes([s[0], s[1]]))
}

/// Checked read of a big-endian `u32`; `None` on a short buffer.
#[inline]
pub fn try_get_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
}

/// The Internet checksum (RFC 1071) over `data`, used by our IPv4/UDP
/// template headers in the software-switch backend.
pub fn inet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_roundtrip() {
        let mut b = [0u8; 4];
        put_u16(&mut b, 1, 0xBEEF);
        assert_eq!(b, [0, 0xBE, 0xEF, 0]);
        assert_eq!(get_u16(&b, 1), 0xBEEF);
        assert_eq!(try_get_u16(&b, 1), Some(0xBEEF));
        assert_eq!(try_get_u16(&b, 3), None);
    }

    #[test]
    fn u32_u64_roundtrip() {
        let mut b = [0u8; 12];
        put_u32(&mut b, 0, 0xDEAD_BEEF);
        put_u64(&mut b, 4, 0x0102_0304_0506_0708);
        assert_eq!(get_u32(&b, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&b, 4), 0x0102_0304_0506_0708);
        assert_eq!(try_get_u32(&b, 9), None);
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
        // checksum = !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(inet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd trailing byte is padded with zero.
        assert_eq!(inet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        // Inserting the checksum makes the total sum verify (complement 0).
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11];
        let ck = inet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(inet_checksum(&data), 0);
    }
}
