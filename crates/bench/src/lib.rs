//! # ncl-bench — the experiment harness
//!
//! One bench target per experiment in EXPERIMENTS.md (E1–E8). Two kinds
//! of measurement coexist:
//!
//! * **simulated metrics** (completion time, latency, server load,
//!   bytes on the wire) — read off the deterministic network simulation
//!   and printed as paper-style tables;
//! * **wall-clock metrics** (compiler speed, codec throughput, simulator
//!   packet rate) — measured with Criterion.
//!
//! Shared helpers live here: workload generators and the common
//! deployment shapes.

use c3::{HostId, NodeId, ScalarType, Value};
use ncl_core::apps::{
    allreduce_source, kvs_source, KvsClient, KvsOp, KvsServer, PsServer, PsWorker,
};
use ncl_core::control::ControlPlane;
use ncl_core::deploy::{deploy, deploy_with, Deployment, SwitchBackend};
use ncl_core::nclc::{compile, CompileConfig, CompiledProgram};
use ncl_core::runtime::{NclHost, OutInvocation, TypedArray};
use netsim::{HostApp, LinkSpec, NetworkBuilder, SwitchCfg, Time};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Results of one AllReduce run.
#[derive(Clone, Copy, Debug)]
pub struct AllReduceResult {
    /// Completion time (max across workers), ns.
    pub completion: Time,
    /// Bytes offered to links in total.
    pub bytes_on_wire: u64,
    /// Bytes into the aggregation point (switch or PS host).
    pub aggregator_ingress: u64,
}

/// Compiles the Fig. 4 program for `nworkers`/`elements`/`win`.
pub fn allreduce_program(nworkers: usize, elements: usize, win: usize) -> CompiledProgram {
    let src = allreduce_source(elements, win);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    compile(&src, &and, &cfg).expect("allreduce compiles")
}

/// Runs the in-network AllReduce (E1, INC arm).
pub fn run_allreduce_inc(nworkers: usize, elements: usize, win: usize) -> AllReduceResult {
    let program = allreduce_program(nworkers, elements, win);
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .expect("valid");
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep: Deployment = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    let completion = (1..=nworkers as u16)
        .map(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .expect("worker")
                .done_at
                .expect("completed")
        })
        .max()
        .expect("workers exist");
    AllReduceResult {
        completion,
        bytes_on_wire: dep.net.stats().bytes_sent,
        aggregator_ingress: dep.net.node_ingress_bytes(NodeId::Switch(s1)),
    }
}

/// Runs the in-network AllReduce end to end on an explicit switch
/// engine, returning the simulated metrics plus the host wall-clock the
/// simulation took, in milliseconds (E13's end-to-end comparison: the
/// deterministic simulation makes the *simulated* results bit-identical
/// across engines, so the wall-clock difference is purely the execution
/// tier's processing cost).
///
/// Unlike E1's [`run_allreduce_inc`], the chip model is lifted
/// (stages/ops/PHV) so the wide windows where the ncvec SIMD tier earns
/// its keep stay compilable; this bench measures the software tiers,
/// not chip fit.
pub fn run_allreduce_e2e(
    nworkers: usize,
    elements: usize,
    win: usize,
    backend: SwitchBackend,
) -> (AllReduceResult, f64) {
    let src = allreduce_source(elements, win);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.model.stages = 64;
    cfg.model.ops_per_stage = 8192;
    cfg.model.phv_header_bytes = 1 << 14;
    cfg.model.phv_metadata_bytes = 1 << 14;
    let program = compile(&src, &and, &cfg).expect("allreduce compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .expect("valid");
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep: Deployment =
        deploy_with(&program, apps, LinkSpec::default(), cfg.model, backend).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    let nw = Value::u32(nworkers as u32);
    match backend {
        SwitchBackend::Pisa => {
            cp.ctrl_wr(dep.net.switch_pipeline_mut(s1).unwrap(), "nworkers", nw);
        }
        _ => {
            let fp = dep.net.switch_fastpath_mut(s1).unwrap();
            for op in cp.ctrl_wr_ops("nworkers", nw) {
                assert!(fp.ctrl(&op), "ctrl write lands");
            }
        }
    }
    let t = std::time::Instant::now();
    dep.net.run();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let completion = (1..=nworkers as u16)
        .map(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .expect("worker")
                .done_at
                .expect("completed")
        })
        .max()
        .expect("workers exist");
    (
        AllReduceResult {
            completion,
            bytes_on_wire: dep.net.stats().bytes_sent,
            aggregator_ingress: dep.net.node_ingress_bytes(NodeId::Switch(s1)),
        },
        wall_ms,
    )
}

/// Runs the parameter-server baseline (E1, host arm).
pub fn run_allreduce_ps(nworkers: usize, elements: usize, win: usize) -> AllReduceResult {
    let mut b = NetworkBuilder::new();
    let ps_node = NodeId::Host(HostId(nworkers as u16 + 1));
    let mut worker_ids = Vec::new();
    for w in 1..=nworkers as u16 {
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        let id = b.add_host(Box::new(PsWorker::new(ps_node, data, win)));
        worker_ids.push(NodeId::Host(id));
    }
    let ps = b.add_host(Box::new(PsServer::new(worker_ids)));
    let sw = b.add_switch(SwitchCfg::default());
    for w in 1..=nworkers as u16 + 1 {
        b.link(HostId(w), sw, LinkSpec::default());
    }
    let mut net = b.build();
    net.run();
    let completion = (1..=nworkers as u16)
        .map(|w| {
            net.host_app::<PsWorker>(HostId(w))
                .expect("worker")
                .done_at
                .expect("completed")
        })
        .max()
        .expect("workers");
    AllReduceResult {
        completion,
        bytes_on_wire: net.stats().bytes_sent,
        aggregator_ingress: net.node_ingress_bytes(NodeId::Host(ps)),
    }
}

/// Results of one NCP-R reliable AllReduce run (E10).
#[derive(Clone, Copy, Debug)]
pub struct ReliableResult {
    /// Completion time (max across workers), ns.
    pub completion: Time,
    /// Bytes offered to links in total (incl. retransmissions + ACKs).
    pub bytes_on_wire: u64,
    /// Result payload bytes delivered to hosts (goodput numerator).
    pub payload_bytes: u64,
    /// Total windows retransmitted across workers.
    pub retransmits: u64,
    /// Duplicates suppressed by the in-switch replay filter.
    pub switch_dups: u64,
}

/// Runs the Fig. 4 AllReduce with NCP-R enabled (E10): replay filter in
/// the switch, reliable window transport on every worker. `link`
/// carries the loss/duplication/reorder knobs under test.
pub fn run_allreduce_reliable(
    nworkers: usize,
    elements: usize,
    win: usize,
    link: LinkSpec,
) -> ReliableResult {
    use ncl_core::nclc::ReplayFilter;
    use ncp::ReliableConfig;
    let slots = elements / win;
    let src = allreduce_source(elements, win);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: nworkers as u16,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("allreduce compiles");
    let kid = program.kernel_ids["allreduce"];
    // The transport tuned to the bench topology: RTO a few× the loaded
    // RTT (µs-scale links) instead of the conservative wall-clock
    // default, and an initial window deep enough to keep the switch
    // pipeline busy from the first flight.
    let rcfg = ReliableConfig {
        filter_slots: slots,
        cwnd: 64,
        max_cwnd: 256,
        rto: 500_000,
        max_rto: 8_000_000,
        ..ReliableConfig::default()
    };
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .expect("valid");
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep: Deployment =
        deploy(&program, apps, link, pisa::ResourceModel::default()).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    let mut completion = 0;
    let mut retransmits = 0;
    for w in 1..=nworkers as u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).expect("worker");
        completion = completion.max(host.done_at.expect("completed under NCP-R"));
        retransmits += host
            .sender_stats()
            .expect("reliability enabled")
            .retransmits;
    }
    ReliableResult {
        completion,
        bytes_on_wire: dep.net.stats().bytes_sent,
        payload_bytes: (nworkers * elements * 4) as u64,
        retransmits,
        switch_dups: dep.net.switch_dup_suppressed(s1),
    }
}

/// Results of one KVS run (E2).
#[derive(Clone, Copy, Debug)]
pub struct KvsResult {
    /// Mean GET latency, ns.
    pub mean_latency: f64,
    /// p99 GET latency, ns.
    pub p99_latency: u64,
    /// Operations the server handled.
    pub server_ops: u64,
    /// Cache hit rate over GETs.
    pub hit_rate: f64,
    /// GETs completed.
    pub gets: usize,
}

/// A Zipf(s) sampler over `1..=n`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF.
    pub fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        (self.cdf.partition_point(|&c| c < u) + 1) as u64
    }
}

/// Runs the KVS workload (E2). `cache_slots = 0` disables the cache
/// (server-only baseline).
pub fn run_kvs(
    nclients: usize,
    ops_per_client: usize,
    skew: f64,
    keyspace: u64,
    cache_slots: usize,
    val_words: usize,
) -> KvsResult {
    run_kvs_on(
        nclients,
        ops_per_client,
        skew,
        keyspace,
        cache_slots,
        val_words,
        SwitchBackend::Pisa,
    )
    .0
}

/// [`run_kvs`] on an explicit switch engine, also returning the host
/// wall-clock of the simulation in milliseconds (the E13 end-to-end
/// comparison across execution tiers).
#[allow(clippy::too_many_arguments)]
pub fn run_kvs_on(
    nclients: usize,
    ops_per_client: usize,
    skew: f64,
    keyspace: u64,
    cache_slots: usize,
    val_words: usize,
    backend: SwitchBackend,
) -> (KvsResult, f64) {
    let with_cache = cache_slots > 0;
    let slots = cache_slots.max(8);
    let server_id = (nclients + 1) as u16;
    let src = kvs_source(server_id, slots, val_words);
    let and = format!(
        "hosts client {nclients}\nswitch s1\nhost server\nlink client* s1\nlink server s1\n"
    );
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, val_words as u16, 1]);
    let program = compile(&src, &and, &cfg).expect("kvs compiles");
    let kernel = program.kernel_ids["query"];
    let control = with_cache.then(|| ControlPlane::new(program.switch("s1").unwrap()));

    let zipf = Zipf::new(keyspace, skew);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for c in 1..=nclients as u16 {
        let mut rng = StdRng::seed_from_u64(c as u64 * 6271);
        let schedule: Vec<KvsOp> = (0..ops_per_client)
            .map(|i| KvsOp {
                at: (i as u64) * 150_000 + c as u64 * 900,
                key: zipf.sample(&mut rng),
                put: rng.gen::<f64>() < 0.02,
            })
            .collect();
        apps.insert(
            format!("client{c}"),
            Box::new(KvsClient::new(
                NodeId::Host(HostId(server_id)),
                HostId(server_id),
                kernel,
                val_words,
                schedule,
            )),
        );
    }
    let mut server = KvsServer::new(kernel, val_words, None, control, slots);
    for k in 1..=keyspace {
        server.store.insert(k, KvsClient::value_for(k, val_words));
    }
    apps.insert("server".into(), Box::new(server));
    let mut stripped = program.clone();
    if !with_cache {
        stripped.switches.clear();
    }
    let mut dep = deploy_with(
        &stripped,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
        backend,
    )
    .expect("deploys");
    if with_cache {
        let s1 = dep.switch("s1");
        dep.net
            .host_app_mut::<KvsServer>(HostId(server_id))
            .expect("server")
            .cache_switch = Some(s1);
    }
    let t = std::time::Instant::now();
    dep.net.run();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut lat = Vec::new();
    let mut hits = 0usize;
    for c in 1..=nclients as u16 {
        let client = dep.net.host_app::<KvsClient>(HostId(c)).expect("client");
        assert_eq!(client.corrupt, 0, "corrupt GET responses");
        for s in &client.samples {
            if !s.put {
                lat.push(s.latency);
                if s.from_cache {
                    hits += 1;
                }
            }
        }
    }
    lat.sort_unstable();
    let gets = lat.len();
    (
        KvsResult {
            mean_latency: lat.iter().sum::<u64>() as f64 / gets.max(1) as f64,
            p99_latency: lat
                .get(gets.saturating_sub(1) * 99 / 100)
                .copied()
                .unwrap_or(0),
            server_ops: dep
                .net
                .host_app::<KvsServer>(HostId(server_id))
                .expect("server")
                .served,
            hit_rate: hits as f64 / gets.max(1) as f64,
            gets,
        },
        wall_ms,
    )
}

/// Pretty table separator for bench output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Results of one telemetry-enabled AllReduce run (E11).
#[derive(Clone, Debug)]
pub struct TelemetryResult {
    /// Completion time (max across workers), ns.
    pub completion: Time,
    /// Bytes offered to links in total (incl. hop-record sections).
    pub bytes_on_wire: u64,
    /// Window traces assembled across all workers.
    pub traces: u64,
    /// Hop records across all traces.
    pub hop_records: u64,
    /// The run's metrics registries rendered as JSON (the CI artifact):
    /// the simulator registry plus worker 1's host registry.
    pub metrics_json: String,
}

/// Runs the Fig. 4 AllReduce with in-band window telemetry enabled
/// (E11): every worker flags `sampling` of its outgoing windows, the
/// switch stamps a 32-byte hop record on each, and receivers assemble
/// the traces. Identical deployment shape to [`run_allreduce_inc`], so
/// the completion-time delta between the two *is* the telemetry cost.
pub fn run_allreduce_telemetry(
    nworkers: usize,
    elements: usize,
    win: usize,
    sampling: f64,
    model: &pisa::ResourceModel,
) -> TelemetryResult {
    let src = allreduce_source(elements, win);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.model = *model;
    let program = compile(&src, &and, &cfg).expect("allreduce compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .expect("valid");
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        host.enable_telemetry(sampling, 65_536);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep: Deployment = deploy(&program, apps, LinkSpec::default(), *model).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    let completion = (1..=nworkers as u16)
        .map(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .expect("worker")
                .done_at
                .expect("completed")
        })
        .max()
        .expect("workers exist");
    let mut traces = 0u64;
    let mut hop_records = 0u64;
    let mut worker1_json = String::from("{}");
    for w in 1..=nworkers as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).expect("worker");
        if w == 1 {
            worker1_json = host.metrics().render_json();
        }
        for t in host.take_traces() {
            traces += 1;
            hop_records += t.hops.len() as u64;
        }
    }
    let metrics_json = format!(
        "{{\"sim\":{},\"worker1\":{}}}",
        dep.net.metrics().render_json(),
        worker1_json
    );
    TelemetryResult {
        completion,
        bytes_on_wire: dep.net.stats().bytes_sent,
        traces,
        hop_records,
        metrics_json,
    }
}

/// Results of one scoped (ncscope-recording) reliable AllReduce run.
#[derive(Clone, Debug)]
pub struct ScopedResult {
    /// Completion time (max across workers that completed), ns; 0 when
    /// no worker completed (e.g. a dead link made every sender give
    /// up).
    pub completion: Time,
    /// Result payload bytes delivered to hosts (goodput numerator).
    pub payload_bytes: u64,
    /// Windows retransmitted across workers.
    pub retransmits: u64,
    /// Windows abandoned across workers.
    pub abandoned: u64,
    /// Scope events emitted over the run (0 with recording off).
    pub events_logged: u64,
    /// Receiver-assembled window traces across workers.
    pub traces: Vec<nctel::WindowTrace>,
}

/// Runs the Fig. 4 AllReduce with NCP-R *and* optionally the ncscope
/// event log attached to every layer (E12 / the ncscope overhead
/// gate). `scope = None` is the recording-off baseline — identical
/// deployment, zero event emission. `link_overrides` is the
/// fault-injection knob: per-link specs by AND label pair (e.g. kill
/// exactly `worker1 <-> s1` and let the diagnosis engine name it).
#[allow(clippy::too_many_arguments)]
pub fn run_allreduce_scoped(
    nworkers: usize,
    elements: usize,
    win: usize,
    link: LinkSpec,
    link_overrides: Vec<(String, String, LinkSpec)>,
    sampling: f64,
    scope: Option<&nctel::Scope>,
    model: &pisa::ResourceModel,
) -> ScopedResult {
    use ncl_core::deploy::{deploy_opts, DeployOptions};
    use ncl_core::nclc::ReplayFilter;
    use ncp::ReliableConfig;
    let slots = elements / win;
    let src = allreduce_source(elements, win);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    cfg.model = *model;
    cfg.replay_filters.insert(
        "allreduce".into(),
        ReplayFilter {
            senders: nworkers as u16,
            slots: slots as u16,
        },
    );
    let program = compile(&src, &and, &cfg).expect("allreduce compiles");
    let kid = program.kernel_ids["allreduce"];
    let rcfg = ReliableConfig {
        filter_slots: slots,
        cwnd: 64,
        max_cwnd: 256,
        rto: 500_000,
        max_rto: 8_000_000,
        ..ReliableConfig::default()
    };
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .expect("valid");
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        host.enable_reliability(rcfg);
        if sampling > 0.0 {
            host.enable_telemetry(sampling, 65_536);
        }
        if let Some(scope) = scope {
            host.enable_scope(scope);
        }
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let opts = DeployOptions {
        link_spec: link,
        link_overrides,
        scope: scope.cloned(),
        model: *model,
        ..DeployOptions::default()
    };
    let mut dep: Deployment = deploy_opts(&program, apps, opts).expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    let mut completion = 0;
    let mut retransmits = 0;
    let mut abandoned = 0;
    let mut traces = Vec::new();
    for w in 1..=nworkers as u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).expect("worker");
        completion = completion.max(host.done_at.unwrap_or(0));
        let stats = host.sender_stats().expect("reliability enabled");
        retransmits += stats.retransmits;
        abandoned += stats.abandoned;
        traces.extend(host.take_traces());
    }
    ScopedResult {
        completion,
        payload_bytes: (nworkers * elements * 4) as u64,
        retransmits,
        abandoned,
        events_logged: scope.map(|s| s.logged()).unwrap_or(0),
        traces,
    }
}
