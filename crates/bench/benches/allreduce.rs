//! E1 — Fig. 4 AllReduce: in-network aggregation vs the parameter-server
//! baseline. Regenerates the completion-time and traffic tables of
//! EXPERIMENTS.md §E1: sweeps worker count and array size, printing who
//! wins and by what factor.

use ncl_bench::{run_allreduce_inc, run_allreduce_ps};

fn main() {
    let win = 8usize;
    println!("E1: AllReduce — in-network (INC) vs parameter server (PS)");
    println!("windows of {win} × int32; star topology; 10 Gb/s, 1 µs links\n");

    println!("-- worker sweep (16 Ki elements) --");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "workers", "INC µs", "PS µs", "speedup", "INC agg KiB", "PS agg KiB"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let elements = 16 * 1024;
        let inc = run_allreduce_inc(n, elements, win);
        let ps = run_allreduce_ps(n, elements, win);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>8.2}x {:>14.1} {:>14.1}",
            n,
            inc.completion as f64 / 1000.0,
            ps.completion as f64 / 1000.0,
            ps.completion as f64 / inc.completion as f64,
            inc.aggregator_ingress as f64 / 1024.0,
            ps.aggregator_ingress as f64 / 1024.0,
        );
    }

    println!("\n-- array-size sweep (8 workers) --");
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "elements", "INC µs", "PS µs", "speedup", "wire INC KiB", "wire PS KiB"
    );
    for elements in [256usize, 1024, 4096, 16 * 1024, 64 * 1024] {
        let inc = run_allreduce_inc(8, elements, win);
        let ps = run_allreduce_ps(8, elements, win);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>8.2}x {:>14.1} {:>14.1}",
            elements,
            inc.completion as f64 / 1000.0,
            ps.completion as f64 / 1000.0,
            ps.completion as f64 / inc.completion as f64,
            inc.bytes_on_wire as f64 / 1024.0,
            ps.bytes_on_wire as f64 / 1024.0,
        );
    }

    println!("\n-- window-length ablation (8 workers, 16 Ki elements) --");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "win", "INC µs", "wire KiB", "overhead %"
    );
    for win in [2usize, 4, 8, 16, 32] {
        let elements = 16 * 1024;
        let inc = run_allreduce_inc(8, elements, win);
        let payload = (8 * elements * 4) as f64;
        let overhead = 100.0 * (inc.bytes_on_wire as f64 - payload) / inc.bytes_on_wire as f64;
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>9.1}%",
            win,
            inc.completion as f64 / 1000.0,
            inc.bytes_on_wire as f64 / 1024.0,
            overhead,
        );
    }
    println!("\nShape check: INC wins grow with worker count (aggregation");
    println!("fan-in) and INC ingress ≈ N× egress at the switch, while the");
    println!("PS both receives AND re-sends every byte.");
}
