//! Ablation of the two backend transformations DESIGN.md §8 documents:
//!
//! * **lane splitting** — without it, multi-element register access
//!   patterns (AllReduce's per-window aggregation, the KVS value copy)
//!   collapse onto one bank and blow the stateful micro-op budget;
//! * **gateway predicate chaining** — without it, every boolean op of
//!   the flattened control flow costs its own stage, roughly doubling
//!   pipeline depth and triggering recirculation earlier.

use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::version::{version_modules, LocationInfo};
use ncl_p4::{compile_module, CompileOptions};
use pisa::ResourceModel;

struct Variant {
    name: &'static str,
    lanes: bool,
    gateway: usize,
}

type ProgramSpec = (&'static str, String, Vec<(&'static str, Vec<u16>)>);

fn compile_with(src: &str, masks: &[(&str, Vec<u16>)], v: &Variant) -> String {
    let checked = match ncl_lang::frontend(src, "abl.ncl") {
        Ok(c) => c,
        Err(_) => return "frontend error".into(),
    };
    let mut lcfg = LoweringConfig::default();
    for (k, m) in masks {
        lcfg.masks.insert(k.to_string(), m.clone());
    }
    let Ok(mut module) = lower(&checked, &lcfg) else {
        return "lowering error".into();
    };
    ncl_ir::passes::optimize(&mut module);
    let versions = version_modules(
        &module,
        &[LocationInfo {
            label: c3::Label::new("s1"),
            id: 1,
        }],
    );
    let opts = CompileOptions {
        disable_lane_split: !v.lanes,
        gateway_depth: v.gateway,
        ..CompileOptions::default()
    };
    match compile_module(&versions[0], &ResourceModel::default(), &opts) {
        Ok(c) => format!(
            "{:>3} stages, {} pass(es), max {:>2} ops/stage",
            c.report.stages_used,
            c.report.recirc_passes + 1,
            c.report.ops_by_stage.iter().max().unwrap_or(&0),
        ),
        Err(e) => {
            let msg = e.to_string();
            let detail = msg
                .lines()
                .find(|l| l.trim_start().starts_with('-'))
                .unwrap_or("rejected")
                .trim()
                .to_string();
            format!("REJECTED ({detail})")
        }
    }
}

fn main() {
    let variants = [
        Variant {
            name: "full backend",
            lanes: true,
            gateway: 8,
        },
        Variant {
            name: "no gateway chaining",
            lanes: true,
            gateway: 0,
        },
        Variant {
            name: "no lane splitting",
            lanes: false,
            gateway: 8,
        },
        Variant {
            name: "neither",
            lanes: false,
            gateway: 0,
        },
    ];
    let programs: Vec<ProgramSpec> = vec![
        (
            "AllReduce (win 8)",
            allreduce_source(256, 8),
            vec![("allreduce", vec![8]), ("result", vec![8])],
        ),
        (
            "KVS (8-word values)",
            kvs_source(3, 32, 8),
            vec![("query", vec![1, 8, 1])],
        ),
    ];
    println!("E6c: backend transformation ablation (12-stage chip)");
    for (pname, src, masks) in &programs {
        println!("\n-- {pname} --");
        for v in &variants {
            println!("  {:<22} {}", v.name, compile_with(src, masks, v));
        }
    }
    println!("\nShape check: disabling lane splitting must reject both");
    println!("programs (stateful micro-op budget); disabling gateway");
    println!("chaining deepens the pipeline and forces recirculation.");
}
