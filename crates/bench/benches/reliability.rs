//! E10 — NCP-R reliable window transport (DESIGN §4.7). Regenerates the
//! EXPERIMENTS.md §E10 tables: goodput/completion time across loss
//! rates, retransmission and replay-filter activity, and the headline
//! acceptance number — the goodput cost of turning reliability on at
//! 0% loss (budget: ≤15%).

use ncl_bench::{run_allreduce_inc, run_allreduce_reliable};
use netsim::LinkSpec;

fn main() {
    let nworkers = 4usize;
    let elements = 4096usize;
    let win = 8usize;
    println!("E10: NCP-R — reliable AllReduce ({nworkers} workers, {elements} × int32, win {win})");
    println!("star topology; 10 Gb/s, 1 µs links; deterministic seeded loss\n");

    // Overhead at 0% loss: fire-and-forget vs NCP-R on the same clean
    // links. Goodput = result payload delivered / completion time.
    let base = run_allreduce_inc(nworkers, elements, win);
    let clean = run_allreduce_reliable(nworkers, elements, win, LinkSpec::default());
    let payload = clean.payload_bytes as f64;
    let gp_base = payload / base.completion as f64;
    let gp_rel = payload / clean.completion as f64;
    let overhead = 100.0 * (1.0 - gp_rel / gp_base);
    println!("-- reliability overhead at 0% loss --");
    println!(
        "{:>16} {:>12} {:>14} {:>12}",
        "arm", "compl µs", "wire KiB", "goodput Gb/s"
    );
    for (name, r_completion, r_wire) in [
        ("fire-and-forget", base.completion, base.bytes_on_wire),
        ("NCP-R", clean.completion, clean.bytes_on_wire),
    ] {
        println!(
            "{:>16} {:>12.1} {:>14.1} {:>12.3}",
            name,
            r_completion as f64 / 1000.0,
            r_wire as f64 / 1024.0,
            payload * 8.0 / r_completion as f64,
        );
    }
    println!(
        "goodput overhead: {overhead:.1}%  (budget ≤ 15%) — {}",
        if overhead <= 15.0 { "PASS" } else { "FAIL" }
    );
    assert_eq!(clean.retransmits, 0, "clean links must not retransmit");
    assert_eq!(clean.switch_dups, 0, "clean links must not replay");

    // Loss sweep: completion under adversarial links, exactly-once
    // enforced by the in-switch replay filter.
    println!("\n-- loss sweep (NCP-R, duplication every 6th, 30 µs reorder jitter) --");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12}",
        "loss %", "compl µs", "slowdown", "retransmits", "switch dups"
    );
    for loss in [0.0f64, 0.01, 0.05, 0.10] {
        let link = if loss == 0.0 {
            LinkSpec::default()
        } else {
            LinkSpec {
                loss,
                dup_every: 6,
                jitter_every: 5,
                jitter: 30_000,
                ..LinkSpec::default()
            }
        };
        let r = run_allreduce_reliable(nworkers, elements, win, link);
        println!(
            "{:>8.0} {:>12.1} {:>9.2}x {:>12} {:>12}",
            loss * 100.0,
            r.completion as f64 / 1000.0,
            r.completion as f64 / clean.completion as f64,
            r.retransmits,
            r.switch_dups,
        );
    }
    println!("\nShape check: at 0% loss NCP-R rides the response clock and");
    println!("costs almost nothing; under loss the completion tail is");
    println!("RTO/backoff-dominated (AllReduce is a barrier: one lost window");
    println!("stalls its whole slot). Every run still terminates with");
    println!("exactly-once switch execution — the replay filter absorbs the");
    println!("retransmit × duplication overlap.");
}
