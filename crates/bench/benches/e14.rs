//! E14 — multi-tenant shared fabric: admission control, capacity
//! rejection, and a hitless kernel upgrade (DESIGN §4.12,
//! EXPERIMENTS §E14).
//!
//! Four tenants submit to one fabric: two AllReduce tenants, a
//! NetCache-style KVS tenant, and a deliberately over-quota tenant.
//! The ncsched admission controller admits the first three onto the
//! shared switch (one `TenantMux`, three datapaths) and rejects the
//! fourth with a machine-readable cost report naming the violated
//! budget. Mid-run, tenant `ar-a` is upgraded in place: the NCP-R
//! in-flight snapshot pins draining windows to v1 while fresh windows
//! run v2, and the per-hop version stamps in the window traces prove
//! no window executed the wrong version.
//!
//! Doubles as the CI acceptance gate: the whole scenario runs on each
//! software switch tier (interp, fastpath, simd) and must produce
//! bit-identical simulated results — same sums, same KVS hits, same
//! window counts, same drain size. Writes `target/e14-metrics.json`
//! (bench binaries run with cwd at the package root, so it lands
//! under crates/bench/).

use c3::{HostId, NodeId, ScalarType, Value};
use ncl_bench::{rule, Zipf};
use ncl_core::apps::{allreduce_source, kvs_source, KvsClient, KvsOp, KvsServer};
use ncl_core::deploy::{DeployOptions, SwitchBackend};
use ncl_core::{
    compile, CompileConfig, CompiledProgram, ControlPlane, MultiDeployment, NclHost, OutInvocation,
    TenantDeploy, TypedArray,
};
use ncsched::{BudgetKind, TenantQuota, TenantSpec};
use nctel::scope::analysis::{diagnose, DiagnosisConfig, WindowOutcome};
use nctel::scope::parse_flight;
use nctel::{Scope, SnapshotReason, WindowTrace};
use netsim::{CtrlOp, HostApp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Six AllReduce workers, two KVS clients, one KVS server, one shared
/// switch. Host ids follow declaration order: workers 1-6, clients
/// 7-8, server 9.
const AND: &str = "hosts worker 6\nhosts client 2\nhost server\n\
                   switch s1\nlink worker* s1\nlink client* s1\nlink server s1\n";

const SERVER: u16 = 9;
const KVS_OPS: usize = 60;
const KVS_KEYS: u64 = 64;
const VAL_WORDS: usize = 8;
/// Sim time of the upgrade switchover, ns.
const T_UPGRADE: u64 = 2_000;

/// The shared chip model: the software tiers lift the Tofino-ish
/// defaults so three tenants fit one pipeline (stage packing is still
/// enforced — the greedy tenant's quota is what rejects it).
fn chip() -> pisa::ResourceModel {
    pisa::ResourceModel {
        stages: 64,
        ops_per_stage: 8192,
        phv_header_bytes: 1 << 14,
        phv_metadata_bytes: 1 << 14,
        ..pisa::ResourceModel::default()
    }
}

fn ar_program(base: u16) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    cfg.kernel_id_base = base;
    cfg.model = chip();
    compile(&allreduce_source(16, 4), AND, &cfg).expect("allreduce compiles")
}

fn kvs_program(base: u16) -> CompiledProgram {
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, VAL_WORDS as u16, 1]);
    cfg.kernel_id_base = base;
    cfg.model = chip();
    compile(&kvs_source(SERVER, KVS_KEYS as usize, VAL_WORDS), AND, &cfg).expect("kvs compiles")
}

/// AllReduce workers `lo..=hi` for one tenant, NCP-R on, full-rate
/// window telemetry so every hop record lands in a trace.
fn ar_apps(
    program: &CompiledProgram,
    lo: u16,
    hi: u16,
    scope: &Scope,
) -> HashMap<String, Box<dyn HostApp>> {
    let kid = program.kernel_ids["allreduce"];
    let n = hi - lo + 1;
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in lo..=hi {
        let mut host = NclHost::new(program);
        host.enable_reliability(Default::default());
        host.enable_telemetry(1.0, 65_536);
        host.enable_scope(scope);
        let data: Vec<i32> = vec![w as i32; 16];
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId((w - lo + 1) % n + lo)),
            start: 0,
            gap: 0,
        })
        .expect("valid invocation");
        host.bind_incoming(
            program,
            "allreduce",
            "result",
            &[(ScalarType::I32, 16), (ScalarType::Bool, 1)],
        )
        .expect("paired");
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    apps
}

/// Two Zipf-driven clients and the preloaded server — deterministic
/// schedules so every tier replays the same operation stream.
fn kvs_apps(program: &CompiledProgram) -> HashMap<String, Box<dyn HostApp>> {
    let kid = program.kernel_ids["query"];
    let zipf = Zipf::new(KVS_KEYS, 1.1);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for c in 1..=2u16 {
        let mut rng = StdRng::seed_from_u64(c as u64 * 6271);
        let schedule: Vec<KvsOp> = (0..KVS_OPS)
            .map(|i| KvsOp {
                at: (i as u64) * 150_000 + c as u64 * 900,
                key: zipf.sample(&mut rng),
                put: rng.gen::<f64>() < 0.02,
            })
            .collect();
        apps.insert(
            format!("client{c}"),
            Box::new(KvsClient::new(
                NodeId::Host(HostId(SERVER)),
                HostId(SERVER),
                kid,
                VAL_WORDS,
                schedule,
            )),
        );
    }
    let control = ControlPlane::new(program.switch("s1").expect("kvs cache module"));
    let mut server = KvsServer::new(kid, VAL_WORDS, None, Some(control), KVS_KEYS as usize);
    for k in 1..=KVS_KEYS {
        server.store.insert(k, KvsClient::value_for(k, VAL_WORDS));
    }
    apps.insert("server".into(), Box::new(server));
    apps
}

fn set_nworkers(dep: &mut MultiDeployment, tenant: &str) {
    let op = CtrlOp::RegWrite {
        name: "nworkers".into(),
        index: 0,
        value: Value::u32(3),
    };
    let mux = dep.mux_mut("s1").expect("s1 is multiplexed");
    assert!(mux.ctrl_for(tenant, &op), "{tenant}: nworkers write routed");
}

fn assert_sums(dep: &MultiDeployment, kid: u16, lo: u16, hi: u16, sum: i32) {
    for w in lo..=hi {
        let host = dep.net.host_app::<NclHost>(HostId(w)).expect("worker app");
        assert!(host.done_at.is_some(), "worker {w} never completed");
        let mem = host.memory(kid).expect("result memory");
        for i in 0..16 {
            assert_eq!(mem.arrays[0][i], Value::i32(sum), "worker {w} elem {i}");
        }
    }
}

struct TierRun {
    backend: &'static str,
    wall_ms: f64,
    ncp_processed: u64,
    unknown_kernel: u64,
    drain: usize,
    traced: usize,
    wrong_version_hops: u64,
    stale_flagged: usize,
    abandoned: u64,
    kvs_gets: usize,
    kvs_server_ops: u64,
    kvs_hit_rate: f64,
    events_logged: u64,
    rejection_json: String,
}

/// One full scenario on one switch tier: deploy four tenants (one
/// rejected), upgrade `ar-a` mid-run, run to completion, verify
/// everything.
fn run_tier(backend: SwitchBackend, name: &'static str) -> TierRun {
    let scope = Scope::new(1 << 16);
    let pa = ar_program(0);
    let pb = ar_program(100);
    let pk = kvs_program(200);
    let tenants = vec![
        TenantDeploy {
            spec: TenantSpec::new("ar-a"),
            apps: ar_apps(&pa, 1, 3, &scope),
            program: pa,
        },
        TenantDeploy {
            spec: TenantSpec::new("ar-b"),
            apps: ar_apps(&pb, 4, 6, &scope),
            program: pb,
        },
        TenantDeploy {
            spec: TenantSpec::new("kvs"),
            apps: kvs_apps(&pk),
            program: pk,
        },
        // The greedy tenant: a valid program under a zero-stage quota.
        // Admission must reject it with a cost report, not an error.
        TenantDeploy {
            spec: TenantSpec::with_quota("greedy", TenantQuota::new(0, usize::MAX, usize::MAX)),
            program: ar_program(300),
            apps: HashMap::new(),
        },
    ];
    let opts = DeployOptions {
        backend,
        scope: Some(scope.clone()),
        model: chip(),
        ..DeployOptions::default()
    };
    let mut dep = ncl_core::deploy_tenants(tenants, opts).expect("structurally sound");

    // Admission: three in, one out, with the budget named.
    assert_eq!(dep.tenants(), vec!["ar-a", "ar-b", "kvs"]);
    assert_eq!(dep.rejections.len(), 1, "exactly the greedy tenant");
    let report = &dep.rejections[0];
    assert_eq!(report.tenant, "greedy");
    assert_eq!(report.budget, BudgetKind::TenantQuota);
    let rejection_json = report.render_json();
    assert!(rejection_json.contains("\"budget\":\"tenant_quota\""));
    assert!(rejection_json.contains("\"resource\":\"stages\""));

    set_nworkers(&mut dep, "ar-a");
    set_nworkers(&mut dep, "ar-b");
    let s1 = dep.switch("s1");
    dep.net
        .host_app_mut::<KvsServer>(HostId(SERVER))
        .expect("server")
        .cache_switch = Some(s1);

    // Run long enough for windows to be in flight, then upgrade ar-a.
    // The drain set is the union of every worker's NCP-R flight keys —
    // any window of a not-yet-retired seq keeps executing v1.
    dep.net.run_until(T_UPGRADE);
    let mut drain: BTreeSet<(u16, u32)> = BTreeSet::new();
    for w in 1..=3u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).expect("worker");
        drain.extend(host.in_flight_keys());
    }
    let drain: Vec<(u16, u32)> = drain.into_iter().collect();
    let mut upgrade = dep
        .begin_upgrade("ar-a", &ar_program(0), drain.clone())
        .expect("upgrade admits");
    assert_eq!((upgrade.old_version, upgrade.new_version), (1, 2));
    let s1_wire = NodeId::Switch(s1).to_wire();
    assert_eq!(
        dep.deployed_versions()[&(s1_wire, 1)],
        2,
        "static version fact flips at switchover"
    );

    let t = Instant::now();
    let t_end = dep.net.run();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    // Every tenant's results, untouched by its neighbours or the
    // upgrade: 1+2+3 = 6, 4+5+6 = 15, and byte-exact KVS values.
    assert_sums(&dep, 1, 1, 3, 6);
    assert_sums(&dep, 101, 4, 6, 15);
    let mut kvs_gets = 0usize;
    let mut kvs_hits = 0usize;
    for c in 1..=2u16 {
        let client = dep
            .net
            .host_app::<KvsClient>(HostId(6 + c))
            .expect("client");
        assert_eq!(client.corrupt, 0, "corrupt KVS responses");
        assert_eq!(client.outstanding(), 0, "unanswered KVS queries");
        for s in &client.samples {
            if !s.put {
                kvs_gets += 1;
                if s.from_cache {
                    kvs_hits += 1;
                }
            }
        }
    }
    let kvs_server_ops = dep
        .net
        .host_app::<KvsServer>(HostId(SERVER))
        .expect("server")
        .served;

    let stats = dep.net.switch_stats(s1).expect("switch stats");
    assert_eq!(stats.unknown_kernel, 0, "no window missed its tenant");

    // The hitless proof, from the per-hop version stamps: after the
    // switchover instant, v1 may only execute drained windows, and v2
    // may not appear before it. (`result` windows inherit the seq of
    // the `allreduce` window that produced them.)
    let mut traces: Vec<WindowTrace> = Vec::new();
    let mut abandoned = 0u64;
    for w in 1..=6u16 {
        let host = dep.net.host_app_mut::<NclHost>(HostId(w)).expect("worker");
        abandoned += host.sender_stats().expect("reliability on").abandoned;
        traces.extend(host.take_traces());
    }
    let in_drain = |kernel: u16, seq: u32| match kernel {
        1 | 2 => drain.contains(&(1, seq)),
        _ => false,
    };
    let mut wrong_version_hops = 0u64;
    for tr in &traces {
        for h in &tr.hops {
            if !(1..=2).contains(&h.kernel) {
                continue; // other tenants never change version
            }
            let wrong = (h.version == 2 && h.ticks_in < T_UPGRADE)
                || (h.version == 1 && h.ticks_in >= T_UPGRADE && !in_drain(h.kernel, tr.seq));
            if wrong {
                wrong_version_hops += 1;
            }
        }
    }
    assert_eq!(wrong_version_hops, 0, "a window executed the wrong version");
    assert_eq!(abandoned, 0, "NCP-R abandoned windows during the upgrade");

    // The ncscope diagnosis over the same evidence: no unknown-kernel
    // windows, nothing undelivered; windows flagged stale against the
    // *final* version facts are exactly the pre-switchover + drained
    // ones the hop scan already cleared.
    let diag = diagnose(
        &scope.decoded(),
        &traces,
        &DiagnosisConfig {
            expected_path: vec![s1_wire],
            deployed_versions: dep.deployed_versions(),
        },
    );
    assert!(diag.unknown_kernel.is_empty(), "{:?}", diag.unknown_kernel);
    assert!(
        diag.verdicts
            .iter()
            .all(|v| v.outcome != WindowOutcome::Abandoned),
        "diagnosis saw an abandoned window"
    );
    let stale_flagged = diag.verdicts.iter().filter(|v| v.stale_version).count();

    // Drain bookkeeping: the run retired every in-flight window; feed
    // the acks to the ticket and reclaim v1.
    for w in 1..=3u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).expect("worker");
        assert!(
            host.in_flight_keys().is_empty(),
            "worker {w} still in flight"
        );
    }
    for &(k, s) in &drain {
        upgrade.acked(k, s);
    }
    assert!(upgrade.is_complete(), "drain set fully acked");
    dep.finish_upgrade(&upgrade).expect("reclaims v1");
    assert!(!dep.mux_mut("s1").expect("mux").is_draining("ar-a"));
    assert_eq!(dep.controller.tenant_version("ar-a"), Some(2));

    // Per-tenant series in the Prometheus export: one registry, every
    // host counter labeled with its owning tenant.
    let reg = nctel::Registry::new();
    dep.export_tenant_metrics(&reg);
    let prom = reg.render_prometheus();
    for tenant in ["ar-a", "ar-b"] {
        assert!(prom.contains(&format!("tenant=\"{tenant}\"")), "{prom}");
    }
    assert!(
        reg.counter_value("ncpr.sender.acked{tenant=\"ar-a\",host=\"worker1\"}")
            .expect("labeled series registered")
            > 0
    );

    // Flight-recorder round trip: the artifact parses back with the
    // run's events and traces intact.
    let flight = scope.flight_record(SnapshotReason::OnDemand, t_end, None, &traces);
    let artifact = parse_flight(&flight).expect("flight artifact parses");
    assert_eq!(artifact.traces.len(), traces.len());
    assert!(artifact.events_logged > 0);

    TierRun {
        backend: name,
        wall_ms,
        ncp_processed: stats.ncp_processed,
        unknown_kernel: stats.unknown_kernel,
        drain: drain.len(),
        traced: traces.len(),
        wrong_version_hops,
        stale_flagged,
        abandoned,
        kvs_gets,
        kvs_server_ops,
        kvs_hit_rate: kvs_hits as f64 / kvs_gets.max(1) as f64,
        events_logged: scope.logged(),
        rejection_json,
    }
}

fn main() {
    println!("E14: multi-tenant shared fabric — admission, rejection, hitless upgrade");
    println!(
        "4 tenants submitted (2x allreduce, 1x kvs, 1x over-quota); upgrade at t={T_UPGRADE}ns\n"
    );

    let runs = [
        run_tier(SwitchBackend::Interp, "interp"),
        run_tier(SwitchBackend::FastPath, "fastpath"),
        run_tier(SwitchBackend::Simd, "simd"),
    ];

    rule(98);
    println!(
        "{:>9} {:>9} {:>8} {:>7} {:>7} {:>9} {:>6} {:>6} {:>9} {:>8} {:>9}",
        "tier",
        "ncp wins",
        "unknown",
        "drain",
        "traces",
        "wrong-ver",
        "stale",
        "gets",
        "srv ops",
        "hit",
        "wall ms"
    );
    rule(98);
    for r in &runs {
        println!(
            "{:>9} {:>9} {:>8} {:>7} {:>7} {:>9} {:>6} {:>6} {:>9} {:>7.2}% {:>9.1}",
            r.backend,
            r.ncp_processed,
            r.unknown_kernel,
            r.drain,
            r.traced,
            r.wrong_version_hops,
            r.stale_flagged,
            r.kvs_gets,
            r.kvs_server_ops,
            r.kvs_hit_rate * 100.0,
            r.wall_ms,
        );
    }
    rule(98);

    // Tier equivalence: the simulated outcome may not depend on the
    // switch execution tier.
    let base = &runs[0];
    for r in &runs[1..] {
        assert_eq!(
            r.ncp_processed, base.ncp_processed,
            "{}: window count",
            r.backend
        );
        assert_eq!(r.drain, base.drain, "{}: drain-set size", r.backend);
        assert_eq!(r.kvs_gets, base.kvs_gets, "{}: kvs gets", r.backend);
        assert_eq!(
            r.kvs_server_ops, base.kvs_server_ops,
            "{}: server load",
            r.backend
        );
        assert!(
            (r.kvs_hit_rate - base.kvs_hit_rate).abs() < 1e-12,
            "{}: hit rate",
            r.backend
        );
    }
    println!("\ntier equivalence: interp == fastpath == simd on every simulated outcome");
    println!("rejection report: {}", base.rejection_json.trim_end());

    let tiers_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"tier\":\"{}\",\"ncp_processed\":{},\"unknown_kernel\":{},\"drain\":{},\
                 \"traces\":{},\"wrong_version_hops\":{},\"stale_flagged\":{},\"abandoned\":{},\
                 \"kvs_gets\":{},\"kvs_server_ops\":{},\"kvs_hit_rate\":{:.4},\
                 \"events_logged\":{},\"wall_ms\":{:.3}}}",
                r.backend,
                r.ncp_processed,
                r.unknown_kernel,
                r.drain,
                r.traced,
                r.wrong_version_hops,
                r.stale_flagged,
                r.abandoned,
                r.kvs_gets,
                r.kvs_server_ops,
                r.kvs_hit_rate,
                r.events_logged,
                r.wall_ms,
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e14\",\"tenants_submitted\":4,\"tenants_admitted\":3,\
         \"upgrade\":{{\"tenant\":\"ar-a\",\"old_version\":1,\"new_version\":2,\
         \"at_ns\":{T_UPGRADE},\"wrong_version_hops\":0}},\
         \"rejection\":{},\"tiers\":[{}]}}\n",
        base.rejection_json.trim_end(),
        tiers_json.join(",")
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e14-metrics.json", &json).expect("write target/e14-metrics.json");
    println!("wrote target/e14-metrics.json ({} bytes)", json.len());
}
