//! E9 — the execution-tier model: tree-walking interpreter vs the
//! compiled fast-path executor ([`ncl_ir::CompiledKernel`]) on the
//! paper's example kernels, plus the end-to-end packet path (decode →
//! execute → encode) the way a software switch runs it. The table also
//! reports the ncvec SIMD tier (DESIGN §4.11) so E9 and E13 share one
//! baseline; E13 (`benches/e13.rs`) is the tier-focused experiment.
//!
//! The fast path lowers `KernelIr` once into a linear, slot-resolved
//! micro-op program and executes it against a reusable scratch with
//! zero steady-state allocations; the interpreter stays as the semantic
//! oracle (see `tests/fastpath_differential.rs`). The speedup table
//! printed here feeds EXPERIMENTS.md and is written to
//! `target/e9-metrics.json` for the CI artifact.

use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::{compile, CompileConfig, CompiledProgram};
use ncl_ir::ir::KernelIr;
use ncl_ir::{CompiledKernel, ExecScratch, Interpreter, MapId, SwitchState};
use ncp::codec::{decode_window_into, encode_window_into, BufferPool};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    name: &'static str,
    program: CompiledProgram,
    kernel: &'static str,
    windows: Vec<Window>,
}

/// An allreduce case with `win` elements per window (`win * 4` payload
/// bytes). The 8-element case stresses dispatch overhead; the
/// 64-element case is an MTU-realistic 256-byte aggregation payload.
fn allreduce_case(name: &'static str, win: usize) -> Case {
    let and = "hosts worker 3\nswitch s1\nlink worker* s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    // The 256-byte window overflows a Tofino-style PHV; this benchmark
    // measures the two *software* execution tiers, so lift the chip
    // budgets rather than shrink the workload.
    cfg.model.stages = 64;
    cfg.model.ops_per_stage = 4096;
    cfg.model.phv_header_bytes = 1 << 14;
    cfg.model.phv_metadata_bytes = 1 << 14;
    let program = compile(&allreduce_source(8 * win, win), and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let mut windows = Vec::new();
    for seq in 0..8u32 {
        for worker in 1..=3u16 {
            windows.push(Window {
                kernel: KernelId(kid),
                seq,
                sender: HostId(worker),
                from: NodeId::Host(HostId(worker)),
                last: seq == 7,
                chunks: vec![Chunk {
                    offset: seq * 4 * win as u32,
                    data: (0..win as i32)
                        .flat_map(|i| (worker as i32 * 10 + i).to_be_bytes())
                        .collect(),
                }],
                ext: vec![],
            });
        }
    }
    Case {
        name,
        program,
        kernel: "allreduce",
        windows,
    }
}

fn kvs_case() -> Case {
    let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("query".into(), vec![1, 8, 1]);
    let program = compile(&kvs_source(3, 64, 8), and, &cfg).expect("compiles");
    let kid = program.kernel_ids["query"];
    let windows = (0..24u64)
        .map(|i| Window {
            kernel: KernelId(kid),
            seq: i as u32,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: (i * 5).to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: (0..8u32).flat_map(|v| v.to_be_bytes()).collect(),
                },
                Chunk {
                    offset: 0,
                    data: vec![0],
                },
            ],
            ext: vec![],
        })
        .collect();
    Case {
        name: "kvs_query",
        program,
        kernel: "query",
        windows,
    }
}

fn fresh_state(case: &Case) -> SwitchState {
    let module = case.program.module("s1").expect("versioned module");
    let mut state = SwitchState::from_module(module);
    state.location_id = case.program.overlay.node("s1").unwrap().id;
    if case.kernel == "allreduce" {
        state.ctrl_write(ncl_ir::CtrlId(0), Value::u32(3));
    } else {
        for key in 0..32u64 {
            state.map_insert(MapId(0), key * 5, Value::new(ScalarType::U8, key));
            // Mark the cached slots valid so GETs exercise the full
            // cache-hit path (value copy-out + reflect).
            let n = state.registers[1].len();
            state.registers[1][key as usize % n] = Value::bool(true);
        }
    }
    state
}

fn kir(case: &Case) -> &KernelIr {
    case.program
        .module("s1")
        .unwrap()
        .kernel(case.kernel)
        .unwrap()
}

/// One pass of the workload through the interpreter. Windows execute in
/// place (same shape every pass), so the measurement isolates kernel
/// execution rather than window cloning.
fn run_interp(it: &Interpreter, k: &KernelIr, state: &mut SwitchState, ws: &mut [Window]) {
    for w in ws {
        let _ = black_box(it.run_outgoing(k, w, state));
    }
}

/// One pass through the compiled fast path, same in-place windows.
fn run_fast(
    ck: &CompiledKernel,
    state: &mut SwitchState,
    scratch: &mut ExecScratch,
    ws: &mut [Window],
) {
    for w in ws {
        let _ = black_box(ck.run_outgoing(w, state, scratch));
    }
}

/// The E9 speedup table: median ns/window for all three tiers. The
/// "fastpath" column is the scalar micro-op tier (`with_simd(false)`);
/// the "simd" column is the ncvec tier at the detected level. Returns
/// the rows so `bench_fastpath` can write the JSON artifact.
fn speedup_table(cases: &[Case]) -> Vec<(String, u64, u64, u64)> {
    println!(
        "\nE9: interpreter vs fast path vs ncvec [{}] (ns/window, median of 7)",
        ncl_ir::ncvec::level()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "kernel", "interp", "fastpath", "simd", "fast/int", "simd/fast"
    );
    let mut rows = Vec::new();
    for case in cases {
        let k = kir(case);
        let module = case.program.module("s1").unwrap();
        let scalar = CompiledKernel::compile_for(k, module).with_simd(false);
        let simd = CompiledKernel::compile_for(k, module);
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        let median = |f: &mut dyn FnMut()| {
            let mut samples: Vec<u64> = (0..7)
                .map(|_| {
                    let reps = 200;
                    let t = Instant::now();
                    for _ in 0..reps {
                        f();
                    }
                    t.elapsed().as_nanos() as u64 / (reps * case.windows.len()) as u64
                })
                .collect();
            samples.sort_unstable();
            samples[3]
        };
        let mut s_i = fresh_state(case);
        let mut w_i = case.windows.clone();
        let ns_interp = median(&mut || run_interp(&it, k, &mut s_i, &mut w_i));
        let mut s_f = fresh_state(case);
        let mut w_f = case.windows.clone();
        let ns_fast = median(&mut || run_fast(&scalar, &mut s_f, &mut scratch, &mut w_f));
        let mut s_v = fresh_state(case);
        let mut w_v = case.windows.clone();
        let ns_simd = median(&mut || run_fast(&simd, &mut s_v, &mut scratch, &mut w_v));
        println!(
            "{:>12} {:>11} ns {:>11} ns {:>11} ns {:>8.1}x {:>8.2}x",
            case.name,
            ns_interp,
            ns_fast,
            ns_simd,
            ns_interp as f64 / ns_fast.max(1) as f64,
            ns_fast as f64 / ns_simd.max(1) as f64
        );
        rows.push((case.name.to_string(), ns_interp, ns_fast, ns_simd));
    }
    rows
}

/// Writes the E9 metrics artifact CI uploads, matching the shape of
/// `target/e13-metrics.json` so dashboards can diff the two.
fn write_metrics(rows: &[(String, u64, u64, u64)]) {
    let kernels: Vec<String> = rows
        .iter()
        .map(|(name, interp, fast, simd)| {
            format!(
                "{{\"name\":\"{}\",\"interp_ns\":{},\"fastpath_ns\":{},\"simd_ns\":{},\
                 \"fastpath_vs_interp\":{:.3},\"simd_vs_fastpath\":{:.3}}}",
                name,
                interp,
                fast,
                simd,
                *interp as f64 / (*fast).max(1) as f64,
                *fast as f64 / (*simd).max(1) as f64
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e9\",\"simd_level\":\"{}\",\"kernels\":[{}]}}\n",
        ncl_ir::ncvec::level(),
        kernels.join(",")
    );
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/e9-metrics.json", &json).expect("write e9-metrics.json");
    println!("wrote target/e9-metrics.json ({} bytes)", json.len());
}

fn bench_fastpath(c: &mut Criterion) {
    let cases = [
        allreduce_case("allreduce8", 8),
        allreduce_case("allreduce64", 64),
        kvs_case(),
    ];
    let rows = speedup_table(&cases);
    write_metrics(&rows);

    for case in &cases {
        let k = kir(case);
        let module = case.program.module("s1").unwrap();
        let ck = CompiledKernel::compile_for(k, module).with_simd(false);
        let cv = CompiledKernel::compile_for(k, module);
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        let bytes: u64 = case
            .windows
            .iter()
            .map(|w| w.chunks.iter().map(|c| c.data.len() as u64).sum::<u64>())
            .sum();

        let mut g = c.benchmark_group(format!("exec/{}", case.name));
        g.throughput(Throughput::Bytes(bytes));
        let mut s_i = fresh_state(case);
        let mut w_i = case.windows.clone();
        g.bench_function("interp", |b| {
            b.iter(|| run_interp(&it, k, &mut s_i, &mut w_i))
        });
        let mut s_f = fresh_state(case);
        let mut w_f = case.windows.clone();
        g.bench_function("fastpath", |b| {
            b.iter(|| run_fast(&ck, &mut s_f, &mut scratch, &mut w_f))
        });
        let mut s_v = fresh_state(case);
        let mut w_v = case.windows.clone();
        g.bench_function("simd", |b| {
            b.iter(|| run_fast(&cv, &mut s_v, &mut scratch, &mut w_v))
        });

        // The full software-switch packet path: NCP decode (buffer
        // reuse), execute on the default (ncvec) tier, re-encode from
        // a pooled buffer.
        let ext = case.program.checked.window_ext.size();
        let packets: Vec<Vec<u8>> = case
            .windows
            .iter()
            .map(|w| ncp::codec::encode_window(w, ext))
            .collect();
        let mut state = fresh_state(case);
        let mut win = case.windows[0].clone();
        let mut pool = BufferPool::new();
        g.bench_function("packet_path", |b| {
            b.iter(|| {
                for p in &packets {
                    decode_window_into(black_box(p), &mut win).expect("decodes");
                    let _ = black_box(cv.run_outgoing(&mut win, &mut state, &mut scratch));
                    let mut out = pool.get();
                    encode_window_into(&win, ext, &mut out);
                    pool.put(black_box(out));
                }
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
