//! E5 — the window mechanism (Fig. 2, §4.2): codec throughput under
//! Criterion, plus the window-length sweep of goodput vs NCP header
//! overhead, including multi-packet windows (the paper's future-work
//! extension).

use c3::{Chunk, HostId, KernelId, Mask, NodeId, ScalarType, Window, WindowSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ncp::codec::{decode_window, encode_window, fragment_window, Reassembler};
use std::hint::black_box;

fn window(elems: usize) -> Window {
    Window {
        kernel: KernelId(1),
        seq: 7,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: (0..elems as u32).flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    }
}

fn overhead_table() {
    println!("\nE5b: window length vs NCP overhead (single array of u32)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "win", "pkt bytes", "payload", "overhead %", "pkts/MiB"
    );
    for elems in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let w = window(elems);
        let bytes = encode_window(&w, 0);
        let payload = elems * 4;
        let overhead = 100.0 * (bytes.len() - payload) as f64 / bytes.len() as f64;
        let pkts_per_mib = (1 << 20) / payload;
        println!(
            "{:>8} {:>10} {:>12} {:>11.1}% {:>10}",
            elems,
            bytes.len(),
            payload,
            overhead,
            pkts_per_mib
        );
    }
    println!("\nE5c: multi-packet windows (mtu 1472)");
    println!("{:>10} {:>10} {:>12}", "elems", "fragments", "bytes total");
    for elems in [256usize, 512, 1024, 4096] {
        let w = window(elems);
        let frags = fragment_window(&w, 0, 1472);
        let total: usize = frags.iter().map(|f| f.len()).sum();
        println!("{:>10} {:>10} {:>12}", elems, frags.len(), total);
    }
}

fn bench_codec(c: &mut Criterion) {
    overhead_table();

    let mut g = c.benchmark_group("ncp_codec");
    for elems in [8usize, 64, 256] {
        let w = window(elems);
        let bytes = encode_window(&w, 0);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode/{elems}"), |b| {
            b.iter(|| encode_window(black_box(&w), 0))
        });
        g.bench_function(format!("decode/{elems}"), |b| {
            b.iter(|| decode_window(black_box(&bytes)).expect("decodes"))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("window_split");
    for elems in [1024usize, 16 * 1024] {
        let data: Vec<u8> = (0..elems as u32).flat_map(|v| v.to_be_bytes()).collect();
        let spec = WindowSpec::new(vec![ScalarType::U32], Mask::new([32])).expect("spec");
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_function(format!("split/{elems}"), |b| {
            b.iter(|| spec.split(black_box(&[&data[..]])).expect("splits"))
        });
        let windows = spec.split(&[&data[..]]).expect("splits");
        g.bench_function(format!("reassemble/{elems}"), |b| {
            b.iter(|| {
                spec.reassemble(black_box(&windows), &[data.len()])
                    .expect("reassembles")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fragmentation");
    let w = window(1024);
    g.throughput(Throughput::Bytes((1024 * 4) as u64));
    g.bench_function("fragment/4KiB@1472", |b| {
        b.iter(|| fragment_window(black_box(&w), 0, 1472))
    });
    let frags = fragment_window(&w, 0, 1472);
    g.bench_function("reassemble/4KiB@1472", |b| {
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut out = None;
            for f in &frags {
                out = r.push(black_box(f)).expect("ok");
            }
            out.expect("complete")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_codec
}
criterion_main!(benches);
