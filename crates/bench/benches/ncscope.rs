//! E12 — ncscope flight recorder and diagnosis (DESIGN §4.10).
//! Two measurements:
//!
//! 1. **Event-log overhead gate** — the same reliable AllReduce run
//!    with the scope attached to every layer (full recording) vs
//!    detached. Scope emission costs zero *simulated* time by
//!    construction, so the honest cost is wall-clock: goodput =
//!    payload bytes / wall seconds, best-of-5 per arm, budget ≤5%.
//! 2. **Flight-recorder artifact** — kills exactly the `worker1 <->
//!    s1` link (deterministic full loss) under an armed recorder; the
//!    abandonment triggers a `delivery_timeout` snapshot at
//!    `target/e12-flight.json` (the CI artifact), which is parsed back
//!    and run through the diagnosis engine. The verdict must blame a
//!    worker1-side link from drop ground truth alone.

use ncl_bench::{rule, run_allreduce_scoped};
use nctel::scope::{analysis, parse_flight, SnapshotReason};
use nctel::Scope;
use netsim::LinkSpec;
use pisa::ResourceModel;
use std::time::Instant;

fn main() {
    // The E10 workload shape: small windows fit the default chip
    // profile alongside the NCP-R replay filter.
    let nworkers = 4usize;
    let elements = 4096usize;
    let win = 8usize;
    let link = LinkSpec::default();
    let model = ResourceModel::default();
    println!(
        "E12: ncscope — reliable AllReduce ({nworkers} workers, {elements} × int32, win {win})"
    );
    println!("arm A: recording off; arm B: scope attached to host/transport/sim\n");

    // Warm-up run (page in the allocator and compile caches).
    run_allreduce_scoped(nworkers, elements, win, link, vec![], 0.0, None, &model);

    let reps = 5;
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut events = 0u64;
    let mut payload = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let off = run_allreduce_scoped(nworkers, elements, win, link, vec![], 0.0, None, &model);
        best_off = best_off.min(t0.elapsed().as_secs_f64());

        let scope = Scope::new(1 << 16);
        let t1 = Instant::now();
        let on = run_allreduce_scoped(
            nworkers,
            elements,
            win,
            link,
            vec![],
            0.0,
            Some(&scope),
            &model,
        );
        best_on = best_on.min(t1.elapsed().as_secs_f64());
        assert_eq!(
            on.completion, off.completion,
            "recording must not perturb the simulation"
        );
        events = on.events_logged;
        payload = on.payload_bytes;
    }
    let goodput = |secs: f64| payload as f64 / secs / 1e6;
    let overhead = 100.0 * (best_on / best_off - 1.0);
    rule(66);
    println!(
        "{:>16} {:>14} {:>16} {:>12}",
        "arm", "best wall ms", "goodput MB/s", "events"
    );
    rule(66);
    println!(
        "{:>16} {:>14.2} {:>16.1} {:>12}",
        "recording off",
        best_off * 1e3,
        goodput(best_off),
        0
    );
    println!(
        "{:>16} {:>14.2} {:>16.1} {:>12}",
        "recording on",
        best_on * 1e3,
        goodput(best_on),
        events
    );
    rule(66);
    assert!(events > 0, "recording arm logged no events");
    println!("\nacceptance: full-recording goodput overhead = {overhead:.2}% (budget <= 5%)");
    assert!(
        overhead <= 5.0,
        "ncscope event-log overhead {overhead:.2}% exceeds the 5% budget"
    );

    // --- Flight-recorder artifact: dead access link, armed recorder ---
    let scope = Scope::new(1 << 16);
    std::fs::create_dir_all("target").ok();
    scope.arm_recorder("target/e12-flight.json");
    let dead = LinkSpec {
        drop_every: 1, // every frame, both directions
        ..link
    };
    let r = run_allreduce_scoped(
        3,
        256,
        8,
        link,
        vec![("worker1".into(), "s1".into(), dead)],
        1.0,
        Some(&scope),
        &model,
    );
    assert!(r.abandoned > 0, "a dead access link must exhaust retries");
    assert!(
        scope.recorded() >= 1,
        "abandonment must trigger the flight recorder"
    );
    // Make the artifact carry the post-mortem state (the in-run
    // trigger fires at the *first* abandonment; re-snapshot on demand
    // so the CI artifact holds the full run).
    let doc = scope.flight_record(SnapshotReason::OnDemand, r.completion, None, &r.traces);
    let art = parse_flight(&doc).expect("artifact round-trips");
    let d = analysis::diagnose(
        &art.events,
        &art.traces,
        &analysis::DiagnosisConfig::default(),
    );
    println!(
        "\nflight recorder: killed worker1 <-> s1, {} abandoned",
        r.abandoned
    );
    print!("{}", d.render_report());
    let (lo, hi) = d.primary_loss_locus().expect("drop ground truth present");
    assert_eq!(lo, 1, "loss locus names worker1 (wire id 1), got h{lo}");
    assert!(
        hi & 0x8000 != 0,
        "loss locus names the switch side, got {hi:#x}"
    );
    println!(
        "wrote target/e12-flight.json ({} events, {} traces)",
        art.events.len(),
        art.traces.len()
    );
}
